"""Chaos smoke: a full distributed study under a seeded fault plan.

The resilience layer's claims, executed end-to-end: one study runs on
a substrate wrapped in :class:`FaultyStore`/:class:`FaultyQueue`
driving an aggressive seeded :class:`FaultPlan` (store transients and
locked-database errors, a torn write, a lease granted already
expired), with a real ``repro-worker`` process SIGKILLed while it
holds leases.  The run must be indistinguishable from a calm one:

1. **Bit-identical** — every response equals the fault-free control
   evaluation, float-for-float.
2. **Zero lost** — all points resolve, the store holds every result,
   the queue drains to ``done`` with nothing outstanding.
3. **Zero double-evaluated** — every evaluation (submitter or worker)
   appends to a shared on-disk log; each unique point must appear
   exactly once.  Reclaimed leases whose result was already published
   are answered from the store, not re-simulated.
4. **Replayable** — the same seed derives the same fault schedule,
   so a chaos failure is a test case, not a flake.

Usage::

    python benchmarks/chaos_smoke.py \
        --workdir /tmp/chaos --json results/chaos_smoke.json

Exit status is non-zero on any violation.  The whole run is sized to
finish in well under 90 s.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

from repro.exec import (
    DistributedBackend,
    FaultPlan,
    FaultyQueue,
    FaultyStore,
    FileStore,
    FileWorkQueue,
    ResilientQueue,
    ResilientStore,
    RetryPolicy,
)
from repro.exec.queue import QUEUE_SUBDIR
from repro.fsutil import atomic_write_json

#: Evaluator spec worker subprocesses are pointed at.
EVALUATOR_SPEC = "benchmarks.chaos_smoke:make_evaluator"

#: Environment variable carrying the shared evaluation-log path.
EVAL_LOG_ENV = "CHAOS_EVAL_LOG"

#: Quick, deterministic retries sized for injected (not real) faults.
SMOKE_RETRY = RetryPolicy(
    max_attempts=5, base_delay=0.01, multiplier=2.0, max_delay=0.2,
    max_elapsed=10.0,
)


def _simulate(point: dict) -> dict:
    """A deterministic stand-in physics model (pure float math)."""
    a, b = point["a"], point["b"]
    return {
        "y1": math.sin(a) * math.cos(b) + a * b,
        "y2": math.exp(-abs(a - b)) + 0.5 * a,
    }


def _log_evaluation(point: dict) -> None:
    """Append one evaluation to the shared audit log (O_APPEND —
    atomic for lines this short, across processes)."""
    path = os.environ.get(EVAL_LOG_ENV)
    if not path:
        return
    line = json.dumps(point, sort_keys=True) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, line.encode())
    finally:
        os.close(fd)


def evaluate(point: dict) -> dict:
    responses = _simulate(point)
    _log_evaluation(point)
    return responses


def make_evaluator():
    """Worker-side factory (``--evaluator`` spec)."""
    return evaluate


def make_stalling_evaluator():
    """Victim-side factory: blocks far past any lease TTL *before*
    touching the audit log, so SIGKILL provably lands while the
    victim holds leases and zero evaluations have been recorded.
    (Workers throttle by sleeping before they lease, precisely so
    they never hold jobs idle — so a throttle can no longer pin the
    kill window; a stalled first evaluation can.)  The sleep is
    never survived: the process is killed."""

    def stall(point):
        time.sleep(600.0)
        raise AssertionError("stalling evaluator must be killed")

    return stall


def _points(n: int) -> list[dict]:
    return [
        {"a": -1.0 + 2.0 * i / max(n - 1, 1), "b": 0.5 + 0.25 * i}
        for i in range(n)
    ]


def spawn_victim(store_dir: str, eval_log: str) -> subprocess.Popen:
    """A real worker that leases eagerly but evaluates nothing: its
    stalling evaluator blocks far past the lease TTL, so SIGKILL
    provably lands while it holds unevaluated leases."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env[EVAL_LOG_ENV] = eval_log
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.exec.worker",
            store_dir,
            "--evaluator",
            "benchmarks.chaos_smoke:make_stalling_evaluator",
            "--batch",
            "3",
            "--lease-seconds",
            "2",
            "--poll",
            "0.05",
            "--json",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _check_determinism(seed: int) -> dict:
    """Same seed, same schedule — and a different seed, a different
    one (the plan is worth replaying)."""
    plan_a = FaultPlan.aggressive(seed, worker_kills=1)
    plan_b = FaultPlan.aggressive(seed, worker_kills=1)
    check(
        plan_a.schedule() == plan_b.schedule(),
        "same seed produced different fault schedules",
    )
    check(
        plan_a.schedule() != FaultPlan.aggressive(seed + 1, worker_kills=1).schedule(),
        "fault schedule ignores the seed",
    )
    return {"specs": len(plan_a.specs), "kill_points": len(plan_a.kill_points())}


def _run_chaos(workdir: Path, seed: int, points, reference) -> dict:
    # Batched I/O shrank the per-op call counts (one persist_many
    # lands a lease, one load_many answers a poll), so the plan is
    # denser and nearer than the pre-amortization one: faults
    # scheduled deep on ops the hot path no longer spells out
    # per-entry would never fire.
    plan = FaultPlan.aggressive(
        seed,
        store_ops=10,
        queue_ops=8,
        torn_writes=1,
        lease_expiries=1,
        worker_kills=1,
        horizon=10,
    )
    store_dir = workdir / "chaos-evals"
    eval_log = str(workdir / "evaluations.log")
    fingerprints = [f"chaos-{i:03d}" for i in range(len(points))]

    store = ResilientStore(
        FaultyStore(FileStore(store_dir), plan),
        retry=SMOKE_RETRY,
    )
    queue = ResilientQueue(
        FaultyQueue(FileWorkQueue(store_dir / QUEUE_SUBDIR), plan),
        retry=SMOKE_RETRY,
    )
    backend = DistributedBackend(
        store,
        queue=queue,
        cooperate=True,
        lease_seconds=5.0,
        poll_interval=0.05,
        timeout=120.0,
    )
    monitor = FileWorkQueue(store_dir / QUEUE_SUBDIR)  # fault-free view

    os.environ[EVAL_LOG_ENV] = eval_log
    started = time.perf_counter()
    handle = backend.submit(evaluate, points, fingerprints=fingerprints)

    # The kill_worker marker from the plan, executed at process level:
    # a real worker leases a batch, is SIGKILLed inside its stalled
    # first evaluation (leases held, nothing evaluated), and its
    # leases must be reclaimed and finished by the cooperating
    # submitter.
    check(len(plan.kill_points()) >= 1, "plan carries no kill marker")
    victim = spawn_victim(str(store_dir), eval_log)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if monitor.stats().leased > 0:
            break
        time.sleep(0.05)
    else:
        victim.kill()
        raise SmokeFailure("victim worker never leased any jobs")
    leased_at_kill = monitor.stats().leased
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)

    results = handle.result()
    elapsed = time.perf_counter() - started
    os.environ.pop(EVAL_LOG_ENV, None)

    # 1. Bit-identical to the fault-free control.
    for i, ((responses, _), expected) in enumerate(zip(results, reference)):
        check(
            responses == expected,
            f"chaos responses diverge from control at point {i}",
        )

    # 2. Zero lost: every result durable, queue fully drained.
    fresh = FileStore(store_dir)
    check(
        all(fresh.peek(fp) is not None for fp in fingerprints),
        "store is missing results after the chaos run",
    )
    stats = monitor.stats()
    check(
        stats.done == len(points) and stats.outstanding == 0,
        f"queue not drained after chaos: {stats.as_dict()}",
    )

    # 3. Zero double-evaluated: the shared audit log holds each
    # unique point exactly once.
    lines = Path(eval_log).read_text().splitlines()
    unique = set(lines)
    check(
        len(lines) == len(points) and len(unique) == len(points),
        f"{len(lines)} evaluations of {len(points)} points "
        f"({len(lines) - len(unique)} duplicates)",
    )

    # 4. The chaos actually happened.
    check(
        len(plan.fired) >= 4,
        f"only {len(plan.fired)} faults fired; the run proved nothing",
    )
    masked = store.resilience.retried + queue.resilience.retried
    check(masked >= 1, "no injected fault was absorbed by a retry")

    reclaimed = [
        record.job_id
        for record in monitor.jobs()
        if record.attempts >= 2 and record.status == "done"
    ]
    check(
        len(reclaimed) >= 1,
        "the killed worker's leases show no reclaimed attempt",
    )

    summary = {
        "seconds": elapsed,
        "n_points": len(points),
        "faults_fired": plan.fired,
        "retries_masked": masked,
        "leased_at_kill": leased_at_kill,
        "reclaimed_jobs": len(reclaimed),
        "degraded_evaluations": backend.degraded_evaluations,
        "store_resilience": store.resilience.as_dict(),
        "queue_resilience": queue.resilience.as_dict(),
    }
    monitor.close()
    fresh.close()
    backend.close()
    store.close()
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir",
        required=True,
        help="scratch directory for the substrate and audit log",
    )
    parser.add_argument(
        "--json", default=None, help="where to write the summary JSON"
    )
    parser.add_argument("--points", type=int, default=18)
    parser.add_argument("--seed", type=int, default=20260808)
    args = parser.parse_args(argv)

    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    points = _points(args.points)
    reference = [_simulate(point) for point in points]

    summary = {
        "benchmark": "chaos_smoke",
        "n_points": args.points,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
    }
    try:
        print("== phase 1: fault schedule determinism ==")
        summary["determinism"] = _check_determinism(args.seed)
        print(json.dumps(summary["determinism"], sort_keys=True))
        print("== phase 2: study under the fault plan ==")
        summary["chaos"] = _run_chaos(workdir, args.seed, points, reference)
        print(json.dumps(summary["chaos"], sort_keys=True))
        summary["ok"] = True
    except SmokeFailure as failure:
        summary["ok"] = False
        summary["failure"] = str(failure)
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.json:
        atomic_write_json(args.json, summary, indent=2, sort_keys=True)
    if summary["ok"]:
        print(
            "chaos smoke verified: bit-identical results, zero lost, "
            "zero double-evaluated under "
            f"{len(summary['chaos']['faults_fired'])} injected faults "
            "+ one worker kill"
        )
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
