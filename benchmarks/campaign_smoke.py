"""Campaign kill/resume smoke, driven by CI.

Proves the durability acceptance property of the adaptive campaign
subsystem with *real* ``repro-campaign`` subprocesses against one
shared substrate:

1. **Control** — a campaign run end-to-end on substrate A.
2. **Kill** — the same campaign on substrate B is SIGKILLed mid-round
   (a per-evaluation throttle makes the window deterministic), while
   ``repro-campaign status`` reports it unfinished (exit 2).
3. **Resume** — ``repro-campaign resume`` on substrate B finishes the
   campaign.  The final result (round history, optima, per-round data
   digests) must be **bit-identical** to the control run, and the
   resumed session must have simulated exactly the points the killed
   session had not yet persisted — zero lost, zero repeated: ::

       resumed_simulated == control_simulated - store_entries_at_kill

Usage::

    python benchmarks/campaign_smoke.py \
        --store /tmp/campaign-smoke --json results/campaign_smoke.json

Exit status is non-zero on any property violation.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

from repro.campaign.journal import SQLiteCampaignJournal
from repro.fsutil import atomic_write_json
from repro.core.factors import DesignSpace, Factor
from repro.core.toolkit import SensorNodeDesignToolkit
from repro.exec.store import SQLiteStore, resolve_store
from repro.sim.envelope import EnvelopeOptions

SMOKE_ENVELOPE = EnvelopeOptions(
    map_v_points=4,
    map_nr_warmup_cycles=4,
    map_warmup_cycles=8,
    map_measure_cycles=6,
    map_max_blocks=3,
    map_steps_per_period=80,
)

MISSION_TIME = 120.0

#: Evaluator spec the campaign subprocesses are pointed at.
EVALUATOR_SPEC = "benchmarks.campaign_smoke:make_toolkit"

#: Per-evaluation sleep in the throttled (victim) process, seconds.
THROTTLE_ENV = "REPRO_CAMPAIGN_EVAL_SLEEP"


class ThrottledToolkit(SensorNodeDesignToolkit):
    """Sleeps before each evaluation when the throttle env is set, so
    the smoke can SIGKILL a campaign provably mid-round."""

    @staticmethod
    def _throttle() -> None:
        delay = float(os.environ.get(THROTTLE_ENV, "0") or "0")
        if delay > 0.0:
            time.sleep(delay)

    def evaluate_point(self, params):
        self._throttle()
        return super().evaluate_point(params)

    def evaluate_points_timed(self, points):
        out = []
        for point in points:
            self._throttle()
            out.extend(super().evaluate_points_timed([point]))
        return out


def make_toolkit(store: str) -> ThrottledToolkit:
    """Factory the ``repro-campaign`` subprocesses load."""
    return ThrottledToolkit(
        space=DesignSpace(
            [
                Factor("capacitance", 0.10, 1.00, units="F"),
                Factor(
                    "tx_interval", 2.0, 60.0, transform="log", units="s"
                ),
            ]
        ),
        mission_time=MISSION_TIME,
        envelope=SMOKE_ENVELOPE,
        cache_dir=store,
    )


CAMPAIGN_ARGS = [
    "--objective",
    "effective_data_rate",
    "--rounds",
    "4",
    "--batch",
    "6",
    "--seed",
    "23",
]


def _env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.update(extra)
    return env


def _cli(args: list[str], **extra_env: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.campaign.cli", *args],
        env=_env(**extra_env),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _run_to_completion(store: str, command: str) -> dict:
    proc = _cli(
        [command, store, "--evaluator", EVALUATOR_SPEC, "--json"]
        + (CAMPAIGN_ARGS if command == "run" else []),
    )
    out, err = proc.communicate(timeout=600)
    check(
        proc.returncode == 0,
        f"campaign {command} failed ({proc.returncode}): {err}",
    )
    return json.loads(out)


def _store_entries(store: str) -> int:
    handle = resolve_store(store)
    try:
        return len(handle)
    finally:
        handle.close()


def _identity(payload: dict) -> str:
    """The deterministic portion of a campaign result."""
    trimmed = {
        k: v for k, v in payload.items() if k != "evaluations"
    }
    return json.dumps(trimmed, sort_keys=True)


def _phase_pipeline_kill_resume(
    spec: str, control: dict, throttle: float
) -> dict:
    """A ``--pipeline`` campaign SIGKILLed while rounds overlap must
    resume to the exact result the sequential control produced.

    Pipelining speculates round r+1 acquisition from round r's landed
    prefix, so the kill window (first round past 0 journaled, batch
    mid-evaluation under the throttle) lands while speculative and
    straggler work provably overlap.  The store may hold points the
    control never evaluated (mis-speculation), so the phase asserts
    the *identity* contract — history, optima and journal converge to
    the sequential result — rather than phase 3's exact
    simulated-count equation, which speculation intentionally relaxes.
    """
    if os.path.exists(spec):
        os.unlink(spec)
    SQLiteStore(spec).close()
    victim = _cli(
        ["run", spec, "--evaluator", EVALUATOR_SPEC, "--json", "--pipeline"]
        + CAMPAIGN_ARGS,
        **{THROTTLE_ENV: str(throttle)},
    )
    journal = SQLiteCampaignJournal(spec)
    deadline = time.monotonic() + 300.0
    killed_mid_overlap = False
    while time.monotonic() < deadline:
        record = journal.load("default")
        if record is not None and record.status == "complete":
            break
        if record is not None and any(
            entry.index >= 1 for entry in record.rounds
        ):
            time.sleep(throttle * 1.5)
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            killed_mid_overlap = True
            break
        if victim.poll() is not None:
            break
        time.sleep(0.05)
    record = journal.load("default")
    journal.close()
    check(
        killed_mid_overlap,
        "pipelined victim finished before it could be killed",
    )
    check(
        record is not None and record.status != "complete",
        "journal claims completion after SIGKILL (pipelined)",
    )
    entries_at_kill = _store_entries(spec)

    status = _cli(["status", spec])
    out, _ = status.communicate(timeout=60)
    check(
        status.returncode == 2,
        f"status of an interrupted pipelined campaign must exit 2, "
        f"got {status.returncode}: {out}",
    )

    # Resume restores pipeline_rounds from the journaled config —
    # no flag needed, and the result must match the sequential run.
    resumed = _run_to_completion(spec, "resume")
    check(
        _identity(resumed) == _identity(control),
        "pipelined resume diverges from the sequential control run",
    )
    check(
        record.config.get("config", {}).get("pipeline_rounds") is True,
        "journal does not carry pipeline_rounds — resume would fall "
        "back to sequential rounds",
    )
    report = _cli(["report", spec, "--json"])
    out, err = report.communicate(timeout=60)
    check(report.returncode == 0, f"pipelined report failed: {err}")
    check(
        _identity(json.loads(out)) == _identity(control),
        "journaled pipelined report diverges from the control run",
    )
    return {
        "entries_at_kill": entries_at_kill,
        "rounds_journaled": len(record.rounds),
        "resumed_simulated": resumed["evaluations"]["simulated"],
        "speculated": resumed["evaluations"]["speculated"],
        "speculative_hits": resumed["evaluations"]["speculative_hits"],
        "bit_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--store",
        required=True,
        help="base path; two .sqlite substrates are derived from it "
        "(control / kill)",
    )
    parser.add_argument(
        "--json", default=None, help="where to write the summary JSON"
    )
    parser.add_argument(
        "--throttle", type=float, default=0.4,
        help="victim's per-evaluation sleep (default 0.4 s)",
    )
    args = parser.parse_args(argv)

    base = Path(args.store)
    base.parent.mkdir(parents=True, exist_ok=True)
    control_spec = str(base) + "-control.sqlite"
    kill_spec = str(base) + "-kill.sqlite"
    for spec in (control_spec, kill_spec):
        if os.path.exists(spec):
            os.unlink(spec)
        SQLiteStore(spec).close()  # the CLI requires an existing store

    summary: dict = {
        "benchmark": "campaign_smoke",
        "mission_time_s": MISSION_TIME,
        "cpu_count": os.cpu_count(),
        "throttle_s": args.throttle,
    }
    try:
        print("== phase 1: control campaign runs to completion ==")
        control = _run_to_completion(control_spec, "run")
        summary["control"] = {
            "stop_reason": control["stop_reason"],
            "rounds": control["n_rounds"],
            "simulated": control["evaluations"]["simulated"],
        }
        print(json.dumps(summary["control"], sort_keys=True))

        print("== phase 2: SIGKILL a campaign mid-round ==")
        victim = _cli(
            ["run", kill_spec, "--evaluator", EVALUATOR_SPEC, "--json"]
            + CAMPAIGN_ARGS,
            **{THROTTLE_ENV: str(args.throttle)},
        )
        journal = SQLiteCampaignJournal(kill_spec)
        deadline = time.monotonic() + 300.0
        killed_mid_round = False
        while time.monotonic() < deadline:
            record = journal.load("default")
            if record is not None and record.status == "complete":
                break
            if record is not None and any(
                entry.index >= 1 for entry in record.rounds
            ):
                # Round 1 is journaled; with the throttle its batch is
                # mid-evaluation. Kill while it provably is.
                time.sleep(args.throttle * 1.5)
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=30)
                killed_mid_round = True
                break
            if victim.poll() is not None:
                break
            time.sleep(0.05)
        record = journal.load("default")
        journal.close()
        check(killed_mid_round, "victim finished before it could be killed")
        check(
            record is not None and record.status != "complete",
            "journal claims completion after SIGKILL",
        )
        entries_at_kill = _store_entries(kill_spec)
        planned_total = sum(
            len(entry.planned.get("points", []))
            for entry in record.rounds
        )
        check(
            entries_at_kill < control["evaluations"]["simulated"],
            f"kill landed too late: {entries_at_kill} points already "
            "persisted",
        )
        summary["kill"] = {
            "entries_at_kill": entries_at_kill,
            "rounds_journaled": len(record.rounds),
            "planned_points_journaled": planned_total,
        }
        print(json.dumps(summary["kill"], sort_keys=True))

        status = _cli(["status", kill_spec])
        out, _ = status.communicate(timeout=60)
        check(
            status.returncode == 2,
            f"status of an interrupted campaign must exit 2, got "
            f"{status.returncode}: {out}",
        )

        print("== phase 3: resume finishes bit-identical ==")
        resumed = _run_to_completion(kill_spec, "resume")
        check(
            _identity(resumed) == _identity(control),
            "resumed campaign result diverges from the uninterrupted "
            "control run",
        )
        resumed_simulated = resumed["evaluations"]["simulated"]
        expected = control["evaluations"]["simulated"] - entries_at_kill
        check(
            resumed_simulated == expected,
            f"resume re-evaluated cached points: simulated "
            f"{resumed_simulated}, expected {expected} "
            f"(control {control['evaluations']['simulated']} - "
            f"{entries_at_kill} already persisted)",
        )
        report = _cli(["report", kill_spec, "--json"])
        out, err = report.communicate(timeout=60)
        check(report.returncode == 0, f"report failed: {err}")
        check(
            _identity(json.loads(out)) == _identity(control),
            "journaled report diverges from the control run",
        )
        summary["resume"] = {
            "simulated": resumed_simulated,
            "bit_identical": True,
            "re_evaluated": 0,
        }
        print(json.dumps(summary["resume"], sort_keys=True))

        print(
            "== phase 4: pipelined campaign killed mid-overlap, "
            "resume bit-identical =="
        )
        summary["pipeline"] = _phase_pipeline_kill_resume(
            str(base) + "-pipeline.sqlite", control, args.throttle
        )
        print(json.dumps(summary["pipeline"], sort_keys=True))
        summary["ok"] = True
    except SmokeFailure as failure:
        summary["ok"] = False
        summary["failure"] = str(failure)
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.json:
        atomic_write_json(args.json, summary, indent=2, sort_keys=True)
    if summary["ok"]:
        print(
            "campaign smoke verified: SIGKILL mid-round, resume "
            "bit-identical with zero lost and zero re-evaluated points"
        )
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
