"""R-T2 — RSM accuracy at held-out points.

The abstract's core claim: after the moderate designed-simulation
budget, the response surfaces "evaluate the effect almost instantly but
still with high accuracy".  This table compares RSM predictions against
fresh envelope simulations at LHS validation points the design never
visited.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.analysis.io import write_csv
from repro.analysis.tables import format_table


def test_table2_rsm_accuracy(benchmark, canonical_study):
    study = canonical_study
    print_banner("R-T2: RSM accuracy at held-out validation points")
    validation = study.validation
    assert validation is not None

    rows = []
    for name, metrics in validation.metrics.items():
        rows.append(
            [
                name,
                study.surfaces[name].stats.r_squared,
                metrics["rmse"],
                metrics["max_abs_error"],
                metrics["normalized_rmse"],
                metrics["median_pct_error"],
            ]
        )
    print(
        format_table(
            ["response", "fit R2", "RMSE", "max|err|", "NRMSE", "median %err"],
            rows,
            title=(
                f"quadratic RSM on CCD ({study.exploration.n_runs} runs), "
                f"validated at {validation.x_coded.shape[0]} LHS points"
            ),
        )
    )
    write_csv(
        "table2_rsm_accuracy.csv",
        {
            "r2": [r[1] for r in rows],
            "rmse": [r[2] for r in rows],
            "nrmse": [r[4] for r in rows],
        },
    )

    # The benchmarked operation: predicting every response at every
    # validation point (the "instant" side of the claim).
    points = validation.x_coded

    def predict_all():
        return {
            name: surface.predict(points)
            for name, surface in study.surfaces.items()
        }

    benchmark(predict_all)

    # Shape assertions ("high accuracy"): the smooth responses
    # validate tightly; even the kinked ones stay within a quarter of
    # their range.
    nrmse = {name: m["normalized_rmse"] for name, m in validation.metrics.items()}
    assert nrmse["effective_data_rate"] < 0.25
    assert nrmse["average_load_power"] < 0.30
    finite = [v for v in nrmse.values() if np.isfinite(v)]
    assert np.median(finite) < 0.35
