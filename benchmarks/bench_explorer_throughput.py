"""R-X1 — design-point evaluation throughput: serial / process / cached.

The exploration layer's scaling benchmark, seeding the perf trajectory
for the execution subsystem (:mod:`repro.exec`).  One 64-point LHS
over the canonical 5-factor space is evaluated on the envelope engine
three ways:

* ``serial``  — the in-process reference backend with the vectorized
  batch core disabled (one scalar mission at a time: the historical
  ~18 points/sec baseline, re-measured every run),
* ``batched`` — the same serial backend with the vectorized
  :class:`~repro.sim.batch.EnvelopeBatchEngine` core on (the
  default); must be bit-identical to ``serial`` and is the headline
  raw-speed number,
* ``process`` — chunked ``multiprocessing`` fan-out (4+ workers),
* ``cached``  — a repeat of the same design against a warm
  content-addressed evaluation cache,
* ``store``   — a cold run persisting every evaluation to a
  :class:`~repro.exec.store.FileStore`, then warm reruns from *fresh*
  toolkits (fresh engine, fresh in-memory cache — the cross-process /
  cross-host scenario) reading that directory and a SQLite store
  migrated from it, each expected to simulate zero points.

Charging-map grids are prewarmed in the parent before any timing so
every configuration interpolates the same tables — which also makes
the serial/process responses bit-comparable, asserted below.  Numbers
land in ``results/BENCH_explorer_throughput.json``; points/sec is the
headline series.  Note the process speedup is only meaningful with
real CPUs: the JSON records ``cpu_count`` alongside it.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

import numpy as np

from benchmarks.conftest import (
    BENCH_ENVELOPE,
    SMOKE,
    STUDY_MISSION_TIME,
    print_banner,
)
from repro.analysis.io import ensure_results_dir
from repro.fsutil import atomic_write_json
from repro.analysis.tables import format_table
from repro.core.doe.lhs import latin_hypercube
from repro.core.explorer import DesignExplorer
from repro.core.toolkit import SensorNodeDesignToolkit
from repro.exec import EvaluationEngine, SQLiteStore
from repro.obs.events import set_event_log
from repro.obs.export import parse_prometheus, render_prometheus
from repro.obs.metrics import default_registry

N_POINTS = 16 if SMOKE else 64
WORKERS = max(4, os.cpu_count() or 1)


def _toolkit(**kwargs) -> SensorNodeDesignToolkit:
    return SensorNodeDesignToolkit(
        mission_time=STUDY_MISSION_TIME, envelope=BENCH_ENVELOPE, **kwargs
    )


def test_explorer_throughput():
    print_banner("R-X1: explorer throughput (serial / process / cached)")
    design = latin_hypercube(N_POINTS, 5, seed=9)

    # Prewarm the global charging-map grids once, outside all timings.
    warm = _toolkit(cache=False)
    started = time.perf_counter()
    warm.prewarm()
    t_warm = time.perf_counter() - started

    # Serial reference: the scalar per-point engine (batch core off).
    serial = _toolkit(backend="serial", cache=False, batch_simulation=False)
    started = time.perf_counter()
    serial_result = serial.explorer.run_design(design)
    t_serial = time.perf_counter() - started

    # Vectorized batch core (the default): whole design in lockstep,
    # timed twice — bare, and with the observability layer fully
    # enabled (the default registry mirrors the engine through
    # pull-time collectors either way; the instrumented passes also
    # bind the structured event log).  Telemetry must be free on the
    # hot path, so the two are gated within 3% of each other below.
    # The trials interleave and take best-of-N per configuration: at
    # ~0.5 s a run scheduler noise is several percent, and two
    # back-to-back loops would gate on the noise, not the overhead.
    events_tmp = tempfile.NamedTemporaryFile(
        prefix="repro-bench-events-", suffix=".jsonl", delete=False
    )
    events_tmp.close()
    t_batched = t_instrumented = float("inf")
    try:
        for _ in range(3):
            batched = _toolkit(backend="serial", cache=False)
            started = time.perf_counter()
            batched_result = batched.explorer.run_design(design)
            t_batched = min(t_batched, time.perf_counter() - started)

            set_event_log(events_tmp.name)
            instrumented = _toolkit(backend="serial", cache=False)
            started = time.perf_counter()
            instrumented_result = instrumented.explorer.run_design(design)
            t_instrumented = min(
                t_instrumented, time.perf_counter() - started
            )
            set_event_log(None)
        scrape = parse_prometheus(render_prometheus(registry=default_registry()))
    finally:
        set_event_log(None)
        os.unlink(events_tmp.name)
    assert scrape.get("repro_points_evaluated_total", 0.0) >= N_POINTS

    # Process fan-out: workers fork after the serial run, inheriting
    # every grid it touched.
    process = _toolkit(
        backend="process", workers=WORKERS, cache=False
    )
    started = time.perf_counter()
    process_result = process.explorer.run_design(design)
    t_process = time.perf_counter() - started

    # Cached repeat: same design twice against one evaluation cache.
    cached = _toolkit(backend="serial", cache=True)
    cached.explorer.run_design(design)
    stats = cached.exec_engine.cache.stats
    hits_before, lookups_before = stats.hits, stats.lookups
    started = time.perf_counter()
    cached_result = cached.explorer.run_design(design)
    t_cached = time.perf_counter() - started
    rerun_hit_rate = (stats.hits - hits_before) / (
        stats.lookups - lookups_before
    )

    # Persistent store: cold run writes a FileStore; warm reruns come
    # from fresh toolkits (fresh engine + cache, as a new process or
    # another host would build) sharing only the store path.
    store_tmp = tempfile.TemporaryDirectory(prefix="repro-eval-store-")
    store_dir = os.path.join(store_tmp.name, "evals")
    store_cold_toolkit = _toolkit(backend="serial", cache_dir=store_dir)
    started = time.perf_counter()
    store_cold_result = store_cold_toolkit.explorer.run_design(design)
    t_store_cold = time.perf_counter() - started

    store_warm_toolkit = _toolkit(backend="serial", cache_dir=store_dir)
    started = time.perf_counter()
    store_warm_result = store_warm_toolkit.explorer.run_design(design)
    t_store_warm = time.perf_counter() - started
    store_warm_stats = store_warm_result.exec_stats

    # Same evaluations through SQLite: migrate the blobs, rerun warm.
    sqlite_path = os.path.join(store_tmp.name, "evals.sqlite")
    sqlite_store = SQLiteStore(sqlite_path)
    for fingerprint, responses in store_cold_toolkit.exec_engine.cache.items():
        sqlite_store.persist(fingerprint, responses)
    sqlite_toolkit = _toolkit(backend="serial", cache_store=sqlite_store)
    started = time.perf_counter()
    sqlite_warm_result = sqlite_toolkit.explorer.run_design(design)
    t_sqlite_warm = time.perf_counter() - started
    sqlite_warm_stats = sqlite_warm_result.exec_stats

    # Determinism contract: backends must agree bit-for-bit.
    for name in serial.responses:
        assert np.array_equal(
            serial_result.responses[name], batched_result.responses[name]
        ), f"serial/batched divergence in {name}"
        assert np.array_equal(
            serial_result.responses[name], instrumented_result.responses[name]
        ), f"serial/instrumented divergence in {name}"
        assert np.array_equal(
            serial_result.responses[name], process_result.responses[name]
        ), f"serial/process divergence in {name}"
        assert np.array_equal(
            serial_result.responses[name], cached_result.responses[name]
        ), f"serial/cached divergence in {name}"
        for label, persisted in (
            ("file-cold", store_cold_result),
            ("file-warm", store_warm_result),
            ("sqlite-warm", sqlite_warm_result),
        ):
            assert np.array_equal(
                serial_result.responses[name], persisted.responses[name]
            ), f"serial/{label} divergence in {name}"

    def _series(seconds: float) -> dict:
        return {
            "seconds": seconds,
            "points_per_sec": N_POINTS / seconds if seconds > 0 else float("inf"),
        }

    payload = {
        "benchmark": "explorer_throughput",
        "smoke": SMOKE,
        "n_points": N_POINTS,
        "k_factors": 5,
        "mission_time_s": STUDY_MISSION_TIME,
        "cpu_count": os.cpu_count(),
        "workers": WORKERS,
        "chunk_size": process.exec_engine.backend.last_chunk_size,
        "map_prewarm_seconds": t_warm,
        "serial": _series(t_serial),
        "batched": _series(t_batched),
        "batched_instrumented": _series(t_instrumented),
        "instrumented_overhead_ratio": t_instrumented / t_batched,
        "process": _series(t_process),
        "cached": _series(t_cached),
        "speedup_batched_vs_serial": t_serial / t_batched,
        "speedup_process_vs_serial": t_serial / t_process,
        "speedup_cached_vs_serial": t_serial / t_cached,
        "cache_hit_rate_on_rerun": rerun_hit_rate,
        "exec_stats_process": process.exec_engine.stats(),
        "store": {
            "file_cold": _series(t_store_cold),
            "file_warm": _series(t_store_warm),
            "sqlite_warm": _series(t_sqlite_warm),
            "file_warm_points_evaluated": store_warm_stats[
                "points_evaluated"
            ],
            "file_warm_hit_rate": store_warm_stats["cache"]["hit_rate"],
            "sqlite_warm_points_evaluated": sqlite_warm_stats[
                "points_evaluated"
            ],
            "sqlite_warm_hit_rate": sqlite_warm_stats["cache"]["hit_rate"],
            "speedup_file_warm_vs_cold": t_store_cold / t_store_warm,
            "speedup_sqlite_warm_vs_cold": t_store_cold / t_sqlite_warm,
        },
    }
    path = os.path.join(
        ensure_results_dir(), "BENCH_explorer_throughput.json"
    )
    atomic_write_json(path, payload, indent=2, sort_keys=True)

    rows = [
        ["serial", t_serial, N_POINTS / t_serial, 1.0],
        ["batched", t_batched, N_POINTS / t_batched, t_serial / t_batched],
        [
            "batched+obs",
            t_instrumented,
            N_POINTS / t_instrumented,
            t_serial / t_instrumented,
        ],
        ["process", t_process, N_POINTS / t_process, t_serial / t_process],
        ["cached", t_cached, N_POINTS / t_cached, t_serial / t_cached],
        [
            "store cold (file)",
            t_store_cold,
            N_POINTS / t_store_cold,
            t_serial / t_store_cold,
        ],
        [
            "store warm (file)",
            t_store_warm,
            N_POINTS / t_store_warm,
            t_serial / t_store_warm,
        ],
        [
            "store warm (sqlite)",
            t_sqlite_warm,
            N_POINTS / t_sqlite_warm,
            t_serial / t_sqlite_warm,
        ],
    ]
    print(
        format_table(
            ["backend", "wall [s]", "points/s", "speedup"],
            rows,
            title=(
                f"{N_POINTS}-point LHS, {STUDY_MISSION_TIME:.0f} s missions, "
                f"{WORKERS} workers on {os.cpu_count()} CPU(s); "
                f"JSON: {path}"
            ),
        )
    )

    # A warm cache answers a repeated design without re-simulating.
    assert rerun_hit_rate >= 0.90
    assert t_cached < 0.25 * t_serial
    # The warm-start proof: fresh engines over a persisted store
    # simulate nothing and answer everything from storage.
    assert store_warm_stats["points_evaluated"] == 0
    assert store_warm_stats["cache"]["hit_rate"] == 1.0
    assert sqlite_warm_stats["points_evaluated"] == 0
    assert sqlite_warm_stats["cache"]["hit_rate"] == 1.0
    sqlite_store.close()
    store_tmp.cleanup()
    # The vectorized batch core is the raw-speed deliverable: same
    # bits (asserted above), several times the scalar throughput.
    # The headline gate is 5x the *historical* ~18 points/sec serial
    # baseline (the scalar path itself got ~2x faster from map-lookup
    # memoization, so the same-run ratio is a looser don't-regress
    # floor).  Smoke mode (16 short points on shared CI runners,
    # amortization cut short) keeps only the ratio floor.
    assert t_serial / t_batched >= (1.5 if SMOKE else 2.0)
    # Observability must cost nothing on the hot path: collectors are
    # pulled at scrape time and the event log is written only on
    # flush, so the instrumented run stays within 3% of the batched
    # figure from the same machine moments earlier.  Smoke mode (16
    # short points, ~0.1 s runs on shared CI runners) loosens the
    # ratio to what scheduler noise allows.
    assert t_instrumented <= t_batched * (1.10 if SMOKE else 1.03), (
        f"observability overhead {t_instrumented / t_batched - 1.0:.1%} "
        f"exceeds budget (batched {t_batched:.3f}s -> "
        f"instrumented {t_instrumented:.3f}s)"
    )
    if not SMOKE:
        assert N_POINTS / t_batched >= 5.0 * 18.0
    # Parallel scaling needs real CPUs; only gate on it where they
    # exist (the JSON records the measurement either way).  Smoke mode
    # (16 short points on shared CI runners) uses a looser floor as a
    # don't-regress gate; the full benchmark enforces the 3x target.
    if (os.cpu_count() or 1) >= 4:
        assert t_serial / t_process >= (1.5 if SMOKE else 3.0)
