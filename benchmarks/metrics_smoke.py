"""Observability smoke, driven by CI.

Proves the acceptance properties of the observability layer against
*real* ``repro-worker`` processes on one shared substrate:

1. **Scrape-able study** — while a two-worker fleet (one of which is
   SIGKILLed mid-lease) drains a study, a ``repro.obs`` HTTP exporter
   serves Prometheus text exposition combining the local registry
   with a fresh fleet sample per scrape; the final scrape must carry
   ``repro_jobs_completed_total``, ``repro_lease_reclaims_total`` and
   ``repro_cache_hits_total`` series with the expected values.
2. **Reconstructable history** — the shared JSONL event log alone
   (no live substrate access) reconstructs the queue's depth
   trajectory, each worker's lease lifecycle (grants → exit), and the
   reclaim of the killed worker's jobs by the survivor.

Usage::

    python benchmarks/metrics_smoke.py \
        --store /tmp/metrics-evals.sqlite --json results/metrics_smoke.json

Exit status is non-zero on any property violation.  The event log is
left beside the store (``*.events.jsonl``) so CI can upload it as an
artifact.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

from repro.exec import EvaluationEngine, Job, queue_for_store, resolve_store
from repro.fsutil import atomic_write_json
from repro.obs.events import default_events_path, read_events, set_event_log
from repro.obs.export import parse_prometheus, serve_metrics
from repro.obs.fleet import aggregate_event_counters, sample_fleet

EVALUATOR_SPEC = "benchmarks.metrics_smoke:make_evaluator"
STALLING_SPEC = "benchmarks.metrics_smoke:make_stalling_evaluator"


def _synthetic(point):
    a, b = point["a"], point["b"]
    return {"y1": math.sin(a) * b + a * a, "y2": math.exp(-abs(b)) + 3.0 * a}


def make_evaluator():
    """Worker-side factory: a fast deterministic point evaluator."""
    return _synthetic


def make_stalling_evaluator():
    """Victim factory: stalls far past any lease TTL; never survives."""

    def stall(point):
        time.sleep(600.0)
        raise AssertionError("stalling evaluator must be killed")

    return stall


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def spawn_worker(
    store: str, events: str, *extra: str, evaluator: str = EVALUATOR_SPEC
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.exec.worker", store,
            "--evaluator", evaluator,
            "--events", events,
            "--no-map-store",
            "--json",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _cache_phase(events_path: str) -> None:
    """Local engine work whose counters reach the log via the engine's
    close-time flush: the second pass is pure cache hits, so
    ``repro_cache_hits_total`` must survive cross-process aggregation."""
    set_event_log(events_path)
    engine = EvaluationEngine(_synthetic, backend="serial", cache=True)
    points = [{"a": 0.1 * i, "b": 1.0 + 0.1 * i} for i in range(8)]
    engine.map_points(points)
    engine.map_points(points)  # 8 hits
    engine.close()


def run_smoke(store_spec: str, n_points: int) -> dict:
    events_path = default_events_path(store_spec)
    summary: dict = {"store": store_spec, "events": events_path}

    _cache_phase(events_path)

    store = resolve_store(store_spec)
    queue = queue_for_store(store)
    jobs = [
        Job(f"{i:02d}" * 30, {"a": 0.2 * i, "b": 1.0 + 0.05 * i})
        for i in range(n_points)
    ]
    queue.submit(jobs)

    # Victim: short TTL, stalling evaluator — SIGKILL lands while it
    # provably holds leases.
    victim = spawn_worker(
        store_spec, events_path, "--batch", "2", "--lease-seconds", "2",
        "--poll", "0.05", evaluator=STALLING_SPEC,
    )
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if queue.stats().leased > 0:
            break
        time.sleep(0.1)
    else:
        victim.kill()
        raise SmokeFailure("victim worker never leased any jobs")
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)

    survivor = spawn_worker(
        store_spec, events_path, "--drain", "--idle-timeout", "120",
        "--batch", "2", "--poll", "0.05",
    )
    out, err = survivor.communicate(timeout=300)
    check(survivor.returncode == 0, f"survivor worker failed: {err}")
    survivor_report = json.loads(out)
    stats = queue.stats()
    check(
        stats.done == n_points and stats.outstanding == 0,
        f"queue not drained after kill: {stats.as_dict()}",
    )

    # -- property 1: the exporter serves the whole story ------------------
    server = serve_metrics(
        port=0, extra_samples=lambda: sample_fleet(store_spec).samples()
    )
    try:
        body = urllib.request.urlopen(server.url, timeout=10).read().decode()
    finally:
        server.stop()
    series = parse_prometheus(body)

    def series_total(name: str) -> float:
        return sum(v for k, v in series.items() if k.startswith(name))

    completed = series_total("repro_jobs_completed_total")
    check(
        completed >= n_points,
        f"scrape shows {completed} jobs completed, expected >= {n_points}",
    )
    reclaims = series_total("repro_lease_reclaims_total")
    check(reclaims >= 1, "scrape shows no lease reclaims after a SIGKILL")
    hits = series_total("repro_cache_hits_total")
    check(hits >= 8, f"scrape shows {hits} cache hits, expected >= 8")
    depth_done = series.get('repro_queue_depth{status="done"}', 0.0)
    check(
        depth_done == n_points,
        f"sampled queue depth done={depth_done}, expected {n_points}",
    )
    summary["scrape"] = {
        "jobs_completed": completed,
        "lease_reclaims": reclaims,
        "cache_hits": hits,
        "series": len(series),
    }

    # -- property 2: the event log alone reconstructs the lifecycle -------
    grants = read_events(events_path, event="lease_grant")
    reclaim_events = read_events(events_path, event="lease_reclaim")
    exits = read_events(events_path, event="worker_exit")
    check(len(grants) >= 2, "expected lease grants from victim and survivor")
    victim_ids = {g["worker"] for g in grants} - {
        e["worker"] for e in exits
    }
    check(
        len(victim_ids) == 1,
        f"exactly one worker must have died leaseholding: {victim_ids}",
    )
    victim_id = victim_ids.pop()
    check(
        any(r["from_worker"] == victim_id for r in reclaim_events),
        f"no reclaim event names the killed worker {victim_id}",
    )
    survivor_ids = {e["worker"] for e in exits}
    check(
        survivor_report["worker_id"] in survivor_ids,
        "survivor's exit event is missing",
    )
    # Depth trajectory: grants cover every job at least once, and the
    # aggregated counters agree with the substrate's final state.
    granted_jobs = sum(int(g.get("jobs", 0)) for g in grants)
    check(
        granted_jobs >= n_points,
        f"grants cover {granted_jobs} jobs, expected >= {n_points}",
    )
    counters = aggregate_event_counters(events_path)
    agg_completed = sum(
        v for k, v in counters.items()
        if k.startswith("repro_jobs_completed_total")
    )
    check(
        agg_completed == n_points,
        f"event-log aggregation says {agg_completed} completed, "
        f"queue says {n_points}",
    )
    summary["event_log"] = {
        "grants": len(grants),
        "reclaims": len(reclaim_events),
        "victim": victim_id,
        "granted_jobs": granted_jobs,
        "records": len(read_events(events_path)),
    }

    queue.close()
    store.close()
    set_event_log(None)
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--store", required=True,
        help="substrate path: directory or *.sqlite/*.db",
    )
    parser.add_argument(
        "--json", default=None, help="where to write the summary JSON"
    )
    parser.add_argument("--points", type=int, default=8)
    args = parser.parse_args(argv)

    summary = {"benchmark": "metrics_smoke", "n_points": args.points}
    try:
        summary.update(run_smoke(args.store, args.points))
        summary["ok"] = True
    except SmokeFailure as failure:
        summary["ok"] = False
        summary["failure"] = str(failure)
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.json:
        atomic_write_json(args.json, summary, indent=2, sort_keys=True)
    if summary["ok"]:
        print(
            "metrics smoke verified: scrape-able exporter + event log "
            "reconstructing the lease-reclaim lifecycle"
        )
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
