"""R-F1 — harvested power vs ambient frequency, tuned vs untuned.

The figure that motivates tunable harvesters: a fixed 64 Hz device
collapses within ~1 Hz of resonance (the Q=62 mechanical peak plus the
rectifier's conduction threshold), while the tuned device holds its
output across the whole 64-78 Hz band.
"""

import numpy as np

from benchmarks.conftest import BENCH_ENVELOPE, print_banner
from repro.analysis.ascii_plot import ascii_line_plot
from repro.analysis.io import write_csv
from repro.presets import default_system
from repro.sim.envelope import ChargingMap

AMPLITUDE = 0.6
V_STORE = 2.6
FREQS = np.arange(62.0, 80.01, 0.5)


def test_fig1_tuning_curve(benchmark):
    print_banner("R-F1: charging power vs ambient frequency, tuned vs untuned")
    config = default_system()
    cmap = ChargingMap(config, BENCH_ENVELOPE)
    harvester = config.harvester
    untuned_gap = harvester.default_gap()

    def sweep():
        tuned, untuned = [], []
        for f in FREQS:
            gap = harvester.gap_for_frequency(
                harvester.tuning.clamp_frequency(float(f))
            )
            tuned.append(cmap.current(V_STORE, float(f), AMPLITUDE, gap))
            untuned.append(
                cmap.current(V_STORE, float(f), AMPLITUDE, untuned_gap)
            )
        return np.array(tuned), np.array(untuned)

    tuned, untuned = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tuned_uw = tuned * V_STORE * 1e6
    untuned_uw = untuned * V_STORE * 1e6
    print(
        ascii_line_plot(
            {
                "tuned": (FREQS, tuned_uw),
                "untuned (64 Hz)": (FREQS, untuned_uw),
            },
            title="store-charging power [uW] vs ambient frequency [Hz]",
            x_label="Hz",
            y_label="uW",
        )
    )
    write_csv(
        "fig1_tuning_curve.csv",
        {"freq_hz": FREQS, "tuned_uw": tuned_uw, "untuned_uw": untuned_uw},
    )

    band_lo, band_hi = harvester.tuning.achievable_band
    in_band = (FREQS >= band_lo + 0.5) & (FREQS <= band_hi - 0.5)
    # Shape: the tuned device holds power across the band.
    assert np.min(tuned_uw[in_band]) > 0.3 * np.max(tuned_uw)
    # The untuned device collapses a few Hz above its 64 Hz resonance.
    far_off = FREQS >= 70.0
    assert np.max(untuned_uw[far_off]) < 0.05 * np.max(untuned_uw)
    # Near 64 Hz both devices behave the same (the tuned one parks at
    # the same gap).
    near = np.argmin(np.abs(FREQS - 64.5))
    assert untuned_uw[near] == np.max(untuned_uw)
