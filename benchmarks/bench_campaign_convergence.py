"""Evaluations-to-optimum: one-shot CCD+grid vs adaptive campaign.

The paper's flow spends its whole simulation budget up front — a CCD,
a validation LHS, one fit, one grid optimization.  The adaptive
campaign (:mod:`repro.campaign`) spends sequentially and stops when
the optimum stabilises.  This benchmark runs both flows on the
quickstart problem (the canonical node over its two headline knobs,
supercapacitance and reporting interval, optimizing the standard
desirability) and records *evaluations-to-optimum*: the campaign must
land within tolerance of the one-shot optimum while simulating
measurably fewer missions.

Both optima are then checked against the simulator itself: one extra
mission at each optimum (not counted in either budget) scores the
*true* composite desirability there, so the comparison cannot be
flattered by surrogate error.

Series land in ``results/BENCH_campaign_convergence.json``.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import (
    BENCH_ENVELOPE,
    SMOKE,
    STUDY_MISSION_TIME,
    print_banner,
)
from repro.analysis.io import ensure_results_dir
from repro.fsutil import atomic_write_json
from repro.analysis.tables import format_table
from repro.core.factors import DesignSpace, Factor
from repro.core.toolkit import (
    SensorNodeDesignToolkit,
    standard_desirability,
)

#: The quickstart problem's two headline knobs (the factors
#: examples/quickstart.py varies around the canonical node).
def _space() -> DesignSpace:
    return DesignSpace(
        [
            Factor("capacitance", 0.10, 1.00, units="F"),
            Factor("tx_interval", 2.0, 60.0, transform="log", units="s"),
        ]
    )


def _toolkit() -> SensorNodeDesignToolkit:
    return SensorNodeDesignToolkit(
        space=_space(),
        mission_time=STUDY_MISSION_TIME,
        envelope=BENCH_ENVELOPE,
    )


#: Score tolerance (composite desirability is in [0, 1]): the campaign
#: optimum's *simulated* score must not trail the one-shot's by more.
SCORE_TOL = 0.10


def _simulated_score(toolkit, desirability, point) -> float:
    responses = toolkit.evaluate_point(point)
    return float(desirability(responses))


def test_campaign_convergence():
    print_banner(
        "Adaptive campaign vs one-shot CCD: evaluations-to-optimum"
    )
    desirability = standard_desirability()

    # -- one-shot: the paper's flow (CCD + validation + grid optimum).
    oneshot = _toolkit()
    study = oneshot.run_study(design="ccd", validate_points=10)
    outcome, oneshot_point = study.optimize(desirability)
    oneshot_evals = study.meta["exec"]["points_evaluated"]

    # -- adaptive: sequential fit -> diagnose -> acquire rounds.
    adaptive = _toolkit()
    result = adaptive.run_campaign(
        objective=desirability,
        config={
            "max_rounds": 6,
            "batch": 4,
            "initial_design": "lhs",
            "initial_runs": 8,
            "seed": 17,
            "optimum_tol": 0.1,
            # The surrogate-accuracy stop: once the cross-validated
            # error of the objective responses is under 8% of their
            # span, further rounds only re-confirm the optimum.
            "cv_floor": 0.08,
        },
    )
    campaign_evals = result.evaluations["simulated"]
    campaign_point = result.best["point"]

    # -- referee: one uncounted mission at each claimed optimum.
    referee = _toolkit()
    score_oneshot = _simulated_score(
        referee, desirability, oneshot_point
    )
    score_campaign = _simulated_score(
        referee, desirability, campaign_point
    )

    rows = [
        ["one-shot CCD+grid", oneshot_evals, outcome.value, score_oneshot],
        [
            "adaptive campaign",
            campaign_evals,
            result.best["value"],
            score_campaign,
        ],
    ]
    print(
        format_table(
            ["flow", "simulations", "predicted D", "simulated D"], rows
        )
    )
    saved = oneshot_evals - campaign_evals
    print(
        f"campaign stop: {result.stop_reason} after {result.n_rounds} "
        f"rounds; {saved} simulations saved "
        f"({campaign_evals}/{oneshot_evals} = "
        f"{campaign_evals / oneshot_evals:.2f}x one-shot budget)"
    )

    payload = {
        "benchmark": "campaign_convergence",
        "smoke": SMOKE,
        "mission_time_s": STUDY_MISSION_TIME,
        "cpu_count": os.cpu_count(),
        "score_tolerance": SCORE_TOL,
        "oneshot": {
            "evaluations": int(oneshot_evals),
            "optimum": oneshot_point,
            "predicted_score": float(outcome.value),
            "simulated_score": score_oneshot,
        },
        "campaign": {
            "evaluations": int(campaign_evals),
            "rounds": result.n_rounds,
            "stop_reason": result.stop_reason,
            "optimum": campaign_point,
            "predicted_score": float(result.best["value"]),
            "simulated_score": score_campaign,
        },
        "savings": {
            "evaluations_saved": int(saved),
            "budget_ratio": campaign_evals / oneshot_evals,
            "score_gap": score_oneshot - score_campaign,
        },
    }
    path = os.path.join(
        ensure_results_dir(), "BENCH_campaign_convergence.json"
    )
    atomic_write_json(path, payload, indent=2, sort_keys=True)
    print(f"series written to {path}")

    # The acceptance pair: measurably fewer simulations, optimum
    # within tolerance of the one-shot one (scored by the simulator).
    assert campaign_evals < oneshot_evals, (
        f"campaign used {campaign_evals} simulations, one-shot "
        f"{oneshot_evals}"
    )
    assert score_campaign >= score_oneshot - SCORE_TOL, (
        f"campaign optimum scores {score_campaign:.3f}, one-shot "
        f"{score_oneshot:.3f} (tolerance {SCORE_TOL})"
    )

    oneshot.close()
    adaptive.close()
    referee.close()


if __name__ == "__main__":
    test_campaign_convergence()
