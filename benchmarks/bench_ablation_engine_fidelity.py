"""R-A3 — ablation: envelope engine vs full-fidelity transient.

The envelope engine buys its four-orders-of-magnitude mission speedup
by compressing the electrical dynamics into the charging map; this
bench measures what that costs on an overlapping horizon by comparing
store-voltage change and delivered packets against the linearized
full-fidelity engine.
"""

import numpy as np

from benchmarks.conftest import BENCH_ENVELOPE, print_banner
from repro.analysis.tables import format_table
from repro.presets import default_system
from repro.sim.runner import MissionConfig, simulate

HORIZON = 20.0  # seconds both engines can afford


def test_ablation_engine_fidelity(benchmark):
    print_banner("R-A3: envelope vs full-fidelity on a common horizon")
    config = default_system(
        tx_interval=4.0, with_controller=False, v_initial=3.0
    )

    full = simulate(
        config,
        MissionConfig(
            t_end=HORIZON,
            engine="linearized",
            steps_per_period=120,
            record_dt=0.05,
        ),
    )

    result = benchmark.pedantic(
        lambda: simulate(
            config,
            MissionConfig(
                t_end=HORIZON,
                engine="envelope",
                envelope=BENCH_ENVELOPE,
                record_dt=0.5,
            ),
        ),
        rounds=1,
        iterations=1,
    )
    envelope = result

    dv_full = full.final_store_voltage() - 3.0
    dv_env = envelope.final_store_voltage() - 3.0
    rows = [
        [
            "linearized (full fidelity)",
            full.wall_time,
            full.counter("packets_delivered"),
            dv_full * 1e3,
        ],
        [
            "envelope",
            envelope.wall_time,
            envelope.counter("packets_delivered"),
            dv_env * 1e3,
        ],
    ]
    print(
        format_table(
            ["engine", "wall [s]", "packets", "delta V_store [mV]"],
            rows,
            title=f"{HORIZON:.0f} s mission, 4 s reporting period",
        )
    )

    # Shape: packet counts agree within the one boundary event (the
    # envelope's instantaneous task cycles can land one event exactly
    # on t_end that the full engine's 8 ms cycles push past it);
    # store-voltage change agrees within a couple of millivolts (the
    # envelope neglects intra-cycle ripple); the envelope engine is
    # far faster even at this tiny horizon.
    assert abs(
        envelope.counter("packets_delivered")
        - full.counter("packets_delivered")
    ) <= 1.0
    assert abs(dv_env - dv_full) < 3e-3
    assert envelope.wall_time < full.wall_time
