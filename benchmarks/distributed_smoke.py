"""Distributed-evaluation smoke, driven by CI.

Proves the two acceptance properties of the job-queue architecture
with *real* ``repro-worker`` processes against one shared substrate:

1. **Cooperative completion** — a study submitted with the
   distributed backend (``cooperate=False``, so the submitter never
   simulates) is completed by two independent worker processes, and
   the assembled responses are bit-identical to an in-process serial
   run.  Both workers must have completed jobs.
2. **Lease reclamation** — a worker SIGKILLed mid-lease loses
   nothing: its leased points are reclaimed after the TTL and
   finished by a survivor worker, and the final responses are still
   bit-identical to serial.

Usage::

    python benchmarks/distributed_smoke.py \
        --store /tmp/dist-evals.sqlite --json results/distributed_smoke.json

A ``--store`` path ending in ``.sqlite``/``.db`` keeps results and
queue in one database; any other path is a file store + ``.queue/``
directory.  Exit status is non-zero on any property violation.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

from repro.core.doe.lhs import latin_hypercube
from repro.fsutil import atomic_write_json
from repro.core.factors import DesignSpace, Factor
from repro.core.toolkit import SensorNodeDesignToolkit
from repro.exec import DistributedBackend, queue_for_store, resolve_store
from repro.sim.envelope import EnvelopeOptions

SMOKE_ENVELOPE = EnvelopeOptions(
    map_v_points=4,
    map_nr_warmup_cycles=4,
    map_warmup_cycles=8,
    map_measure_cycles=6,
    map_max_blocks=3,
    map_steps_per_period=80,
)

MISSION_TIME = 120.0

#: Evaluator spec worker subprocesses are pointed at.
EVALUATOR_SPEC = "benchmarks.distributed_smoke:make_evaluator"


def _space() -> DesignSpace:
    return DesignSpace(
        [
            Factor("capacitance", 0.10, 1.00, units="F"),
            Factor("tx_interval", 2.0, 60.0, transform="log", units="s"),
        ]
    )


def make_evaluator() -> SensorNodeDesignToolkit:
    """Worker-side factory: a toolkit configured like the submitter.

    Returned object exposes ``evaluate_points_timed``, so leased
    batches ride the amortized serial path inside each worker.
    """
    return SensorNodeDesignToolkit(
        space=_space(),
        mission_time=MISSION_TIME,
        envelope=SMOKE_ENVELOPE,
        cache=False,
    )


def make_stalling_evaluator():
    """Worker-side factory for the kill phase's victim: an evaluator
    that blocks far past any lease TTL, so the victim provably holds
    (expired) leases when the SIGKILL lands.  Workers only heartbeat
    *between* points, so a single stalled point cannot keep its lease
    alive — which is exactly the mid-evaluation death this phase
    simulates.  The sleep is never survived: the process is killed.
    """

    def stall(point):
        time.sleep(600.0)
        raise AssertionError("stalling evaluator must be killed")

    return stall


def spawn_worker(
    store: str, *extra: str, evaluator: str = EVALUATOR_SPEC
) -> subprocess.Popen:
    """A real ``python -m repro.exec.worker`` subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.exec.worker",
            store,
            "--evaluator",
            evaluator,
            "--json",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _phase_cooperative(
    store_spec: str, points, fingerprints, reference
) -> dict:
    """Two workers drain one queue; the submitter only assembles."""
    store = resolve_store(store_spec)
    backend = DistributedBackend(
        store, cooperate=False, poll_interval=0.05, timeout=600.0
    )
    toolkit = make_evaluator()
    started = time.perf_counter()
    handle = backend.submit(
        toolkit.evaluate_point, points, fingerprints=fingerprints
    )
    workers = [
        spawn_worker(
            store_spec,
            "--drain",
            "--idle-timeout",
            "120",
            "--batch",
            "1",
            "--poll",
            "0.05",
            "--throttle",
            "0.25",
        )
        for _ in range(2)
    ]
    results = handle.result()
    elapsed = time.perf_counter() - started
    # Submitter-side substrate budget, captured before the phase's
    # own verification reads touch the counters.  The amortized wire
    # discipline costs O(1) store round trips per assembly tick
    # (one batched load_many regardless of outstanding points) and a
    # bounded number of queue transactions per tick — so both totals
    # are functions of tick count, never of tick count x points.
    ticks = backend.poll_sleeps + len(points) + 1
    submitter_ops = {
        "store_round_trips": store.stats.round_trips,
        "queue_transactions": backend.queue.transactions,
        "poll_sleeps": backend.poll_sleeps,
        "tick_budget": ticks,
    }
    check(
        store.stats.round_trips <= 1 + ticks,
        f"store budget blown: {store.stats.round_trips} round trips for "
        f"{ticks} assembly ticks — result assembly is no longer "
        f"batched ({submitter_ops})",
    )
    check(
        backend.queue.transactions <= 1 + 2 * ticks,
        f"queue budget blown: {backend.queue.transactions} "
        f"transactions for {ticks} assembly ticks ({submitter_ops})",
    )
    reports = []
    for proc in workers:
        out, err = proc.communicate(timeout=300)
        check(proc.returncode == 0, f"worker failed: {err}")
        reports.append(json.loads(out))

    for i, ((responses, _), expected) in enumerate(zip(results, reference)):
        check(
            responses == expected,
            f"cooperative responses diverge from serial at point {i}",
        )
    completed = [r["jobs_completed"] for r in reports]
    check(
        sum(completed) == len(points),
        f"workers completed {sum(completed)} of {len(points)} jobs",
    )
    check(
        all(c > 0 for c in completed),
        f"study was not cooperative: per-worker completions {completed}",
    )
    queue = queue_for_store(store)
    stats = queue.stats()
    check(
        stats.done == len(points) and stats.outstanding == 0,
        f"queue not drained: {stats.as_dict()}",
    )
    worker_ids = {
        record.worker_id for record in queue.jobs() if record.status == "done"
    }
    check(
        len(worker_ids) >= 2,
        f"fewer than 2 distinct workers completed jobs: {worker_ids}",
    )
    backend.close()
    store.close()
    return {
        "seconds": elapsed,
        "points_per_sec": len(points) / elapsed,
        "per_worker_completed": completed,
        "distinct_workers": len(worker_ids),
        "submitter_ops": submitter_ops,
        "worker_reports": reports,
    }


def _phase_kill_reclaim(
    store_spec: str, points, fingerprints, reference
) -> dict:
    """A SIGKILLed worker's leases are finished by the survivor."""
    store = resolve_store(store_spec)
    backend = DistributedBackend(
        store, cooperate=False, poll_interval=0.05, timeout=600.0
    )
    toolkit = make_evaluator()
    handle = backend.submit(
        toolkit.evaluate_point, points, fingerprints=fingerprints
    )
    queue = queue_for_store(store)
    # The victim leases with a short TTL and an evaluator that stalls
    # far past it, so SIGKILL lands while it provably holds leases.
    # (A throttle cannot pin this any more: throttled workers now
    # sleep *before* leasing, precisely so they never hold jobs idle.)
    victim = spawn_worker(
        store_spec,
        "--batch",
        "2",
        "--lease-seconds",
        "2",
        "--poll",
        "0.05",
        evaluator="benchmarks.distributed_smoke:make_stalling_evaluator",
    )
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if queue.stats().leased > 0:
            break
        time.sleep(0.1)
    else:
        victim.kill()
        raise SmokeFailure("victim worker never leased any jobs")
    leased_before_kill = queue.stats().leased
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)

    survivor = spawn_worker(
        store_spec,
        "--drain",
        "--idle-timeout",
        "120",
        "--batch",
        "1",
        "--poll",
        "0.05",
    )
    results = handle.result()
    out, err = survivor.communicate(timeout=300)
    check(survivor.returncode == 0, f"survivor worker failed: {err}")
    survivor_report = json.loads(out)

    for i, ((responses, _), expected) in enumerate(zip(results, reference)):
        check(
            responses == expected,
            f"post-kill responses diverge from serial at point {i}",
        )
    stats = queue.stats()
    check(
        stats.done == len(points) and stats.outstanding == 0,
        f"points lost after kill: {stats.as_dict()}",
    )
    check(
        survivor_report["jobs_completed"] == len(points),
        f"survivor completed {survivor_report['jobs_completed']} "
        f"of {len(points)}",
    )
    reclaimed = [
        record.job_id
        for record in queue.jobs()
        if record.attempts >= 2 and record.status == "done"
    ]
    check(
        len(reclaimed) >= 1,
        "no job shows a reclaimed (second) lease attempt",
    )
    backend.close()
    store.close()
    return {
        "leased_at_kill": leased_before_kill,
        "reclaimed_jobs": len(reclaimed),
        "survivor_completed": survivor_report["jobs_completed"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--store",
        required=True,
        help="shared substrate path: directory or *.sqlite/*.db "
        "(two derived paths are used, one per phase)",
    )
    parser.add_argument(
        "--json", default=None, help="where to write the summary JSON"
    )
    parser.add_argument(
        "--points", type=int, default=8, help="LHS design size"
    )
    args = parser.parse_args(argv)

    space = _space()
    design = latin_hypercube(args.points, 2, seed=29)
    points = [space.point_to_dict(row) for row in design.matrix]
    fingerprints = [f"smoke-{i:03d}" for i in range(len(points))]

    # Serial reference in this process (also prewarms charging maps).
    toolkit = make_evaluator()
    started = time.perf_counter()
    reference = [toolkit.evaluate_point(point) for point in points]
    t_serial = time.perf_counter() - started

    base = Path(args.store)
    if base.suffix:
        coop_spec = str(base.with_name(f"coop-{base.name}"))
        kill_spec = str(base.with_name(f"kill-{base.name}"))
    else:
        coop_spec = str(base / "coop")
        kill_spec = str(base / "kill")

    summary = {
        "benchmark": "distributed_smoke",
        "n_points": args.points,
        "mission_time_s": MISSION_TIME,
        "serial_seconds": t_serial,
        "cpu_count": os.cpu_count(),
    }
    try:
        print("== phase 1: cooperative two-worker study ==")
        summary["cooperative"] = _phase_cooperative(
            coop_spec, points, fingerprints, reference
        )
        print(json.dumps(summary["cooperative"], sort_keys=True))
        print("== phase 2: kill a worker mid-lease ==")
        summary["kill_reclaim"] = _phase_kill_reclaim(
            kill_spec, points, fingerprints, reference
        )
        print(json.dumps(summary["kill_reclaim"], sort_keys=True))
        summary["ok"] = True
    except SmokeFailure as failure:
        summary["ok"] = False
        summary["failure"] = str(failure)
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.json:
        atomic_write_json(args.json, summary, indent=2, sort_keys=True)
    if summary["ok"]:
        print(
            "distributed smoke verified: bit-identical cooperative "
            "completion + lease reclamation with no lost points"
        )
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
