"""R-SC2 — test scenario 2: drifting machine tone.

The tuning controller's reason to exist: the ambient frequency drifts
slowly through the band; with the controller the harvester follows
(multiple retunes, small RMS tracking error, several times the
untuned harvest), without it the device goes dark as the tone leaves
its +-0.5 Hz usable band.
"""

import numpy as np

from benchmarks.conftest import BENCH_ENVELOPE, print_banner
from repro.analysis.io import write_csv
from repro.analysis.tables import format_table
from repro.presets import scenario_system
from repro.sim.runner import MissionConfig, simulate

MISSION = 1800.0


def test_scenario2_drift(benchmark):
    print_banner("R-SC2: drifting machine tone, tuning on vs off")

    def run_pair():
        with_tuning = simulate(
            scenario_system("drift"),
            MissionConfig(
                t_end=MISSION, engine="envelope", envelope=BENCH_ENVELOPE
            ),
        )
        without = simulate(
            scenario_system("drift", with_controller=False),
            MissionConfig(
                t_end=MISSION, engine="envelope", envelope=BENCH_ENVELOPE
            ),
        )
        return with_tuning, without

    tuned, untuned = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    rows = []
    for label, res in (("with controller", tuned), ("no controller", untuned)):
        rows.append(
            [
                label,
                res.energy("harvested") * 1e3,
                res.energy("tuning") * 1e3,
                res.counter("retunes"),
                res.tuning_error_rms(),
                res.final_store_voltage(),
            ]
        )
    print(
        format_table(
            [
                "configuration",
                "harvested [mJ]",
                "tuning spend [mJ]",
                "retunes",
                "f err RMS [Hz]",
                "final V",
            ],
            rows,
            title=f"{MISSION:.0f} s mission, 66 -> 70 Hz drift at 7.2 Hz/h",
        )
    )
    write_csv(
        "scenario2_drift.csv",
        {
            "t_s": tuned.times,
            "f_dom": tuned.trace("f_dom"),
            "f_res_tuned": tuned.trace("f_res"),
            "v_store_tuned": tuned.trace("v_store"),
        },
    )

    # Shape: the controller tracks (several retunes, sub-Hz RMS error)
    # and multiplies the harvest relative to the untuned device.
    assert tuned.counter("retunes") >= 3
    assert tuned.tuning_error_rms() < 1.0
    assert untuned.tuning_error_rms() > 1.5
    assert tuned.energy("harvested") > 3.0 * untuned.energy("harvested")
