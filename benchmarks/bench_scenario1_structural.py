"""R-SC1 — test scenario 1: structural monitoring.

Stationary narrow-band excitation (a bridge's dominant mode).  The
design question is pure throughput-vs-margin: how fast can the node
report with zero downtime?  The DoE toolkit answers from a small study
of (capacitance, tx_interval) and the optimum is verified by
simulation.
"""

import numpy as np

from benchmarks.conftest import BENCH_ENVELOPE, print_banner
from repro.analysis.tables import format_table
from repro.core.desirability import CompositeDesirability, Desirability
from repro.core.factors import DesignSpace, Factor
from repro.core.toolkit import SensorNodeDesignToolkit
from repro.presets import scenario_system
from repro.sim.runner import MissionConfig, simulate
from repro.vibration.profiles import bridge_profile


def test_scenario1_structural(benchmark):
    print_banner("R-SC1: structural monitoring (stationary narrow band)")
    baseline = benchmark.pedantic(
        lambda: simulate(
            scenario_system("structural"),
            MissionConfig(
                t_end=1800.0, engine="envelope", envelope=BENCH_ENVELOPE
            ),
        ),
        rounds=1,
        iterations=1,
    )
    print("baseline mission:")
    print(baseline.summary())

    space = DesignSpace(
        [
            Factor("capacitance", 0.10, 1.00, units="F"),
            Factor("tx_interval", 2.0, 60.0, transform="log", units="s"),
        ]
    )
    toolkit = SensorNodeDesignToolkit(
        space=space,
        mission_time=900.0,
        vibration=bridge_profile(),
        envelope=BENCH_ENVELOPE,
        system_kwargs={"dead_band": 1.5, "check_interval": 300.0},
    )
    study = toolkit.run_study(design="ccd", validate_points=0)
    objective = CompositeDesirability(
        {
            "effective_data_rate": Desirability("maximize", 0.0, 80.0),
            "downtime_fraction": Desirability("minimize", 0.0, 0.02),
            "min_store_voltage": Desirability("maximize", 2.3, 2.55),
        }
    )
    outcome, physical = study.optimize(objective)
    print()
    print(
        format_table(
            ["quantity", "value", "units"],
            [
                ["capacitance", physical["capacitance"], "F"],
                ["tx_interval", physical["tx_interval"], "s"],
                ["desirability", outcome.value, "-"],
            ],
            title="RSM-optimal operating point",
        )
    )
    verdict = toolkit.evaluate_point(physical)
    print(
        f"verification sim: rate {verdict['effective_data_rate']:.1f} bit/s, "
        f"downtime {100 * verdict['downtime_fraction']:.2f}%"
    )

    # Shape: the stationary scenario runs clean (no brownouts at the
    # baseline settings) and the optimized point keeps downtime at zero
    # while reporting usefully fast.
    assert baseline.counter("brownout_events") == 0
    assert verdict["downtime_fraction"] < 0.02
    assert verdict["effective_data_rate"] > 5.0
