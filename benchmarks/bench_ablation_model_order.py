"""R-A1 — ablation: RSM model order vs accuracy.

Refits the canonical study's data with linear, two-factor-interaction
and full quadratic models and scores each on the same held-out
validation points: the cost of the extra terms (more runs needed) buys
measurable accuracy on the curved responses.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.analysis.io import write_csv
from repro.analysis.tables import format_table
from repro.core.rsm import ModelSpec, fit_response_surface

RESPONSE = "effective_data_rate"


def test_ablation_model_order(benchmark, canonical_study):
    study = canonical_study
    print_banner("R-A1: RSM model order vs held-out accuracy")
    x = study.exploration.x_coded
    validation = study.validation
    assert validation is not None
    x_val = validation.x_coded

    def refit_all():
        out = {}
        for label, spec in (
            ("linear", ModelSpec.linear(study.space.k)),
            ("2FI", ModelSpec.interaction(study.space.k)),
            ("quadratic", ModelSpec.quadratic(study.space.k)),
        ):
            per_response = {}
            for name in study.surfaces:
                y = study.exploration.responses[name]
                surface = fit_response_surface(
                    x, y, spec, factor_names=study.space.names
                )
                err = surface.predict(x_val) - validation.reference[name]
                span = np.ptp(validation.reference[name])
                per_response[name] = (
                    float(np.sqrt(np.mean(err**2)) / span)
                    if span > 0
                    else float("nan")
                )
            out[label] = (spec.p, per_response)
        return out

    results = benchmark(refit_all)
    rows = []
    for label, (p, metrics) in results.items():
        finite = [v for v in metrics.values() if np.isfinite(v)]
        rows.append(
            [label, p, metrics[RESPONSE], float(np.median(finite))]
        )
    print(
        format_table(
            ["model", "terms", f"NRMSE({RESPONSE})", "median NRMSE"],
            rows,
            title=f"same CCD data ({x.shape[0]} runs), same validation points",
        )
    )
    write_csv(
        "ablation_model_order.csv",
        {
            "terms": [r[1] for r in rows],
            "nrmse_rate": [r[2] for r in rows],
            "nrmse_median": [r[3] for r in rows],
        },
    )

    # Shape: the quadratic model beats plain linear on the curved
    # headline response (the log-coded period makes rate convex).
    assert (
        results["quadratic"][1][RESPONSE] <= results["linear"][1][RESPONSE]
    )
