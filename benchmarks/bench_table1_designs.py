"""R-T1 — the design-parameter table and candidate-design comparison.

Reconstructs the "wide range of system parameters" table: the canonical
5-factor space with physical ranges, then the run counts and quality
diagnostics of every candidate design family across k = 2..6 — the
budget menu the designer picks from before spending simulations.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.analysis.io import write_csv
from repro.analysis.tables import format_table
from repro.core.doe import (
    box_behnken,
    central_composite,
    fractional_factorial,
    latin_hypercube,
    plackett_burman,
    two_level_factorial,
)
from repro.core.doe.diagnostics import d_efficiency, max_column_correlation
from repro.core.factors import canonical_space
from repro.core.rsm.terms import ModelSpec

_FRACTION_GENERATORS = {
    4: ["D=ABC"],
    5: ["E=ABCD"],
    6: ["F=ABCDE"],
}


def _candidate_designs(k):
    designs = [("full 2^k", two_level_factorial(k))]
    if k in _FRACTION_GENERATORS:
        designs.append(
            (
                f"2^({k}-1)",
                fractional_factorial(k, _FRACTION_GENERATORS[k]),
            )
        )
    designs.append(("plackett-burman", plackett_burman(k)))
    designs.append(
        ("ccd", central_composite(k, alpha="face", n_center=3,
                                  fraction=k in (5, 6, 7)))
    )
    if 3 <= k <= 7:
        designs.append(("box-behnken", box_behnken(k)))
    designs.append(("lhs (4k runs)", latin_hypercube(4 * k, k, seed=1)))
    return designs


def test_table1_designs(benchmark):
    space = canonical_space()
    print_banner("R-T1: design factors and candidate designs")
    rows = [
        [f.name, f.low, f.high, f.units or "-", f.transform]
        for f in space.factors
    ]
    print(
        format_table(
            ["factor", "low", "high", "units", "coding"],
            rows,
            title="design factors (canonical 5-factor space)",
        )
    )

    def build_all():
        table = []
        for k in range(2, 7):
            model = ModelSpec.quadratic(k)
            for name, design in _candidate_designs(k):
                quadratic_ok = design.n_runs >= model.p
                table.append(
                    (
                        k,
                        name,
                        design.n_runs,
                        max_column_correlation(design),
                        d_efficiency(design, ModelSpec.linear(k)),
                        quadratic_ok,
                    )
                )
        return table

    table = benchmark(build_all)
    print()
    print(
        format_table(
            ["k", "design", "runs", "max|corr|", "D-eff (linear)", "fits quad?"],
            table,
            title="candidate designs, k = 2..6",
        )
    )
    write_csv(
        "table1_designs.csv",
        {
            "k": [r[0] for r in table],
            "runs": [r[2] for r in table],
            "max_corr": [r[3] for r in table],
            "d_eff": [r[4] for r in table],
        },
    )
    # Shape assertions: factorial families orthogonal; the CCD always
    # supports the quadratic model; full factorial run counts explode
    # while CCD stays moderate.
    by_key = {(r[0], r[1]): r for r in table}
    assert by_key[(5, "full 2^k")][2] == 32
    assert by_key[(5, "ccd")][2] < 32  # the "moderate" budget
    assert by_key[(5, "ccd")][5] is True
    for k in range(2, 7):
        assert by_key[(k, "full 2^k")][3] <= 1e-12
