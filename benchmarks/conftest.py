"""Shared fixtures for the benchmark suite.

Heavy artefacts (the canonical 5-factor study, the charging map) are
built once per session and shared; each benchmark file prints the
table/figure it reconstructs and writes its series under ``results/``.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.toolkit import SensorNodeDesignToolkit
from repro.sim.envelope import EnvelopeOptions

#: Reduced-budget mode for CI smoke runs: set ``REPRO_BENCH_SMOKE=1``
#: to shrink mission lengths and map budgets so the key benchmarks
#: finish inside a one-minute gate while exercising the same code.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Envelope settings shared by every benchmark: production keying with
#: a slightly reduced measurement budget so the whole suite stays in
#: minutes.
BENCH_ENVELOPE = (
    EnvelopeOptions(
        map_v_points=4,
        map_nr_warmup_cycles=4,
        map_warmup_cycles=8,
        map_measure_cycles=6,
        map_max_blocks=3,
        map_steps_per_period=80,
    )
    if SMOKE
    else EnvelopeOptions(
        map_v_points=5,
        map_nr_warmup_cycles=5,
        map_warmup_cycles=12,
        map_measure_cycles=8,
        map_max_blocks=4,
        map_steps_per_period=90,
    )
)

#: Mission length for the DoE studies, s.
STUDY_MISSION_TIME = 300.0 if SMOKE else 900.0


@pytest.fixture(scope="session")
def canonical_study():
    """The 5-factor CCD study reused by R-T2 / R-T4 / R-F3 / R-F4."""
    toolkit = SensorNodeDesignToolkit(
        mission_time=STUDY_MISSION_TIME, envelope=BENCH_ENVELOPE
    )
    return toolkit.run_study(design="ccd", validate_points=4 if SMOKE else 8)


@pytest.fixture(scope="session")
def canonical_toolkit():
    """A toolkit instance sharing the study's configuration."""
    return SensorNodeDesignToolkit(
        mission_time=STUDY_MISSION_TIME, envelope=BENCH_ENVELOPE
    )


def print_banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
