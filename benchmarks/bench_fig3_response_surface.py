"""R-F3 — a 2-D response-surface slice.

The "trade-offs investigated practically instantly" figure: average
load power and downtime over the (supercapacitance, reporting interval)
plane, evaluated from the fitted surfaces — a 41x41 grid in
milliseconds — with simulated spot checks confirming the surface.
"""

import numpy as np

from benchmarks.conftest import BENCH_ENVELOPE, print_banner
from repro.analysis.ascii_plot import ascii_contour
from repro.analysis.io import write_csv


def test_fig3_response_surface(benchmark, canonical_study, canonical_toolkit):
    study = canonical_study
    print_banner(
        "R-F3: response surface — data rate over (capacitance, tx_interval)"
    )

    def build_slice():
        return study.surface_slice(
            "effective_data_rate", "capacitance", "tx_interval", n=41
        )

    x, y, grid = benchmark(build_slice)
    print(
        ascii_contour(
            grid,
            (x[0], x[-1]),
            (y[0], y[-1]),
            title=(
                "effective data rate [bit/s]; x: capacitance [F], "
                "y: tx_interval [s] (log axis)"
            ),
        )
    )
    write_csv(
        "fig3_surface_rate.csv",
        {
            "x_capacitance": np.repeat(x, len(y)),
            "y_tx_interval": np.tile(y, len(x)),
            "rate": grid.T.ravel(),
        },
    )

    # Spot-check the surface against fresh simulations at two points.
    # The rate response is exponential in the log-coded factors, so a
    # quadratic is loose at corners; what must hold is the *ordering*
    # and rough magnitude.
    spots = {}
    for cap, interval in ((0.3, 5.0), (0.8, 30.0)):
        predicted = study.predict(capacitance=cap, tx_interval=interval)
        simulated = canonical_toolkit.evaluate_point(
            {"capacitance": cap, "tx_interval": interval}
        )
        spots[(cap, interval)] = (
            predicted["effective_data_rate"],
            simulated["effective_data_rate"],
        )
    fast_p, fast_s = spots[(0.3, 5.0)]
    slow_p, slow_s = spots[(0.8, 30.0)]
    assert fast_s > slow_s and fast_p > slow_p  # ordering preserved
    assert fast_p > 0.3 * fast_s  # rough magnitude at the fast corner

    # Shape: rate rises monotonically as the interval shrinks (rows of
    # the grid are tx_interval; compare the fastest vs slowest rows).
    assert np.all(grid[0, :] > grid[-1, :])
