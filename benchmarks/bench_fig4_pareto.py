"""R-F4 — the trade-off (Pareto) front.

Data rate vs downtime vs storage cost read directly off the fitted
surfaces: the multi-objective picture a designer actually negotiates
with, produced without any further simulation.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.analysis.io import write_csv
from repro.analysis.tables import format_table
from repro.core.pareto import hypervolume_2d


def test_fig4_pareto(benchmark, canonical_study):
    study = canonical_study
    print_banner("R-F4: Pareto front — data rate vs downtime")

    def front():
        return study.trade_off(
            ["effective_data_rate", "downtime_fraction"],
            maximize=[True, False],
            points_per_axis=7,
        )

    points, values = benchmark(front)
    order = np.argsort(-values[:, 0])[:12]
    rows = []
    for idx in order:
        physical = study.space.point_to_dict(points[idx])
        rows.append(
            [
                physical["capacitance"],
                physical["tx_interval"],
                physical["payload_bits"],
                values[idx, 0],
                100 * values[idx, 1],
            ]
        )
    print(
        format_table(
            ["C [F]", "T_tx [s]", "payload [b]", "rate [bit/s]", "downtime [%]"],
            rows,
            title=f"Pareto-optimal designs ({len(points)} of 7^5 grid points)",
        )
    )
    write_csv(
        "fig4_pareto.csv",
        {
            "rate_bits": values[:, 0],
            "downtime_frac": values[:, 1],
        },
    )

    assert len(points) > 3
    # Shape: the front spans a real trade — its fastest point reports
    # at least 3x faster than its safest point.
    rates = values[:, 0]
    assert np.max(rates) > 3.0 * max(np.min(rates), 1.0)
    # And it dominates a nontrivial area.
    hv = hypervolume_2d(
        values, [True, False], reference=[0.0, 1.0]
    )
    assert hv > 0.0
