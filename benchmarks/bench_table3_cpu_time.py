"""R-T3 — the CPU-time table.

Three claims from the abstract chain together here:

* the explicit linearized state-space engine cuts transient CPU time
  by a large factor versus classical Newton-Raphson simulation (the
  "two orders of magnitude" of reference [4] — we report the factor we
  measure on identical models);
* the envelope engine makes *mission-scale* runs cheap enough that a
  designed experiment is a "moderate" budget;
* one RSM evaluation is "practically instant" next to any simulation.
"""

import time

import numpy as np

from benchmarks.conftest import BENCH_ENVELOPE, SMOKE, print_banner
from repro.analysis.io import write_csv
from repro.analysis.tables import format_table
from repro.presets import default_system
from repro.sim.newton import NewtonRaphsonEngine
from repro.sim.state_space import LinearizedStateSpaceEngine
from repro.sim.runner import MissionConfig, simulate
from repro.sim.system import SystemModel

HORIZON = 0.25 if SMOKE else 1.0  # seconds of full-fidelity transient
FREQ = 67.0
MISSION = 300.0 if SMOKE else 900.0


def _run_engine(engine_cls):
    config = default_system(with_controller=False)
    config.node = None
    system = SystemModel(config)
    engine = engine_cls(system, 1.0 / (150 * FREQ))
    started = time.perf_counter()
    engine.step_to(HORIZON)
    return time.perf_counter() - started, engine.stats


def test_table3_cpu_time(benchmark, canonical_study):
    print_banner("R-T3: CPU time per analysis")
    t_nr, stats_nr = _run_engine(NewtonRaphsonEngine)
    t_lss, stats_lss = _run_engine(LinearizedStateSpaceEngine)

    # Mission-scale on the envelope engine (map cache warm from the
    # canonical study fixture).
    config = default_system()
    started = time.perf_counter()
    simulate(
        config,
        MissionConfig(
            t_end=MISSION, engine="envelope", envelope=BENCH_ENVELOPE
        ),
    )
    t_env = time.perf_counter() - started

    # One RSM point evaluation, benchmarked properly.
    surfaces = canonical_study.surfaces
    point = np.zeros((1, canonical_study.space.k))

    def rsm_eval():
        return {n: s.predict(point) for n, s in surfaces.items()}

    benchmark(rsm_eval)
    t_rsm = canonical_study.rsm_eval_seconds

    rows = [
        [f"Newton-Raphson transient ({HORIZON:g} s)", t_nr, 1.0],
        [f"linearized state-space ({HORIZON:g} s)", t_lss, t_nr / t_lss],
        [f"envelope mission ({MISSION:.0f} s)", t_env, float("nan")],
        ["RSM evaluation (all responses)", t_rsm, t_nr / t_rsm],
    ]
    print(
        format_table(
            ["analysis", "wall [s]", "speedup vs NR"],
            rows,
            title=(
                f"NR: {stats_nr.n_newton_iterations} Newton iterations, "
                f"{stats_nr.n_matrix_builds} Jacobian builds;  LSS: "
                f"{stats_lss.n_mode_switches} mode switches, "
                f"{stats_lss.n_matrix_builds} cached-update builds"
            ),
        )
    )
    write_csv(
        "table3_cpu_time.csv",
        {"wall_seconds": [t_nr, t_lss, t_env, t_rsm]},
    )
    # Shape: the linearized engine clearly beats NR; the RSM beats
    # everything by orders of magnitude.
    assert t_lss < 0.5 * t_nr
    assert t_rsm < 1e-3
    assert t_nr / t_rsm > 1e3
