"""R-SC3 — test scenario 3: stepped operating points, fast reporting.

Machinery stepping between discrete speeds while the application
demands a fast reporting rate: storage sizing and policy choice
dominate.  Compares the fixed-period policy against the energy-neutral
adaptive policy at the same average demand.
"""

import numpy as np

from benchmarks.conftest import BENCH_ENVELOPE, print_banner
from repro.analysis.tables import format_table
from repro.node.policies import EnergyNeutralPolicy
from repro.presets import scenario_system
from repro.sim.runner import MissionConfig, simulate

MISSION = 1800.0


def test_scenario3_burst(benchmark):
    print_banner("R-SC3: stepped operating points, fixed vs adaptive policy")

    def run_pair():
        fixed = simulate(
            scenario_system("burst"),
            MissionConfig(
                t_end=MISSION, engine="envelope", envelope=BENCH_ENVELOPE
            ),
        )
        adaptive = simulate(
            scenario_system(
                "burst",
                policy=EnergyNeutralPolicy(
                    v_target=2.55, gain=3.0, period_min=3.0, period_max=120.0
                ),
            ),
            MissionConfig(
                t_end=MISSION, engine="envelope", envelope=BENCH_ENVELOPE
            ),
        )
        return fixed, adaptive

    fixed, adaptive = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = []
    for label, res in (("fixed 3 s", fixed), ("energy-neutral", adaptive)):
        rows.append(
            [
                label,
                res.counter("packets_delivered"),
                100 * res.downtime_fraction(),
                res.counter("brownout_events"),
                res.min_store_voltage(),
                res.final_store_voltage(),
            ]
        )
    print(
        format_table(
            [
                "policy",
                "packets",
                "downtime [%]",
                "brownouts",
                "min V",
                "final V",
            ],
            rows,
            title="stepped-frequency source, 0.68 F store",
        )
    )

    # Shape: the adaptive policy protects the store (higher minimum
    # voltage, no more brownouts than fixed) by shedding reports when
    # the harvester is between retunes.
    assert adaptive.min_store_voltage() >= fixed.min_store_voltage() - 1e-6
    assert adaptive.counter("brownout_events") <= fixed.counter(
        "brownout_events"
    )
    # Both retune after the frequency steps.
    assert fixed.counter("retunes") >= 2
