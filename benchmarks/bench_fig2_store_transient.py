"""R-F2 — supercapacitor voltage transient over a complete mission.

Complete-node behaviour in one trace: cold start below the regulator's
restart threshold, charge-up, node boot, duty-cycled operation, and the
brownout/recovery cycle when the reporting rate outruns the harvest.
"""

import numpy as np

from benchmarks.conftest import BENCH_ENVELOPE, print_banner
from repro.analysis.ascii_plot import ascii_line_plot
from repro.analysis.io import write_csv
from repro.presets import default_system
from repro.sim.runner import MissionConfig, simulate


def test_fig2_store_transient(benchmark):
    print_banner("R-F2: store-voltage transient (cold start -> operation)")
    config = default_system(
        capacitance=0.10,
        tx_interval=4.0,       # aggressive reporting: deficit operation
        v_initial=2.3,         # below the 2.5 V restart threshold
        check_interval=300.0,
    )

    result = benchmark.pedantic(
        lambda: simulate(
            config,
            MissionConfig(
                t_end=3600.0, engine="envelope", envelope=BENCH_ENVELOPE
            ),
        ),
        rounds=1,
        iterations=1,
    )
    t = result.times
    v = result.trace("v_store")
    enabled = result.trace("enabled")
    print(
        ascii_line_plot(
            {
                "V_store": (t, v),
                "enabled (scaled)": (t, 2.2 + 0.4 * enabled),
            },
            title="cold start, boot, deficit operation (1 h mission)",
            x_label="time [s]",
            y_label="V",
        )
    )
    print(result.summary())
    write_csv(
        "fig2_store_transient.csv",
        {"t_s": t, "v_store": v, "enabled": enabled},
    )

    # Shape: starts disabled, charges monotonically to the restart
    # threshold, boots, then operates (possibly sagging under load).
    assert enabled[0] == 0.0
    boot = np.flatnonzero(enabled > 0.5)
    assert boot.size > 0, "node never booted"
    t_boot = t[boot[0]]
    assert v[boot[0]] >= config.regulator.v_restart - 0.05
    # Pre-boot charging is monotone (no load).
    pre = v[t < t_boot]
    assert np.all(np.diff(pre) >= -1e-6)
    assert result.counter("packets_delivered") > 100
