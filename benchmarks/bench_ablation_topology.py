"""R-A4 — ablation: power-path topology (Newton engine).

Bridge vs Greinacher doubler vs 2-stage Cockcroft-Walton at matched
conditions, simulated with the Newton-Raphson engine throughout (the
PWL engine is unsound for the multiplier ladders at these current
levels — the fidelity finding documented in DESIGN.md).

The physics the table shows: the bridge charges fastest at low store
voltage but cannot push the store above (EMF peak - two diode drops),
while each multiplier stage raises the attainable ceiling at the cost
of charging current.
"""

import math

import numpy as np

from benchmarks.conftest import print_banner
from repro.analysis.io import write_csv
from repro.analysis.tables import format_table
from repro.harvester.tuning import TunableHarvester
from repro.power.rectifier import build_bridge_circuit, build_multiplier_circuit
from repro.power.regulator import Regulator
from repro.power.supercap import Supercapacitor
from repro.sim.newton import NewtonRaphsonEngine
from repro.sim.system import SystemConfig, SystemModel
from repro.vibration.sources import SineVibration

FREQ = 67.0
V_POINTS = (1.0, 2.5, 4.0)


def _charging_current(power_circuit, v_store):
    harvester = TunableHarvester()
    config = SystemConfig(
        harvester=harvester,
        power=power_circuit,
        regulator=Regulator(),
        node=None,
        controller=None,
        vibration=SineVibration(0.6, FREQ),
        pretune=True,
    )
    system = SystemModel(config)
    dt = 1.0 / (100 * FREQ)
    period = 1.0 / FREQ
    engine = NewtonRaphsonEngine(system, dt)
    x0 = system.initial_state()
    names = system.matrices.node_names
    x0[3 + names["bus"] - 1] = v_store
    x0[3 + names["store"] - 1] = v_store
    n_stages = power_circuit.n_stages
    for k in range(1, 2 * n_stages):
        name = f"x{k}"
        if name in names:
            x0[3 + names[name] - 1] = v_store * (k // 2) / n_stages
    # Phasor-seeded mechanics shorten the resonance build-up.
    p = harvester.params
    w = 2 * math.pi * FREQ
    w_n = math.sqrt(system.k_eff(config.resolve_initial_gap()) / p.mass)
    zeta = p.parasitic_damping / (2 * p.mass * w_n)
    z_hat = -0.6 / complex(w_n**2 - w**2, 2 * zeta * w_n * w)
    x0[0] = z_hat.imag
    x0[1] = w * z_hat.real
    engine.reset(0.0, x0)
    engine.set_load_current(0.0)
    engine.step_to(45 * period)
    v1, t1 = engine.store_voltage(), engine.time
    engine.step_to(t1 + 15 * period)
    v2, t2 = engine.store_voltage(), engine.time
    sc = power_circuit.supercap
    return sc.capacitance * (v2 - v1) / (t2 - t1) + 0.5 * (v1 + v2) / (
        sc.leakage_resistance
    )


def test_ablation_topology(benchmark):
    print_banner("R-A4: rectifier topology vs charging current (NR engine)")

    def run_all():
        table = {}
        for label, builder in (
            ("bridge", lambda sc: build_bridge_circuit(sc)),
            ("doubler", lambda sc: build_multiplier_circuit(sc, 1)),
            ("multiplier-2", lambda sc: build_multiplier_circuit(sc, 2)),
        ):
            currents = []
            for v in V_POINTS:
                sc = Supercapacitor(v_initial=v)
                currents.append(_charging_current(builder(sc), v))
            table[label] = currents
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [label] + [i * 1e6 for i in currents]
        for label, currents in table.items()
    ]
    print(
        format_table(
            ["topology"] + [f"I_chg({v} V) [uA]" for v in V_POINTS],
            rows,
            title="0.6 m/s2 at 67 Hz, tuned; store held at each voltage",
        )
    )
    write_csv(
        "ablation_topology.csv",
        {
            "v_store": np.array(V_POINTS),
            "bridge_uA": np.array(table["bridge"]) * 1e6,
            "doubler_uA": np.array(table["doubler"]) * 1e6,
            "multiplier2_uA": np.array(table["multiplier-2"]) * 1e6,
        },
    )

    # Shape: bridge wins at low voltage; at 4.0 V (near the bridge's
    # conduction ceiling of EMF_peak - 2 drops) the doubler out-charges
    # the bridge.
    assert table["bridge"][0] > table["doubler"][0] > 0.0
    assert table["doubler"][2] > table["bridge"][2]
    # Every topology still charges at mid voltage.
    for currents in table.values():
        assert currents[1] > 0.0
