"""R-T4 — ANOVA / model-significance tables for the fitted RSMs.

Standard DoE reporting backing the "high accuracy" claim: the
regression must be significant, and (where centre replicates provide a
pure-error estimate) the lack-of-fit should not scream that the
quadratic form is inadequate.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.analysis.tables import format_table
from repro.core.rsm.anova import anova_table


def test_table4_anova(benchmark, canonical_study):
    study = canonical_study
    print_banner("R-T4: ANOVA per response (quadratic RSM on the CCD)")

    from repro.core.rsm.transforms import TransformedSurface

    def build_tables():
        out = {}
        for name, surface in study.surfaces.items():
            base = (
                surface.base
                if isinstance(surface, TransformedSurface)
                else surface
            )
            out[name] = anova_table(base)
        return out

    tables = benchmark(build_tables)

    rows = []
    for name, table in tables.items():
        model_row = table.row("model")
        rows.append(
            [
                name,
                model_row.f_value,
                model_row.p_value,
                study.surfaces[name].stats.adj_r_squared,
            ]
        )
    print(
        format_table(
            ["response", "model F", "model p", "adj R2"],
            rows,
            title="model significance summary",
        )
    )
    print()
    print("full table — effective_data_rate:")
    print(tables["effective_data_rate"].format())

    # Shape: the headline responses regress significantly.
    for name in ("effective_data_rate", "average_load_power"):
        assert tables[name].row("model").p_value < 0.01
    # Sum-of-squares identity holds on real data too.
    for table in tables.values():
        total = table.row("total").sum_squares
        parts = table.row("model").sum_squares + table.row("residual").sum_squares
        assert np.isclose(total, parts, rtol=1e-9, atol=1e-12)
