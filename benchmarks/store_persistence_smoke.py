"""Cross-process cache-persistence smoke, driven by CI.

Runs one small LHS design on the real envelope evaluator against a
persistent evaluation store, then writes a JSON summary.  CI invokes
it twice with the same ``--store`` path: the first (cold) invocation
simulates every point and persists it; the second runs in a genuinely
fresh process and, invoked with ``--expect-warm``, must answer the
whole design from the store — 0 points evaluated, 100% hit rate —
or exit non-zero.

Usage::

    python benchmarks/store_persistence_smoke.py --store /tmp/evals \
        --json results/store_smoke_cold.json
    python benchmarks/store_persistence_smoke.py --store /tmp/evals \
        --json results/store_smoke_warm.json --expect-warm

A ``--store`` path ending in ``.sqlite``/``.db`` exercises the SQLite
store; any other path is a file-per-fingerprint directory.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.doe.lhs import latin_hypercube
from repro.fsutil import atomic_write_json
from repro.core.factors import DesignSpace, Factor
from repro.core.toolkit import SensorNodeDesignToolkit
from repro.sim.envelope import EnvelopeOptions

SMOKE_ENVELOPE = EnvelopeOptions(
    map_v_points=4,
    map_nr_warmup_cycles=4,
    map_warmup_cycles=8,
    map_measure_cycles=6,
    map_max_blocks=3,
    map_steps_per_period=80,
)


def _space() -> DesignSpace:
    return DesignSpace(
        [
            Factor("capacitance", 0.10, 1.00, units="F"),
            Factor("tx_interval", 2.0, 60.0, transform="log", units="s"),
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--store",
        required=True,
        help="store path: a directory (file store) or *.sqlite/*.db",
    )
    parser.add_argument(
        "--json", default=None, help="where to write the summary JSON"
    )
    parser.add_argument(
        "--points", type=int, default=6, help="LHS design size"
    )
    parser.add_argument(
        "--expect-warm",
        action="store_true",
        help="fail unless the store answered everything",
    )
    args = parser.parse_args(argv)

    toolkit = SensorNodeDesignToolkit(
        space=_space(),
        mission_time=120.0,
        envelope=SMOKE_ENVELOPE,
        cache_dir=args.store,
    )
    design = latin_hypercube(args.points, 2, seed=23)
    started = time.perf_counter()
    result = toolkit.explorer.run_design(design)
    elapsed = time.perf_counter() - started

    stats = result.exec_stats
    summary = {
        "benchmark": "store_persistence_smoke",
        "store": toolkit.exec_engine.cache.describe(),
        "n_points": args.points,
        "seconds": elapsed,
        "points_evaluated": stats["points_evaluated"],
        "cache": stats["cache"],
        "expect_warm": args.expect_warm,
        "responses": {
            name: list(values) for name, values in result.responses.items()
        },
    }
    if args.json:
        atomic_write_json(args.json, summary, indent=2, sort_keys=True)
    print(json.dumps(summary["cache"], sort_keys=True))
    print(
        f"store={summary['store']} points_evaluated="
        f"{summary['points_evaluated']}/{args.points} in {elapsed:.2f}s"
    )

    if args.expect_warm:
        if stats["points_evaluated"] != 0:
            print(
                "FAIL: warm run simulated "
                f"{stats['points_evaluated']} points",
                file=sys.stderr,
            )
            return 1
        if stats["cache"]["hit_rate"] != 1.0:
            print(
                f"FAIL: warm hit rate {stats['cache']['hit_rate']}",
                file=sys.stderr,
            )
            return 1
        print("warm start verified: 0 points evaluated, 100% hit rate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
