"""R-X2 — distributed evaluation scaling: points/sec vs worker count.

One LHS design over the 2-factor smoke space is completed through the
job-queue architecture by fleets of 1, 2 (and, outside smoke mode, 4)
*real* ``repro-worker`` subprocesses draining one shared SQLite
substrate, with the submitter in pure assembly mode
(``cooperate=False``).  Every fleet's responses must be bit-identical
to the serial reference; the recorded series is wall-clock points/sec
per worker count, plus the dispatch overhead of the one-worker fleet
against the serial baseline (queue round-trips + store polling).

Numbers land in ``results/BENCH_distributed_scaling.json``.  As with
the process backend, parallel *speedup* needs real CPUs — the JSON
records ``cpu_count`` so single-core CI runs are read as overhead
measurements, not scaling claims.  Worker start-up (interpreter +
per-process charging-map warm-up) is measured separately via a
one-point barrier batch; fleet members that join after the barrier
amortize their own map warm-up into the first timed batch, which is
exactly what a real elastic fleet pays.

A final **warm-daemon** scenario prices the alternative: a
``--supervise N --warm`` fleet forked from one prewarmed parent
(evaluator built once, charging maps preloaded from the shared
store).  Two gates close the "distributed loses to serial on small
studies" gap from the cold numbers above: per-worker spawn must be
under 0.5 s (it is forks, so milliseconds — vs the 2–3.7 s cold
barrier), and the standing fleet must finish the smoke study faster
than a cold serial process (interpreter + toolkit + map build +
evaluation) answering it from scratch.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np

from benchmarks.conftest import SMOKE, print_banner
from benchmarks.distributed_smoke import (
    MISSION_TIME,
    REPO_ROOT,
    _space,
    make_evaluator,
    spawn_worker,
)
from repro.analysis.io import ensure_results_dir
from repro.fsutil import atomic_write_json
from repro.analysis.tables import format_table
from repro.core.doe.lhs import latin_hypercube
from repro.exec import (
    CacheStore,
    DistributedBackend,
    EvaluationEngine,
    SQLiteStore,
    SQLiteWorkQueue,
    WorkQueue,
    queue_for_store,
)
from repro.sim.envelope import (
    attach_map_store,
    clear_charging_cache,
    detach_map_store,
)

N_POINTS = 8 if SMOKE else 24
WORKER_COUNTS = [1, 2] if SMOKE else [1, 2, 4]

#: End-to-end script a *cold* serial answer to the study costs: a
#: fresh interpreter imports the stack, builds the toolkit, builds
#: every charging map and only then evaluates.  This is what the warm
#: standing fleet is raced against.
_COLD_SERIAL_SCRIPT = """\
import json, sys, time
started = time.perf_counter()
from benchmarks.distributed_smoke import _space, make_evaluator
from repro.core.doe.lhs import latin_hypercube
n = int(sys.argv[1])
space = _space()
design = latin_hypercube(n, 2, seed=31)
points = [space.point_to_dict(row) for row in design.matrix]
toolkit = make_evaluator()
toolkit.evaluate_points_timed(points)
print(json.dumps({"seconds": time.perf_counter() - started}))
"""


def _serial_cold_process(n_points: int) -> float:
    """Wall seconds for a fresh process to answer the study serially."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, "-c", _COLD_SERIAL_SCRIPT, str(n_points)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
        check=True,
    )
    return float(json.loads(proc.stdout.splitlines()[-1])["seconds"])


class _PerOpStore(SQLiteStore):
    """SQLite store forced back to per-operation wire discipline.

    Assigning the ABC's looping defaults over the batched overrides
    makes every ``load_many``/``persist_many`` decompose into one
    store round trip per entry — the pre-amortization cost model —
    while keeping SQLite semantics (and isinstance checks) intact.
    """

    load_many = CacheStore.load_many
    persist_many = CacheStore.persist_many


class _PerOpQueue(SQLiteWorkQueue):
    """SQLite queue forced back to one transaction per queue call."""

    complete_many = WorkQueue.complete_many
    fail_many = WorkQueue.fail_many
    heartbeat_many = WorkQueue.heartbeat_many


def _measure_substrate_ops(
    store_cls, queue_cls, evaluate, points, db_dir, tag
) -> dict:
    """Substrate round trips one cooperative engine run costs.

    A fresh store guarantees every point misses, so the run pays the
    full submit/lease/evaluate/persist/assemble cycle; the engine's
    per-layer counters (``store_round_trips``, ``queue_transactions``)
    are read as a delta across exactly that cycle.
    """
    store = store_cls(db_dir / f"ops-{tag}-store.sqlite")
    queue = queue_cls(db_dir / f"ops-{tag}-queue.sqlite")
    backend = DistributedBackend(
        store,
        queue,
        cooperate=True,
        batch=len(points),
        poll_interval=0.01,
        timeout=900.0,
    )
    engine = EvaluationEngine(evaluate, backend=backend, cache=store)
    snapshot = engine.stats()
    engine.map_points(points)
    delta = engine.stats(since=snapshot)
    backend.close()
    queue.close()
    store.close()
    ops = {
        "store_round_trips": delta["store_round_trips"],
        "queue_transactions": delta["queue_transactions"],
        "poll_sleeps": delta["poll_sleeps"],
    }
    total = ops["store_round_trips"] + ops["queue_transactions"]
    ops["total"] = total
    ops["per_point"] = total / len(points)
    return ops


def _supervisor_report(stdout: str) -> dict:
    """The supervisor's JSON report, fished out of a shared stdout.

    Warm-mode children inherit the supervisor's stdout, so the stream
    carries N worker reports plus the supervisor's own — and child
    writes racing at exit can concatenate objects on one line.  Decode
    every JSON object wherever it starts and keep the supervisor's
    (the only one carrying ``exit_code``).
    """
    decoder = json.JSONDecoder()
    report = None
    for line in stdout.splitlines():
        idx = 0
        while idx < len(line):
            try:
                obj, idx = decoder.raw_decode(line, idx)
            except ValueError:
                idx += 1
                continue
            if isinstance(obj, dict) and "exit_code" in obj:
                report = obj
    assert report is not None, stdout
    return report


def test_distributed_scaling(tmp_path):
    print_banner("R-X2: distributed scaling (points/sec vs workers)")
    space = _space()
    design = latin_hypercube(N_POINTS, 2, seed=31)
    points = [space.point_to_dict(row) for row in design.matrix]

    # Serial reference in this process, on the same batched path the
    # workers use, with charging maps prewarmed outside the timing —
    # so the per-fleet overhead numbers compare like with like.
    toolkit = make_evaluator()
    toolkit.evaluate_point(points[0])
    started = time.perf_counter()
    reference = [
        responses
        for responses, _ in toolkit.evaluate_points_timed(points)
    ]
    t_serial = time.perf_counter() - started

    series = {}
    for workers in WORKER_COUNTS:
        store_path = tmp_path / f"scaling-{workers}.sqlite"
        store = SQLiteStore(store_path)
        backend = DistributedBackend(
            store, cooperate=False, poll_interval=0.02, timeout=900.0
        )
        fingerprints = [f"scale-{i:03d}" for i in range(N_POINTS)]
        # Spawn the fleet first and use a one-point warm-up batch as
        # the "fleet is live" barrier, so the timed study measures
        # queue throughput rather than interpreter start-up.  The
        # fleet exits on idleness (not --drain): between the warm-up
        # and the timed batch the queue is momentarily empty, and a
        # draining worker would mistake that for the end of the study.
        fleet = [
            spawn_worker(
                str(store_path),
                "--idle-timeout",
                "8",
                "--batch",
                "1",
                "--poll",
                "0.02",
            )
            for _ in range(workers)
        ]
        warm_started = time.perf_counter()
        backend.run(
            toolkit.evaluate_point,
            [points[0]],
            fingerprints=["warmup"],
        )
        t_startup = time.perf_counter() - warm_started

        started = time.perf_counter()
        results = backend.run(
            toolkit.evaluate_point, points, fingerprints=fingerprints
        )
        elapsed = time.perf_counter() - started
        for proc in fleet:
            out, err = proc.communicate(timeout=600)
            assert proc.returncode == 0, err

        # Bit-identity against serial, whichever worker evaluated.
        for i, ((responses, _), expected) in enumerate(
            zip(results, reference)
        ):
            assert responses == expected, f"divergence at point {i}"
        queue = queue_for_store(store)
        stats = queue.stats()
        assert stats.outstanding == 0 and stats.failed == 0
        completed_by = {
            record.worker_id
            for record in queue.jobs()
            if record.status == "done"
        }
        series[str(workers)] = {
            "seconds": elapsed,
            "points_per_sec": N_POINTS / elapsed,
            "startup_seconds": t_startup,
            "distinct_workers": len(completed_by),
            "speedup_vs_serial": t_serial / elapsed,
        }
        backend.close()
        store.close()

    # What the warm fleet is raced against: a cold serial process
    # paying interpreter + toolkit + map build before the first point.
    t_serial_cold = _serial_cold_process(N_POINTS)

    # Warm-daemon fleet: one supervisor builds the evaluator and
    # preloads the store-persisted charging maps, then forks the
    # whole fleet warm.  Per-child spawn latency comes back in the
    # supervisor's JSON report; the one-point barrier makes the fleet
    # provably live before the timed study.
    warm_workers = max(WORKER_COUNTS)
    warm_store_path = tmp_path / "scaling-warm.sqlite"
    warm_store = SQLiteStore(warm_store_path)
    clear_charging_cache()
    attach_map_store(warm_store)
    try:
        # Rebuild the study's charging maps with the store attached so
        # the grids persist; the supervisor preloads them pre-fork.
        toolkit.evaluate_point(points[0])
    finally:
        detach_map_store()
    backend = DistributedBackend(
        warm_store, cooperate=False, poll_interval=0.02, timeout=900.0
    )
    # Leases of >1 job ride the vectorized batch core inside each
    # worker — the composition this PR exists for.
    warm_batch = max(1, N_POINTS // (2 * warm_workers))
    spawn_started = time.perf_counter()
    supervisor = spawn_worker(
        str(warm_store_path),
        "--supervise",
        str(warm_workers),
        "--warm",
        "--idle-timeout",
        "6",
        "--batch",
        str(warm_batch),
        "--poll",
        "0.02",
    )
    backend.run(
        toolkit.evaluate_point, [points[0]], fingerprints=["warmup"]
    )
    t_fleet_live = time.perf_counter() - spawn_started

    started = time.perf_counter()
    warm_results = backend.run(
        toolkit.evaluate_point,
        points,
        fingerprints=[f"warm-{i:03d}" for i in range(N_POINTS)],
    )
    t_warm = time.perf_counter() - started
    sup_out, sup_err = supervisor.communicate(timeout=600)
    assert supervisor.returncode == 0, sup_err
    sup_report = _supervisor_report(sup_out)
    assert sup_report["exit_code"] == 0 and sup_report["restarts"] == 0
    spawn_seconds = sup_report["warm"]["spawn_seconds"]
    assert len(spawn_seconds) >= warm_workers

    for i, ((responses, _), expected) in enumerate(
        zip(warm_results, reference)
    ):
        assert responses == expected, f"warm divergence at point {i}"
    warm_queue = queue_for_store(warm_store)
    warm_stats = warm_queue.stats()
    assert warm_stats.outstanding == 0 and warm_stats.failed == 0
    warm_distinct = {
        record.worker_id
        for record in warm_queue.jobs()
        if record.status == "done"
    }
    warm = {
        "workers": warm_workers,
        "batch": warm_batch,
        "seconds": t_warm,
        "points_per_sec": N_POINTS / t_warm,
        "fleet_live_seconds": t_fleet_live,
        "prepare_seconds": sup_report["warm"]["prepare_seconds"],
        "spawn_seconds_per_worker": spawn_seconds,
        "startup_seconds_per_worker": max(spawn_seconds),
        "distinct_workers": len(warm_distinct),
        "speedup_vs_serial_cold": t_serial_cold / t_warm,
    }
    backend.close()
    warm_store.close()

    # Substrate ops per point: the amortized wire discipline (batched
    # store/queue transactions, adaptive assembly) against the same
    # engine forced back to one round trip per operation.  Wall time
    # is noise at this scale — round trips are the honest currency.
    ops_amortized = _measure_substrate_ops(
        SQLiteStore,
        SQLiteWorkQueue,
        toolkit.evaluate_point,
        points,
        tmp_path,
        "amortized",
    )
    ops_per_op = _measure_substrate_ops(
        _PerOpStore, _PerOpQueue, toolkit.evaluate_point, points, tmp_path, "per-op"
    )
    ops_per_point = {
        "batch": N_POINTS,
        "amortized": ops_amortized,
        "per_op_baseline": ops_per_op,
        "reduction_factor": ops_per_op["total"] / ops_amortized["total"],
    }

    payload = {
        "benchmark": "distributed_scaling",
        "smoke": SMOKE,
        "n_points": N_POINTS,
        "mission_time_s": MISSION_TIME,
        "cpu_count": os.cpu_count(),
        "serial": {
            "seconds": t_serial,
            "points_per_sec": N_POINTS / t_serial,
        },
        "serial_cold_process": {
            "seconds": t_serial_cold,
            "points_per_sec": N_POINTS / t_serial_cold,
        },
        "workers": series,
        "warm": warm,
        "ops_per_point": ops_per_point,
        "dispatch_overhead_one_worker": (
            series["1"]["seconds"] - t_serial
        ),
    }
    path = os.path.join(
        ensure_results_dir(), "BENCH_distributed_scaling.json"
    )
    atomic_write_json(path, payload, indent=2, sort_keys=True)

    rows = [
        ["serial (hot)", t_serial, N_POINTS / t_serial, 1.0, "-"],
        [
            "serial (cold process)",
            t_serial_cold,
            N_POINTS / t_serial_cold,
            t_serial / t_serial_cold,
            "-",
        ],
    ]
    for workers in WORKER_COUNTS:
        entry = series[str(workers)]
        rows.append(
            [
                f"{workers} worker(s)",
                entry["seconds"],
                entry["points_per_sec"],
                entry["speedup_vs_serial"],
                entry["distinct_workers"],
            ]
        )
    rows.append(
        [
            f"warm fleet ({warm_workers})",
            t_warm,
            N_POINTS / t_warm,
            t_serial / t_warm,
            warm["distinct_workers"],
        ]
    )
    print(
        format_table(
            ["fleet", "wall [s]", "points/s", "vs serial", "workers used"],
            rows,
            title=(
                f"{N_POINTS}-point LHS, {MISSION_TIME:.0f} s missions, "
                f"on {os.cpu_count()} CPU(s); JSON: {path}"
            ),
        )
    )

    # Multi-worker fleets must actually split the work when there is
    # work to split (every fleet member completed at least one job is
    # too strict under OS scheduling; two distinct workers is the
    # cooperative floor).
    if max(WORKER_COUNTS) >= 2:
        top = series[str(max(WORKER_COUNTS))]
        assert top["distinct_workers"] >= 2
    # Parallel speedup needs real CPUs; gate only where they exist.
    if (os.cpu_count() or 1) >= 4 and not SMOKE:
        assert series["2"]["seconds"] < t_serial

    m = np.asarray([series[str(w)]["points_per_sec"] for w in WORKER_COUNTS])
    assert np.all(m > 0.0)

    # The warm-daemon gates.  Per-worker spawn is a fork from the
    # prewarmed parent: must be far under the 2-3.7 s cold barrier.
    assert warm["startup_seconds_per_worker"] < 0.5, warm
    print(
        f"warm fleet: {warm_workers} workers forked in "
        f"{warm['startup_seconds_per_worker'] * 1e3:.1f} ms/worker "
        f"(cold barrier was "
        f"{series[str(max(WORKER_COUNTS))]['startup_seconds']:.2f} s); "
        f"study {t_warm:.2f} s vs cold serial process "
        f"{t_serial_cold:.2f} s"
    )
    # A standing warm fleet must beat a cold serial process on the
    # small study — the exact case the cold numbers above lose.
    assert t_warm < t_serial_cold, (t_warm, t_serial_cold)

    # The amortized-substrate gate: batched store/queue transactions
    # must cut the round trips the study costs by at least 5x against
    # the per-operation baseline.
    print(
        format_table(
            ["discipline", "store ops", "queue txns", "total", "ops/point"],
            [
                [
                    "amortized",
                    ops_amortized["store_round_trips"],
                    ops_amortized["queue_transactions"],
                    ops_amortized["total"],
                    ops_amortized["per_point"],
                ],
                [
                    "per-op baseline",
                    ops_per_op["store_round_trips"],
                    ops_per_op["queue_transactions"],
                    ops_per_op["total"],
                    ops_per_op["per_point"],
                ],
            ],
            title=(
                f"substrate round trips, {N_POINTS}-point study, "
                f"batch={N_POINTS}: "
                f"{ops_per_point['reduction_factor']:.1f}x reduction"
            ),
        )
    )
    assert ops_per_point["reduction_factor"] >= 5.0, ops_per_point
