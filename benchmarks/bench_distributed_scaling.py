"""R-X2 — distributed evaluation scaling: points/sec vs worker count.

One LHS design over the 2-factor smoke space is completed through the
job-queue architecture by fleets of 1, 2 (and, outside smoke mode, 4)
*real* ``repro-worker`` subprocesses draining one shared SQLite
substrate, with the submitter in pure assembly mode
(``cooperate=False``).  Every fleet's responses must be bit-identical
to the serial reference; the recorded series is wall-clock points/sec
per worker count, plus the dispatch overhead of the one-worker fleet
against the serial baseline (queue round-trips + store polling).

Numbers land in ``results/BENCH_distributed_scaling.json``.  As with
the process backend, parallel *speedup* needs real CPUs — the JSON
records ``cpu_count`` so single-core CI runs are read as overhead
measurements, not scaling claims.  Worker start-up (interpreter +
per-process charging-map warm-up) is measured separately via a
one-point barrier batch; fleet members that join after the barrier
amortize their own map warm-up into the first timed batch, which is
exactly what a real elastic fleet pays.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from benchmarks.conftest import SMOKE, print_banner
from benchmarks.distributed_smoke import (
    MISSION_TIME,
    _space,
    make_evaluator,
    spawn_worker,
)
from repro.analysis.io import ensure_results_dir
from repro.fsutil import atomic_write_json
from repro.analysis.tables import format_table
from repro.core.doe.lhs import latin_hypercube
from repro.exec import DistributedBackend, SQLiteStore, queue_for_store

N_POINTS = 8 if SMOKE else 24
WORKER_COUNTS = [1, 2] if SMOKE else [1, 2, 4]


def test_distributed_scaling(tmp_path):
    print_banner("R-X2: distributed scaling (points/sec vs workers)")
    space = _space()
    design = latin_hypercube(N_POINTS, 2, seed=31)
    points = [space.point_to_dict(row) for row in design.matrix]

    # Serial reference in this process, on the same batched path the
    # workers use, with charging maps prewarmed outside the timing —
    # so the per-fleet overhead numbers compare like with like.
    toolkit = make_evaluator()
    toolkit.evaluate_point(points[0])
    started = time.perf_counter()
    reference = [
        responses
        for responses, _ in toolkit.evaluate_points_timed(points)
    ]
    t_serial = time.perf_counter() - started

    series = {}
    for workers in WORKER_COUNTS:
        store_path = tmp_path / f"scaling-{workers}.sqlite"
        store = SQLiteStore(store_path)
        backend = DistributedBackend(
            store, cooperate=False, poll_interval=0.02, timeout=900.0
        )
        fingerprints = [f"scale-{i:03d}" for i in range(N_POINTS)]
        # Spawn the fleet first and use a one-point warm-up batch as
        # the "fleet is live" barrier, so the timed study measures
        # queue throughput rather than interpreter start-up.  The
        # fleet exits on idleness (not --drain): between the warm-up
        # and the timed batch the queue is momentarily empty, and a
        # draining worker would mistake that for the end of the study.
        fleet = [
            spawn_worker(
                str(store_path),
                "--idle-timeout",
                "8",
                "--batch",
                "1",
                "--poll",
                "0.02",
            )
            for _ in range(workers)
        ]
        warm_started = time.perf_counter()
        backend.run(
            toolkit.evaluate_point,
            [points[0]],
            fingerprints=["warmup"],
        )
        t_startup = time.perf_counter() - warm_started

        started = time.perf_counter()
        results = backend.run(
            toolkit.evaluate_point, points, fingerprints=fingerprints
        )
        elapsed = time.perf_counter() - started
        for proc in fleet:
            out, err = proc.communicate(timeout=600)
            assert proc.returncode == 0, err

        # Bit-identity against serial, whichever worker evaluated.
        for i, ((responses, _), expected) in enumerate(
            zip(results, reference)
        ):
            assert responses == expected, f"divergence at point {i}"
        queue = queue_for_store(store)
        stats = queue.stats()
        assert stats.outstanding == 0 and stats.failed == 0
        completed_by = {
            record.worker_id
            for record in queue.jobs()
            if record.status == "done"
        }
        series[str(workers)] = {
            "seconds": elapsed,
            "points_per_sec": N_POINTS / elapsed,
            "startup_seconds": t_startup,
            "distinct_workers": len(completed_by),
            "speedup_vs_serial": t_serial / elapsed,
        }
        backend.close()
        store.close()

    payload = {
        "benchmark": "distributed_scaling",
        "smoke": SMOKE,
        "n_points": N_POINTS,
        "mission_time_s": MISSION_TIME,
        "cpu_count": os.cpu_count(),
        "serial": {
            "seconds": t_serial,
            "points_per_sec": N_POINTS / t_serial,
        },
        "workers": series,
        "dispatch_overhead_one_worker": (
            series["1"]["seconds"] - t_serial
        ),
    }
    path = os.path.join(
        ensure_results_dir(), "BENCH_distributed_scaling.json"
    )
    atomic_write_json(path, payload, indent=2, sort_keys=True)

    rows = [["serial", t_serial, N_POINTS / t_serial, 1.0, "-"]]
    for workers in WORKER_COUNTS:
        entry = series[str(workers)]
        rows.append(
            [
                f"{workers} worker(s)",
                entry["seconds"],
                entry["points_per_sec"],
                entry["speedup_vs_serial"],
                entry["distinct_workers"],
            ]
        )
    print(
        format_table(
            ["fleet", "wall [s]", "points/s", "vs serial", "workers used"],
            rows,
            title=(
                f"{N_POINTS}-point LHS, {MISSION_TIME:.0f} s missions, "
                f"on {os.cpu_count()} CPU(s); JSON: {path}"
            ),
        )
    )

    # Multi-worker fleets must actually split the work when there is
    # work to split (every fleet member completed at least one job is
    # too strict under OS scheduling; two distinct workers is the
    # cooperative floor).
    if max(WORKER_COUNTS) >= 2:
        top = series[str(max(WORKER_COUNTS))]
        assert top["distinct_workers"] >= 2
    # Parallel speedup needs real CPUs; gate only where they exist.
    if (os.cpu_count() or 1) >= 4 and not SMOKE:
        assert series["2"]["seconds"] < t_serial

    m = np.asarray([series[str(w)]["points_per_sec"] for w in WORKER_COUNTS])
    assert np.all(m > 0.0)
