"""R-A2 — ablation: DoE design choice vs prediction error.

CCD vs Box-Behnken vs LHS at comparable budgets on a 3-factor
sub-space, all validated against the same fresh simulation points.
The point of the table is that the structured designs earn their keep:
comparable or better accuracy than space-filling sampling, plus the
diagnostics (alias-free quadratics, pure-error dof) LHS cannot offer.
"""

import numpy as np

from benchmarks.conftest import BENCH_ENVELOPE, print_banner
from repro.analysis.io import write_csv
from repro.analysis.tables import format_table
from repro.core.factors import DesignSpace, Factor
from repro.core.toolkit import SensorNodeDesignToolkit

RESPONSES = ("effective_data_rate", "min_store_voltage")


def test_ablation_design_choice(benchmark):
    print_banner("R-A2: design choice vs held-out accuracy (3 factors)")
    space = DesignSpace(
        [
            Factor("capacitance", 0.10, 1.00, units="F"),
            Factor("tx_interval", 2.0, 60.0, transform="log", units="s"),
            Factor("payload_bits", 64, 1024, transform="log", integer=True),
        ]
    )
    toolkit = SensorNodeDesignToolkit(
        space=space,
        responses=RESPONSES,
        mission_time=600.0,
        envelope=BENCH_ENVELOPE,
    )
    designs = {
        "ccd": toolkit.build_design("ccd", fraction=False, n_center=3),
        "box-behnken": toolkit.build_design("box-behnken"),
        "lhs": toolkit.build_design("lhs", n=17, seed=5),
    }

    def run_all():
        out = {}
        for label, design in designs.items():
            study = toolkit.run_study(
                design=design, validate_points=6, validation_seed=99
            )
            out[label] = (
                design.n_runs,
                {
                    name: study.validation.metrics[name]["normalized_rmse"]
                    for name in RESPONSES
                },
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [label, runs] + [metrics[name] for name in RESPONSES]
        for label, (runs, metrics) in results.items()
    ]
    print(
        format_table(
            ["design", "runs"] + [f"NRMSE({n})" for n in RESPONSES],
            rows,
            title="quadratic RSM, common validation points (seed 99)",
        )
    )
    write_csv(
        "ablation_design_choice.csv",
        {"runs": [r[1] for r in rows], "nrmse_rate": [r[2] for r in rows]},
    )

    # Shape: every design produces a usable surface for the smooth
    # response; the structured designs are not worse than LHS by more
    # than 2x on it.
    rate_errors = {label: m["effective_data_rate"] for label, (_, m) in results.items()}
    assert all(np.isfinite(v) and v < 0.5 for v in rate_errors.values())
    assert rate_errors["ccd"] < 3.0 * rate_errors["lhs"]
