"""The fault-injection harness itself: plans, schedules, wrappers.

The harness is only as good as its own determinism — a chaos failure
nobody can replay is a flake, not a finding — so the pins here are
mostly about scheduling: same seed, same plan; Nth-operation
semantics exact; each fault fires exactly once and is logged.
"""

import sqlite3

import pytest

from repro.errors import (
    ReproError,
    TransientQueueError,
    TransientStoreError,
    is_transient,
)
from repro.exec import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    FaultyQueue,
    FaultyStore,
    FileStore,
    Job,
    MemoryStore,
    ResilientQueue,
    ResilientStore,
    RetryPolicy,
    SQLiteStore,
    SQLiteWorkQueue,
)

#: Instant retries — these tests must not sleep.
_FAST_RETRY = RetryPolicy(
    max_attempts=4, base_delay=0.0, max_delay=0.0, max_elapsed=None
)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ReproError, match="target"):
            FaultSpec("disk", "persist", 1, "transient")
        with pytest.raises(ReproError, match="kind"):
            FaultSpec("store", "persist", 1, "gremlins")
        with pytest.raises(ReproError, match="index"):
            FaultSpec("store", "persist", 0, "transient")

    def test_as_dict_roundtrips_the_schedule(self):
        spec = FaultSpec("queue", "lease", 3, "expire_lease")
        assert spec.as_dict() == {
            "target": "queue", "op": "lease", "at": 3, "kind": "expire_lease",
        }


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan.aggressive(1234, worker_kills=2)
        b = FaultPlan.aggressive(1234, worker_kills=2)
        assert a.schedule() == b.schedule()
        assert a.seed == 1234

    def test_different_seed_different_schedule(self):
        assert (
            FaultPlan.aggressive(1).schedule()
            != FaultPlan.aggressive(2).schedule()
        )

    def test_fires_on_the_nth_op_exactly_once(self):
        plan = FaultPlan([FaultSpec("store", "persist", 2, "transient")])
        assert plan.tick("store", "persist") is None
        fired = plan.tick("store", "persist")
        assert fired is not None and fired.kind == "transient"
        assert plan.tick("store", "persist") is None  # spent
        assert plan.fired == [
            {
                "target": "store", "op": "persist", "at": 2,
                "kind": "transient", "on_op": "persist",
            }
        ]
        assert plan.remaining() == 0

    def test_ops_are_counted_per_operation(self):
        plan = FaultPlan([FaultSpec("store", "load", 2, "transient")])
        # Interleaved persists must not advance the load counter.
        assert plan.tick("store", "persist") is None
        assert plan.tick("store", "load") is None
        assert plan.tick("store", "persist") is None
        assert plan.tick("store", "load") is not None

    def test_wildcard_op_counts_everything_on_the_target(self):
        plan = FaultPlan([FaultSpec("store", "*", 3, "locked")])
        assert plan.tick("store", "persist") is None
        assert plan.tick("store", "load") is None
        assert plan.tick("queue", "lease") is None  # other target
        fired = plan.tick("store", "discard")
        assert fired is not None
        assert plan.fired[0]["on_op"] == "discard"

    def test_kill_points_are_markers_not_exceptions(self):
        plan = FaultPlan.aggressive(9, worker_kills=2)
        kills = plan.kill_points()
        assert len(kills) == 2
        assert all(s.kind == "kill_worker" for s in kills)
        # remaining() tracks only wrapper-raisable faults.
        assert plan.remaining() == len(plan.specs) - 2
        assert plan.describe()["seed"] == 9

    def test_identical_plans_replay_identical_firings(self):
        ops = ["persist", "load", "persist", "peek", "persist", "load"]
        logs = []
        for _ in range(2):
            plan = FaultPlan.aggressive(77, store_ops=3, queue_ops=0,
                                        torn_writes=0, lease_expiries=0,
                                        horizon=5)
            for op in ops:
                plan.tick("store", op)
            logs.append(plan.fired)
        assert logs[0] == logs[1]


class TestFaultyStore:
    def _store(self, specs):
        return FaultyStore(MemoryStore(), FaultPlan(specs))

    def test_transient_kind(self):
        store = self._store([FaultSpec("store", "persist", 1, "transient")])
        with pytest.raises(TransientStoreError, match="injected"):
            store.persist("fp", {"y": 1.0})
        # The op was lost, as with a real error...
        assert len(store) == 0
        # ...and the retry succeeds.
        store.persist("fp", {"y": 1.0})
        assert store.load("fp") == {"y": 1.0}

    def test_locked_kind_is_a_real_sqlite_shape(self):
        store = self._store([FaultSpec("store", "load", 1, "locked")])
        with pytest.raises(sqlite3.OperationalError) as excinfo:
            store.load("fp")
        assert is_transient(excinfo.value)

    def test_terminal_kind(self):
        store = self._store([FaultSpec("store", "clear", 1, "terminal")])
        with pytest.raises(OSError):
            store.clear()

    def test_torn_write_leaves_a_distrusted_corpse(self, tmp_path):
        inner = FileStore(tmp_path / "s")
        store = FaultyStore(
            inner, FaultPlan([FaultSpec("store", "persist", 1, "torn")])
        )
        with pytest.raises(TransientStoreError, match="torn"):
            store.persist("fp", {"y": 1.0, "z": 2.0})
        # Half a blob is on disk at the real path...
        path = inner._path("fp")
        assert path.exists() and path.stat().st_size > 0
        # ...and the store refuses to trust it.
        assert store.load("fp") is None
        # The retry overwrites the corpse and service resumes.
        store.persist("fp", {"y": 1.0, "z": 2.0})
        assert store.load("fp") == {"y": 1.0, "z": 2.0}

    def test_delegation_and_describe(self, tmp_path):
        inner = SQLiteStore(tmp_path / "s.sqlite")
        store = FaultyStore(inner, FaultPlan())
        store.persist("fp", {"y": 1.0})
        assert store.path == inner.path
        assert store.stats is inner.stats
        described = store.describe()
        assert described["faulty"] is True
        assert described["fault_plan"]["specs"] == 0
        assert described["store"] == store.name == f"faulty[{inner.name}]"
        store.close()


class TestFaultyQueue:
    def test_expire_lease_grants_a_lease_born_dead(self, tmp_path):
        plan = FaultPlan([FaultSpec("queue", "lease", 1, "expire_lease")])
        queue = FaultyQueue(SQLiteWorkQueue(tmp_path / "q.sqlite"), plan)
        queue.submit([Job("fp", {"a": 1.0})])
        leased = queue.lease("victim", n=1, lease_seconds=60.0)
        assert [job.job_id for job in leased] == ["fp"]
        # The victim believes it holds 60 s; the lease is already gone.
        assert queue.stats().expired == 1
        survivor = queue.lease("survivor", n=1, lease_seconds=60.0)
        assert [job.job_id for job in survivor] == ["fp"]
        assert queue.job("fp").worker_id == "survivor"
        # The victim's late completion is rejected: no double credit.
        assert queue.complete("victim", "fp") is False
        assert queue.complete("survivor", "fp") is True
        queue.close()

    def test_transient_kinds_raise_before_delegation(self, tmp_path):
        plan = FaultPlan(
            [
                FaultSpec("queue", "submit", 1, "transient"),
                FaultSpec("queue", "heartbeat", 1, "locked"),
            ]
        )
        queue = FaultyQueue(SQLiteWorkQueue(tmp_path / "q.sqlite"), plan)
        with pytest.raises(TransientQueueError):
            queue.submit([Job("fp", {"a": 1.0})])
        assert len(queue) == 0  # the op was lost
        with pytest.raises(sqlite3.OperationalError):
            queue.heartbeat("w1")
        queue.submit([Job("fp", {"a": 1.0})])
        assert len(queue) == 1
        assert queue.describe()["faulty"] is True
        queue.close()

    def test_every_kind_is_constructible(self):
        for kind in FAULT_KINDS:
            target = "queue" if kind == "expire_lease" else (
                "worker" if kind == "kill_worker" else "store"
            )
            FaultSpec(target, "*", 1, kind)


class TestMidBatchFaults:
    """A fault inside a batched call neither loses nor double-applies.

    The faulty wrappers apply the *first half* of a batch before
    raising — the nastiest shape a real mid-transaction crash can
    leave behind.  Idempotent application (INSERT OR REPLACE; a spent
    lease rejects a second completion) plus the retry layer must
    converge on exactly the full batch, applied once.
    """

    def test_persist_many_partial_then_retry_converges(self, tmp_path):
        inner = SQLiteStore(tmp_path / "s.sqlite")
        store = FaultyStore(
            inner,
            FaultPlan(
                [FaultSpec("store", "persist_many", 1, "transient")]
            ),
        )
        entries = [(f"fp{i}", {"y": float(i)}) for i in range(4)]
        with pytest.raises(TransientStoreError):
            store.persist_many(entries)
        # The injected crash left the first half behind...
        assert len(inner) == 2
        # ...and the bare retry lands the whole batch exactly once.
        store.persist_many(entries)
        assert dict(inner.items()) == dict(entries)
        inner.close()

    def test_resilient_store_masks_the_partial_batch(self, tmp_path):
        inner = SQLiteStore(tmp_path / "s.sqlite")
        store = ResilientStore(
            FaultyStore(
                inner,
                FaultPlan(
                    [FaultSpec("store", "persist_many", 1, "locked")]
                ),
            ),
            retry=_FAST_RETRY,
            sleep=lambda _: None,
        )
        entries = [(f"fp{i}", {"y": float(i)}) for i in range(5)]
        store.persist_many(entries)  # one call; the fault is invisible
        assert dict(inner.items()) == dict(entries)
        assert store.resilience.retried == 1
        store.close()

    def test_complete_many_partial_then_retry_completes_once(
        self, tmp_path
    ):
        inner = SQLiteWorkQueue(tmp_path / "q.sqlite")
        queue = ResilientQueue(
            FaultyQueue(
                inner,
                FaultPlan(
                    [FaultSpec("queue", "complete_many", 1, "transient")]
                ),
            ),
            retry=_FAST_RETRY,
            sleep=lambda _: None,
        )
        queue.submit([Job(f"fp{i}", {"a": float(i)}) for i in range(4)])
        queue.lease("w1", n=4)
        done = queue.complete_many(
            "w1", [(f"fp{i}", 0.5) for i in range(4)]
        )
        # The first half landed before the fault, so the retried
        # batch only finds two live leases left — the return value
        # reports the retry's coverage, never a double count.
        assert done == 2
        assert queue.resilience.retried == 1
        stats = inner.stats()
        assert stats.done == 4 and stats.failed == 0
        for i in range(4):
            record = inner.job(f"fp{i}")
            assert record.status == "done"
            assert record.attempts == 1  # completed once, not twice
            assert record.seconds == pytest.approx(0.5)
        queue.close()
