"""Factors, design space, coded/physical transforms."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.factors import DesignSpace, Factor, canonical_space
from repro.errors import DesignError


class TestFactor:
    def test_linear_endpoints(self):
        f = Factor("c", 0.1, 1.0)
        assert f.to_physical(-1.0) == pytest.approx(0.1)
        assert f.to_physical(1.0) == pytest.approx(1.0)
        assert f.centre == pytest.approx(0.55)

    def test_log_endpoints_and_centre(self):
        f = Factor("t", 2.0, 60.0, transform="log")
        assert f.to_physical(-1.0) == pytest.approx(2.0)
        assert f.to_physical(1.0) == pytest.approx(60.0)
        assert f.centre == pytest.approx(np.sqrt(120.0))  # geometric mean

    @given(st.floats(-1.0, 1.0))
    def test_linear_roundtrip(self, coded):
        f = Factor("x", -3.0, 7.0)
        assert f.to_coded(f.to_physical(coded)) == pytest.approx(
            coded, abs=1e-12
        )

    @given(st.floats(-1.0, 1.0))
    def test_log_roundtrip(self, coded):
        f = Factor("x", 0.5, 500.0, transform="log")
        assert f.to_coded(f.to_physical(coded)) == pytest.approx(
            coded, abs=1e-9
        )

    def test_integer_rounding(self):
        f = Factor("bits", 64, 1024, transform="log", integer=True)
        value = f.to_physical(0.3)
        assert value == round(value)

    def test_validation(self):
        with pytest.raises(DesignError):
            Factor("x", 2.0, 1.0)
        with pytest.raises(DesignError):
            Factor("x", -1.0, 1.0, transform="log")
        with pytest.raises(DesignError):
            Factor("x", 0.0, 1.0, transform="exp")
        with pytest.raises(DesignError):
            Factor("", 0.0, 1.0)

    def test_log_encode_rejects_nonpositive(self):
        f = Factor("x", 1.0, 10.0, transform="log")
        with pytest.raises(DesignError):
            f.to_coded(-2.0)


class TestDesignSpace:
    def setup_method(self):
        self.space = DesignSpace(
            [Factor("a", 0.0, 10.0), Factor("b", 1.0, 100.0, transform="log")]
        )

    def test_basic_properties(self):
        assert self.space.k == 2
        assert self.space.names == ("a", "b")
        assert self.space["a"].low == 0.0
        assert self.space.index("b") == 1

    def test_matrix_roundtrip(self):
        coded = np.array([[-1.0, 0.0], [0.5, 1.0]])
        physical = self.space.to_physical(coded)
        back = self.space.to_coded(physical)
        assert np.allclose(back, coded, atol=1e-9)

    def test_point_dict_roundtrip(self):
        row = np.array([0.25, -0.5])
        point = self.space.point_to_dict(row)
        assert set(point) == {"a", "b"}
        back = self.space.dict_to_coded(point)
        assert np.allclose(back, row, atol=1e-9)

    def test_missing_factors_default_to_centre(self):
        row = self.space.dict_to_coded({"a": 5.0})
        assert row[1] == 0.0

    def test_unknown_factor_rejected(self):
        with pytest.raises(DesignError):
            self.space.dict_to_coded({"zzz": 1.0})
        with pytest.raises(DesignError):
            self.space["zzz"]
        with pytest.raises(DesignError):
            self.space.index("zzz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(DesignError):
            DesignSpace([Factor("a", 0, 1), Factor("a", 0, 1)])

    def test_empty_rejected(self):
        with pytest.raises(DesignError):
            DesignSpace([])

    def test_wrong_width_rejected(self):
        with pytest.raises(DesignError):
            self.space.to_physical(np.zeros((3, 5)))

    def test_clip(self):
        clipped = self.space.clip(np.array([[2.0, -3.0]]))
        assert np.array_equal(clipped, [[1.0, -1.0]])


class TestCanonicalSpace:
    def test_five_factors(self):
        space = canonical_space()
        assert space.k == 5
        assert "capacitance" in space.names
        assert "payload_bits" in space.names

    def test_payload_is_integer(self):
        space = canonical_space()
        value = space["payload_bits"].to_physical(0.123)
        assert value == round(value)

    def test_log_factors(self):
        space = canonical_space()
        assert space["tx_interval"].transform == "log"
        assert space["check_interval"].transform == "log"
