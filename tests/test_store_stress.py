"""Multi-process store stress: concurrent writers, one store, no loss.

N genuinely separate Python processes hammer one persistent store
with *overlapping* fingerprints — the exact pattern of a study fanned
out across hosts sharing a cache, where several workers race to
persist the same deterministic evaluation.  Afterwards every
fingerprint must hold its correct payload (no lost or torn entries),
``verify`` must report a clean cache, and the lifecycle operations
must work on the store the melee produced.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.exec import resolve_store

#: Overlapping-fingerprint pool shared by every writer.
POOL = 40
WRITERS = 4
ROUNDS = 3

WRITER_SCRIPT = textwrap.dedent(
    """
    import random, sys

    from repro.exec import resolve_store

    store_spec, writer_id = sys.argv[1], int(sys.argv[2])
    pool, rounds = int(sys.argv[3]), int(sys.argv[4])

    def payload(j):
        # Deterministic across writers: racing persists of one
        # fingerprint must carry identical payloads, like the real
        # evaluation cache (evaluations are pure).
        return {"y1": j * 0.5, "y2": 1.0 / (j + 1), "y3": float(j % 7)}

    store = resolve_store(store_spec)
    rng = random.Random(writer_id)
    for _ in range(rounds):
        order = list(range(pool))
        rng.shuffle(order)
        for j in order:
            store.persist(f"fp{j:04d}", payload(j))
            if rng.random() < 0.3:
                probe = f"fp{rng.randrange(pool):04d}"
                loaded = store.load(probe)
                if loaded is not None and loaded != payload(
                    int(probe[2:])
                ):
                    print(f"TORN READ at {probe}: {loaded}")
                    sys.exit(3)
    store.close()
    print("ok")
    """
)


def _spawn_writers(store_spec, tmp_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    script = tmp_path / "stress_writer.py"
    script.write_text(WRITER_SCRIPT, encoding="utf-8")
    procs = [
        subprocess.Popen(
            [
                sys.executable,
                str(script),
                str(store_spec),
                str(writer_id),
                str(POOL),
                str(ROUNDS),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for writer_id in range(WRITERS)
    ]
    failures = []
    for writer_id, proc in enumerate(procs):
        out, err = proc.communicate(timeout=120)
        if proc.returncode != 0 or out.strip() != "ok":
            failures.append((writer_id, proc.returncode, out, err))
    return failures


@pytest.mark.parametrize("spec", ["blobs", "evals.sqlite"])
def test_concurrent_writers_lose_nothing(tmp_path, spec):
    store_spec = tmp_path / spec
    failures = _spawn_writers(store_spec, tmp_path)
    assert not failures, f"writer processes failed: {failures}"

    store = resolve_store(store_spec)
    try:
        # Every fingerprint present, every payload exact.
        assert len(store) == POOL
        seen = dict(store.items())
        assert len(seen) == POOL
        for j in range(POOL):
            expected = {
                "y1": j * 0.5,
                "y2": 1.0 / (j + 1),
                "y3": float(j % 7),
            }
            assert seen[f"fp{j:04d}"] == expected, f"fp{j:04d}"

        # The melee left a clean store: nothing corrupt, nothing
        # partial, and the lifecycle ops work on what it produced.
        report = store.verify()
        assert report.clean, report.as_dict()
        assert report.valid == POOL
        compaction = store.compact(grace_seconds=0.0)
        assert compaction.partials_removed == 0
        assert store.verify().clean
        assert store.total_bytes() > 0
    finally:
        store.close()


def test_writers_then_cli_verify_agrees(tmp_path):
    """The CLI's verify — what CI gates on — sees the same cleanliness."""
    store_spec = tmp_path / "shared.sqlite"
    failures = _spawn_writers(store_spec, tmp_path)
    assert not failures, f"writer processes failed: {failures}"

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    out = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.exec.cli",
            "verify",
            str(store_spec),
            "--json",
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    assert out.returncode == 0, out.stderr
    report = json.loads(out.stdout)
    assert report["clean"] is True
    assert report["valid"] == POOL
