"""Explorer and toolkit on synthetic evaluators (fast) plus analysis."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import ascii_contour, ascii_line_plot
from repro.analysis.io import write_csv
from repro.analysis.tables import format_table
from repro.core.doe import central_composite, latin_hypercube
from repro.core.explorer import DesignExplorer
from repro.core.factors import DesignSpace, Factor
from repro.errors import DesignError, FitError, ReproError


def _space():
    return DesignSpace(
        [Factor("a", 0.0, 2.0), Factor("b", 10.0, 1000.0, transform="log")]
    )


def _evaluator(point):
    a = point["a"]
    b = np.log10(point["b"])
    return {
        "y1": 3.0 + a**2 - b,
        "y2": a * b,
    }


class TestDesignExplorer:
    def setup_method(self):
        self.explorer = DesignExplorer(_space(), _evaluator, ["y1", "y2"])

    def test_run_design_collects_all_responses(self):
        design = central_composite(2, alpha="face", n_center=2)
        result = self.explorer.run_design(design)
        assert result.n_runs == design.n_runs
        assert set(result.responses) == {"y1", "y2"}
        assert result.total_seconds >= 0.0

    def test_fit_and_predict(self):
        design = central_composite(2, alpha="face", n_center=2)
        result = self.explorer.run_design(design)
        surfaces = self.explorer.fit_surfaces(result, model="quadratic")
        # y1 is quadratic in coded units too (linear transform on 'a');
        # prediction at a fresh point should be accurate.
        point = np.array([[0.37, -0.42]])
        physical = _space().point_to_dict(point[0])
        truth = _evaluator(physical)["y1"]
        assert surfaces["y1"].predict(point)[0] == pytest.approx(
            truth, rel=0.02
        )

    def test_validation_report(self):
        result = self.explorer.run_design(
            central_composite(2, alpha="face", n_center=2)
        )
        surfaces = self.explorer.fit_surfaces(result)
        report = self.explorer.validate(surfaces, n_points=8, seed=3)
        assert set(report.metrics) == {"y1", "y2"}
        for metric in report.metrics.values():
            assert metric["rmse"] >= 0.0

    def test_anova_per_response(self):
        result = self.explorer.run_design(
            central_composite(2, alpha="face", n_center=3)
        )
        surfaces = self.explorer.fit_surfaces(result)
        tables = self.explorer.anova(surfaces)
        assert set(tables) == {"y1", "y2"}

    def test_stepwise_path(self):
        result = self.explorer.run_design(
            central_composite(2, alpha="face", n_center=3)
        )
        surfaces = self.explorer.fit_surfaces(result, stepwise_alpha=0.05)
        # y2 = a*b has no pure quadratic terms: stepwise should shrink.
        assert surfaces["y2"].model.p < 6

    def test_wrong_design_width_rejected(self):
        with pytest.raises(DesignError):
            self.explorer.run_design(central_composite(3))

    def test_evaluator_must_cover_responses(self):
        explorer = DesignExplorer(
            _space(), lambda p: {"y1": 0.0}, ["y1", "y2"]
        )
        with pytest.raises(DesignError, match="omitted"):
            explorer.run_design(latin_hypercube(4, 2, seed=0))

    def test_duplicate_responses_rejected(self):
        with pytest.raises(DesignError):
            DesignExplorer(_space(), _evaluator, ["y1", "y1"])

    def test_unknown_model_rejected(self):
        result = self.explorer.run_design(latin_hypercube(10, 2, seed=0))
        with pytest.raises(FitError):
            self.explorer.fit_surfaces(result, model="septic")


class TestTables:
    def test_alignment_and_nan(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["beta", float("nan")]],
            title="demo",
        )
        assert "demo" in text
        assert "alpha" in text and "-" in text

    def test_row_width_checked(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            format_table([], [])


class TestAsciiPlots:
    def test_line_plot_contains_markers(self):
        x = np.linspace(0, 1, 50)
        text = ascii_line_plot(
            {"rise": (x, x), "fall": (x, 1 - x)}, title="t"
        )
        assert "o rise" in text and "x fall" in text

    def test_line_plot_rejects_empty(self):
        with pytest.raises(ReproError):
            ascii_line_plot({})

    def test_contour_shades(self):
        grid = np.outer(np.linspace(0, 1, 10), np.linspace(0, 1, 10))
        text = ascii_contour(grid, (0, 1), (0, 1))
        assert "@" in text  # the hottest shade appears

    def test_contour_rejects_bad_grid(self):
        with pytest.raises(ReproError):
            ascii_contour(np.zeros((0, 0)), (0, 1), (0, 1))


class TestCsv:
    def test_write_and_readback(self, tmp_path):
        path = write_csv(
            "demo.csv",
            {"x": [1.0, 2.0], "y": [3.0, 4.0]},
            directory=str(tmp_path),
        )
        content = open(path).read().splitlines()
        assert content[0] == "x,y"
        assert len(content) == 3

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            write_csv(
                "bad.csv", {"x": [1.0], "y": [1.0, 2.0]}, directory=str(tmp_path)
            )
