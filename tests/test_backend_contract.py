"""One parametrized contract, every evaluation backend.

The behavioural suite lives in :mod:`backend_contract`; this module
binds it to the shipped backends: serial (plain and batched),
process, thread, and the distributed backend over both persistent
substrates (file directory and SQLite database).  A new backend earns
the whole contract — ordering, bit-identity, submit/drain, error
propagation — by adding one subclass here.
"""

from backend_contract import BackendContract, synthetic_evaluate

from repro.exec import (
    DistributedBackend,
    FileStore,
    ProcessBackend,
    SerialBackend,
    SQLiteStore,
    ThreadBackend,
)


class TestSerialBackendContract(BackendContract):
    def make_backend(self, tmp_path):
        return SerialBackend()


class TestSerialBatchedBackendContract(BackendContract):
    def make_backend(self, tmp_path):
        def batch(points):
            return [(synthetic_evaluate(p), 0.125) for p in points]

        return SerialBackend(batch_evaluate=batch)

    def test_evaluator_exception_propagates(self, backend):
        # The batched path routes through batch_evaluate, which here
        # never calls the broken per-point evaluator; exercise the
        # plain serial binding for error propagation instead.
        import pytest

        def broken_batch(points):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            SerialBackend(batch_evaluate=broken_batch).run(
                synthetic_evaluate, [{"a": 0.0, "b": 1.0}]
            )


class TestProcessBackendContract(BackendContract):
    def make_backend(self, tmp_path):
        return ProcessBackend(workers=2, chunk_size=2)


class TestThreadBackendContract(BackendContract):
    def make_backend(self, tmp_path):
        return ThreadBackend(workers=3)


class TestDistributedFileBackendContract(BackendContract):
    def make_backend(self, tmp_path):
        # Cooperate mode: the submitting process is its own worker,
        # so the contract runs without external processes.
        self._store = FileStore(tmp_path / "evals")
        return DistributedBackend(
            self._store, batch=2, lease_seconds=30.0, timeout=60.0
        )


class TestDistributedSQLiteBackendContract(BackendContract):
    def make_backend(self, tmp_path):
        self._store = SQLiteStore(tmp_path / "evals.sqlite")
        return DistributedBackend(
            self._store, batch=2, lease_seconds=30.0, timeout=60.0
        )
