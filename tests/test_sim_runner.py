"""Mission runner over the full-fidelity engines, plus indicators."""

import numpy as np
import pytest

from repro.errors import ReproError, SimulationError
from repro.indicators import (
    evaluate_indicators,
    get_indicator,
    indicator_names,
    register_indicator,
)
from repro.node.node import SensorNode
from repro.node.policies import FixedPeriodPolicy
from repro.presets import default_system
from repro.sim.results import SimulationResult
from repro.sim.runner import MissionConfig, simulate


class TestMissionConfig:
    def test_defaults(self):
        m = MissionConfig(t_end=10.0)
        assert m.engine == "envelope"
        assert m.resolve_record_dt() == 1.0

    def test_full_fidelity_record_default(self):
        m = MissionConfig(t_end=1.0, engine="linearized")
        assert m.resolve_record_dt() == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(SimulationError):
            MissionConfig(t_end=0.0)
        with pytest.raises(SimulationError):
            MissionConfig(t_end=1.0, engine="spice")
        with pytest.raises(SimulationError):
            MissionConfig(t_end=1.0, steps_per_period=2)
        with pytest.raises(SimulationError):
            MissionConfig(t_end=1.0, dt=-1e-4)


class TestFullFidelityMission:
    def test_short_linearized_mission(self):
        cfg = default_system(
            tx_interval=0.5, with_controller=False, v_initial=3.0
        )
        result = simulate(
            cfg,
            MissionConfig(
                t_end=2.0, engine="linearized", steps_per_period=100,
                record_dt=0.01,
            ),
        )
        # Four-ish task cycles in 2 s at 0.5 s period.
        assert 3 <= result.counter("packets_delivered") <= 5
        assert result.energy("harvested") > 0.0
        assert result.has_trace("z") and result.has_trace("i_coil")

    def test_newton_mission_matches_linearized_packets(self):
        cfg = default_system(
            tx_interval=0.5, with_controller=False, v_initial=3.0
        )
        lss = simulate(
            cfg,
            MissionConfig(
                t_end=1.5, engine="linearized", steps_per_period=80,
                record_dt=0.05,
            ),
        )
        nr = simulate(
            cfg,
            MissionConfig(
                t_end=1.5, engine="newton", steps_per_period=80,
                record_dt=0.05,
            ),
        )
        assert nr.counter("packets_delivered") == lss.counter(
            "packets_delivered"
        )
        assert nr.final_store_voltage() == pytest.approx(
            lss.final_store_voltage(), abs=0.02
        )

    def test_linearized_faster_than_newton(self):
        cfg = default_system(with_controller=False, tx_interval=10.0)
        mission = dict(t_end=1.0, steps_per_period=100, record_dt=0.1)
        lss = simulate(cfg, MissionConfig(engine="linearized", **mission))
        nr = simulate(cfg, MissionConfig(engine="newton", **mission))
        assert lss.wall_time < nr.wall_time

    def test_node_load_drains_faster_than_idle(self):
        idle_cfg = default_system(with_controller=False)
        idle_cfg.node = None
        idle = simulate(
            idle_cfg,
            MissionConfig(
                t_end=1.0, engine="linearized", steps_per_period=80,
                record_dt=0.1,
            ),
        )
        busy = simulate(
            default_system(tx_interval=0.2, with_controller=False),
            MissionConfig(
                t_end=1.0, engine="linearized", steps_per_period=80,
                record_dt=0.1,
            ),
        )
        assert busy.final_store_voltage() < idle.final_store_voltage()


class TestIndicators:
    def _mission_result(self):
        cfg = default_system(tx_interval=10.0)
        from repro.sim.envelope import EnvelopeOptions

        fast = EnvelopeOptions(
            map_v_points=4,
            map_nr_warmup_cycles=4,
            map_warmup_cycles=8,
            map_measure_cycles=6,
            map_max_blocks=3,
            map_steps_per_period=80,
        )
        return simulate(
            cfg, MissionConfig(t_end=300.0, engine="envelope", envelope=fast)
        )

    def test_all_builtins_evaluate(self):
        result = self._mission_result()
        values = evaluate_indicators(result)
        assert set(values) == set(indicator_names())
        assert all(np.isfinite(v) for v in values.values())

    def test_data_rate_consistent_with_packets(self):
        result = self._mission_result()
        values = evaluate_indicators(
            result, ["packets_delivered", "effective_data_rate"]
        )
        expected = values["packets_delivered"] * 256 / 300.0
        assert values["effective_data_rate"] == pytest.approx(expected)

    def test_uptime_complements_downtime(self):
        result = self._mission_result()
        v = evaluate_indicators(result, ["uptime_fraction", "downtime_fraction"])
        assert v["uptime_fraction"] + v["downtime_fraction"] == pytest.approx(1.0)

    def test_unknown_indicator_rejected(self):
        with pytest.raises(ReproError):
            get_indicator("nope")

    def test_register_and_overwrite_guard(self):
        register_indicator("test_custom", lambda r: 1.0)
        assert get_indicator("test_custom") is not None
        with pytest.raises(ReproError):
            register_indicator("test_custom", lambda r: 2.0)
        register_indicator("test_custom", lambda r: 2.0, overwrite=True)
