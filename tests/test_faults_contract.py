"""The fault-injection wrappers, held to the full substrate contracts.

Two claims underwrite the chaos harness, and both are pinned here by
re-running the existing behavioural suites through the wrappers:

* **Transparency** — :class:`FaultyStore` / :class:`FaultyQueue` with
  an *empty* :class:`FaultPlan` are behaviourally invisible: the whole
  store contract (:mod:`store_contract`) and queue contract
  (:class:`test_exec_queue.TestWorkQueueContract`) pass unchanged.
* **Masking** — with a *transient* plan injecting faults into the
  stream of operations, wrapping in :class:`ResilientStore` /
  :class:`ResilientQueue` restores the exact same contracts: the
  retry layer absorbs every injected failure without changing any
  observable behaviour (including the stores' stats counters, which
  must not double-count retried operations).
"""

import pytest

from repro.exec import (
    FaultPlan,
    FaultSpec,
    FaultyQueue,
    FaultyStore,
    FileStore,
    FileWorkQueue,
    ResilientQueue,
    ResilientStore,
    RetryPolicy,
    SQLiteStore,
    SQLiteWorkQueue,
)

from store_contract import StoreContract
from test_exec_queue import TestWorkQueueContract as _WorkQueueContract
from test_store_contract import (
    TestFileStoreContract as _FileStoreContract,
    TestSQLiteStoreContract as _SQLiteStoreContract,
)

#: Instant, budget-free retries — contract runs should not sleep.
FAST_RETRY = RetryPolicy(
    max_attempts=4, base_delay=0.0, max_delay=0.0, max_elapsed=None
)


def _transient_store_plan():
    # The 2nd and 5th store operations of any kind fail transiently —
    # early enough that every contract test trips at least one.
    return FaultPlan(
        [
            FaultSpec("store", "*", 2, "transient"),
            FaultSpec("store", "*", 5, "locked"),
        ]
    )


def _transient_queue_plan():
    return FaultPlan(
        [
            FaultSpec("queue", "*", 2, "transient"),
            FaultSpec("queue", "*", 5, "locked"),
        ]
    )


# -- transparency: empty plan, wrappers invisible ------------------------------


class TestFaultyFileStoreTransparent(_FileStoreContract):
    def make_store(self, tmp_path):
        return FaultyStore(FileStore(tmp_path / "file-store"), FaultPlan())

    def reopen(self, tmp_path):
        return FaultyStore(FileStore(tmp_path / "file-store"), FaultPlan())


class TestFaultySQLiteStoreTransparent(_SQLiteStoreContract):
    def make_store(self, tmp_path):
        return FaultyStore(SQLiteStore(tmp_path / "store.sqlite"), FaultPlan())

    def reopen(self, tmp_path):
        return FaultyStore(SQLiteStore(tmp_path / "store.sqlite"), FaultPlan())


class TestFaultyQueueTransparent(_WorkQueueContract):
    @pytest.fixture(params=["sqlite", "file"])
    def queue(self, request, tmp_path):
        if request.param == "sqlite":
            inner = SQLiteWorkQueue(tmp_path / "queue.sqlite")
        else:
            inner = FileWorkQueue(tmp_path / "queue")
        built = FaultyQueue(inner, FaultPlan())
        yield built
        built.close()


# -- masking: transient plan + resilient wrapper, contract restored ------------


class TestResilientFileStoreMasksTransients(_FileStoreContract):
    def make_store(self, tmp_path):
        return ResilientStore(
            FaultyStore(
                FileStore(tmp_path / "file-store"), _transient_store_plan()
            ),
            retry=FAST_RETRY,
            sleep=lambda _: None,
        )

    def reopen(self, tmp_path):
        return ResilientStore(
            FaultyStore(FileStore(tmp_path / "file-store"), FaultPlan()),
            retry=FAST_RETRY,
            sleep=lambda _: None,
        )


class TestResilientSQLiteStoreMasksTransients(_SQLiteStoreContract):
    def make_store(self, tmp_path):
        return ResilientStore(
            FaultyStore(
                SQLiteStore(tmp_path / "store.sqlite"),
                _transient_store_plan(),
            ),
            retry=FAST_RETRY,
            sleep=lambda _: None,
        )

    def reopen(self, tmp_path):
        return ResilientStore(
            FaultyStore(SQLiteStore(tmp_path / "store.sqlite"), FaultPlan()),
            retry=FAST_RETRY,
            sleep=lambda _: None,
        )


class TestResilientQueueMasksTransients(_WorkQueueContract):
    @pytest.fixture(params=["sqlite", "file"])
    def queue(self, request, tmp_path):
        if request.param == "sqlite":
            inner = SQLiteWorkQueue(tmp_path / "queue.sqlite")
        else:
            inner = FileWorkQueue(tmp_path / "queue")
        built = ResilientQueue(
            FaultyQueue(inner, _transient_queue_plan()),
            retry=FAST_RETRY,
            sleep=lambda _: None,
        )
        yield built
        built.close()


# -- the masking runs really did inject --------------------------------------


class TestInjectionActuallyHappens:
    def test_store_contract_traffic_trips_the_plan(self, tmp_path):
        plan = _transient_store_plan()
        store = ResilientStore(
            FaultyStore(FileStore(tmp_path / "s"), plan),
            retry=FAST_RETRY,
            sleep=lambda _: None,
        )
        for i in range(6):
            store.persist(f"fp{i}", {"y": float(i)})
        assert len(plan.fired) == 2
        assert store.resilience.retried == 2
        assert plan.remaining() == 0
        assert len(store) == 6  # nothing lost to the injected faults

    def test_queue_contract_traffic_trips_the_plan(self, tmp_path):
        plan = _transient_queue_plan()
        queue = ResilientQueue(
            FaultyQueue(SQLiteWorkQueue(tmp_path / "q.sqlite"), plan),
            retry=FAST_RETRY,
            sleep=lambda _: None,
        )
        from repro.exec import Job

        queue.submit([Job(f"fp{i}", {"a": float(i)}) for i in range(3)])
        for job in queue.lease("w1", n=3):
            queue.complete("w1", job.job_id)
        queue.stats()
        queue.reclaim()
        assert len(plan.fired) == 2
        assert queue.resilience.retried == 2
        assert queue.stats().done == 3
        queue.close()

    def test_checked_suites_inherit_everything(self):
        # Guard against the reuse silently breaking: the bound classes
        # must still carry the full inherited contract.
        assert len(
            [n for n in dir(TestFaultyQueueTransparent) if n.startswith("test_")]
        ) >= 12
        assert len(
            [
                n
                for n in dir(TestResilientFileStoreMasksTransients)
                if n.startswith("test_")
            ]
        ) >= 20
