"""The evaluation subsystem: backends, cache, and the rewired flow.

Covers the acceptance properties of the execution layer: serial and
process backends produce bit-identical results in deterministic order,
the content-addressed cache collapses replicates and repeated studies,
and the LRU bound on the linearized engine's matrix-exponential cache
holds under retune-heavy gap schedules.
"""

import math

import numpy as np
import pytest

from repro.core.doe import central_composite, latin_hypercube
from repro.core.explorer import DesignExplorer
from repro.core.factors import DesignSpace, Factor
from repro.core.toolkit import SensorNodeDesignToolkit
from repro.errors import ReproError, SimulationError
from repro.exec import (
    EvalCache,
    EvaluationEngine,
    ProcessBackend,
    SerialBackend,
    point_fingerprint,
    resolve_backend,
)
from repro.harvester.tuning import TunableHarvester
from repro.power.rectifier import build_bridge_circuit
from repro.power.regulator import Regulator
from repro.power.supercap import Supercapacitor
from repro.sim.envelope import EnvelopeOptions, clear_charging_cache
from repro.sim.state_space import _CACHE_MAX_ENTRIES, LinearizedStateSpaceEngine
from repro.sim.system import SystemConfig, SystemModel
from repro.sim.traces import TraceRecorder
from repro.vibration.sources import SineVibration

FAST_ENVELOPE = EnvelopeOptions(
    map_v_points=4,
    map_nr_warmup_cycles=4,
    map_warmup_cycles=8,
    map_measure_cycles=6,
    map_max_blocks=3,
    map_steps_per_period=80,
)


def _synthetic(point):
    """Deterministic, picklable stand-in for a mission simulation."""
    a = point["a"]
    b = point["b"]
    return {
        "y1": math.sin(a) * b + a * a,
        "y2": math.exp(-abs(b)) + 3.0 * a,
    }


def _space():
    return DesignSpace([Factor("a", -1.0, 1.0), Factor("b", 0.5, 4.0)])


class TestPointFingerprint:
    def test_key_order_irrelevant(self):
        assert point_fingerprint({"a": 1.0, "b": 2.0}) == point_fingerprint(
            {"b": 2.0, "a": 1.0}
        )

    def test_value_bits_matter(self):
        assert point_fingerprint({"a": 1.0}) != point_fingerprint(
            {"a": 1.0 + 2.3e-16}  # one ulp away
        )

    def test_context_partitions_keys(self):
        point = {"a": 1.0}
        assert point_fingerprint(point, context=("m", 600.0)) != (
            point_fingerprint(point, context=("m", 900.0))
        )

    def test_object_context_is_stable(self):
        point = {"a": 1.0}
        ctx_a = {"vibration": SineVibration(0.6, 67.0)}
        ctx_b = {"vibration": SineVibration(0.6, 67.0)}
        assert point_fingerprint(point, ctx_a) == point_fingerprint(
            point, ctx_b
        )
        ctx_c = {"vibration": SineVibration(0.6, 68.0)}
        assert point_fingerprint(point, ctx_a) != point_fingerprint(
            point, ctx_c
        )


class TestEvalCache:
    def test_put_get_and_stats(self):
        cache = EvalCache()
        assert cache.get("k") is None
        cache.put("k", {"y": 1.0})
        assert cache.get("k") == {"y": 1.0}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_returned_dict_is_a_copy(self):
        cache = EvalCache()
        cache.put("k", {"y": 1.0})
        cache.get("k")["y"] = 99.0
        assert cache.get("k") == {"y": 1.0}

    def test_lru_eviction(self):
        cache = EvalCache(max_entries=2)
        cache.put("a", {"y": 1.0})
        cache.put("b", {"y": 2.0})
        assert cache.get("a") is not None  # refresh 'a'
        cache.put("c", {"y": 3.0})  # evicts 'b'
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_bad_bound_rejected(self):
        with pytest.raises(ReproError):
            EvalCache(max_entries=0)

    def test_get_many_counts_hits_and_misses_per_unique(self):
        cache = EvalCache()
        cache.put_many([("a", {"y": 1.0}), ("b", {"y": 2.0})])
        found = cache.get_many(["a", "ghost", "b", "a"])
        assert found == {"a": {"y": 1.0}, "b": {"y": 2.0}}
        assert cache.stats.hits == 2  # unique hits, not slots
        assert cache.stats.misses == 1
        assert cache.get_many([]) == {}
        # The returned payloads are copies, like get().
        found["a"]["y"] = 99.0
        assert cache.get("a") == {"y": 1.0}

    def test_put_many_validates_fingerprints(self):
        cache = EvalCache()
        with pytest.raises(ReproError):
            cache.put_many([(3, {"y": 1.0})])
        cache.put_many([])
        assert "ghost" not in cache


class TestEvaluationEngine:
    def test_replicates_collapse_to_one_evaluation(self):
        calls = []

        def evaluate(point):
            calls.append(dict(point))
            return _synthetic(point)

        engine = EvaluationEngine(evaluate, backend="serial", cache=True)
        point = {"a": 0.3, "b": 1.5}
        out = engine.map_points([point, dict(point), {"a": -0.2, "b": 2.0}])
        assert len(calls) == 2
        assert out[0].responses == out[1].responses
        assert out[1].cached and not out[0].cached
        assert out[1].seconds == 0.0
        assert engine.replicate_hits == 1
        # Replicates must not pollute the hit/miss stats: two unique
        # points means two misses, not three.
        assert engine.cache.stats.misses == 2
        assert engine.cache.stats.hits == 0

    def test_second_batch_fully_cached(self):
        engine = EvaluationEngine(_synthetic, backend="serial", cache=True)
        points = [{"a": float(i) / 7.0, "b": 1.0 + i} for i in range(5)]
        first = engine.map_points(points)
        second = engine.map_points(points)
        assert all(e.cached for e in second)
        assert [e.responses for e in first] == [e.responses for e in second]
        assert engine.points_evaluated == 5

    def test_cache_disabled_reruns_everything(self):
        calls = []

        def evaluate(point):
            calls.append(1)
            return _synthetic(point)

        engine = EvaluationEngine(evaluate, backend="serial", cache=False)
        point = {"a": 0.5, "b": 2.0}
        engine.map_points([point, dict(point)])
        engine.map_points([point])
        assert len(calls) == 3
        assert engine.stats()["cache"] is None

    def test_prefetch_is_a_noop_on_serial_backends(self):
        engine = EvaluationEngine(lambda p: {"y": p["a"]})
        assert engine.prefetch([{"a": 1.0}]) == 0
        snap = engine.stats_snapshot()
        assert snap["queue_transactions"] == 0
        assert snap["poll_sleeps"] == 0
        assert "store_round_trips" in snap

    def test_single_point_call(self):
        engine = EvaluationEngine(_synthetic, backend="serial", cache=True)
        point = {"a": 0.1, "b": 1.0}
        assert engine(point) == _synthetic(point)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            EvaluationEngine(_synthetic, backend="threads")

    def test_callable_context_is_resnapshotted(self):
        calls = []

        def evaluate(point):
            calls.append(1)
            return _synthetic(point)

        config = {"mission_time": 900.0}
        engine = EvaluationEngine(
            evaluate,
            backend="serial",
            cache=True,
            context=lambda: dict(config),
        )
        point = {"a": 0.4, "b": 1.0}
        engine.map_points([point])
        engine.map_points([point])
        assert len(calls) == 1  # same context -> cache hit
        config["mission_time"] = 300.0
        engine.map_points([point])
        assert len(calls) == 2  # changed context -> re-evaluated

    def test_batch_evaluator_used_by_serial_backend(self):
        def batch(points):
            return [(_synthetic(p), 0.25) for p in points]

        engine = EvaluationEngine(
            _synthetic, backend="serial", cache=False, batch_evaluate=batch
        )
        out = engine.map_points([{"a": 0.2, "b": 1.0}])
        assert out[0].seconds == 0.25
        assert engine.stats()["batched"] is True


class TestProcessBackend:
    def test_matches_serial_bitwise_on_lhs(self):
        design = latin_hypercube(12, 2, seed=7)
        space = _space()
        points = [space.point_to_dict(row) for row in design.matrix]
        serial = SerialBackend().run(_synthetic, points)
        process = ProcessBackend(workers=2, chunk_size=3).run(
            _synthetic, points
        )
        for (r_s, _), (r_p, _) in zip(serial, process):
            assert r_s == r_p  # exact float equality, order preserved

    def test_empty_batch(self):
        assert ProcessBackend(workers=2).run(_synthetic, []) == []

    def test_chunk_size_resolution(self):
        backend = ProcessBackend(workers=4)
        assert backend.resolve_chunk_size(64) == 4
        assert backend.resolve_chunk_size(1) == 1
        assert ProcessBackend(workers=4, chunk_size=9).resolve_chunk_size(64) == 9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReproError):
            ProcessBackend(workers=0)
        with pytest.raises(ReproError):
            ProcessBackend(chunk_size=0)

    def test_resolve_backend_passthrough(self):
        backend = ProcessBackend(workers=2)
        assert resolve_backend(backend) is backend
        assert resolve_backend("serial").name == "serial"

    def test_worker_exception_propagates(self):
        def broken(point):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            ProcessBackend(workers=2).run(broken, [{"a": 1.0}])

    def test_worker_global_restored_after_evaluator_exception(self):
        # Regression: a failing evaluator must not leave the module
        # global behind, or a second engine in the same process would
        # cross-wire onto the first engine's evaluator.
        from repro.exec import backends as backends_module

        def broken(point):
            raise ValueError("boom")

        assert backends_module._WORKER_EVALUATE is None
        with pytest.raises(ValueError):
            ProcessBackend(workers=2).run(broken, [{"a": 1.0}, {"a": 2.0}])
        assert backends_module._WORKER_EVALUATE is None
        # A fresh backend with a different evaluator works unpolluted.
        results = ProcessBackend(workers=2).run(
            _synthetic, [{"a": 0.5, "b": 1.0}]
        )
        assert results[0][0] == _synthetic({"a": 0.5, "b": 1.0})

    def test_nested_engines_do_not_cross_wire_evaluators(self):
        # Two engines interleaving process batches in one process:
        # each run scopes the global to itself and restores the
        # previous value, so the outer engine's evaluator survives an
        # inner engine's batch (even a failing one).
        def evaluate_a(point):
            return {"y": point["a"] * 2.0}

        def evaluate_b(point):
            return {"y": point["a"] * 100.0}

        backend = ProcessBackend(workers=2)
        first = backend.run(evaluate_a, [{"a": 1.0}])
        with pytest.raises(ValueError):
            backend.run(
                lambda p: (_ for _ in ()).throw(ValueError("boom")),
                [{"a": 1.0}],
            )
        second = backend.run(evaluate_b, [{"a": 1.0}])
        third = backend.run(evaluate_a, [{"a": 1.0}])
        assert first[0][0] == {"y": 2.0}
        assert second[0][0] == {"y": 100.0}
        assert third[0][0] == {"y": 2.0}


class TestThreadBackend:
    def test_engine_routes_through_thread_backend(self):
        engine = EvaluationEngine(
            _synthetic, backend="thread", cache=True, workers=3
        )
        points = [{"a": float(i) / 5.0, "b": 1.0 + i} for i in range(7)]
        out = engine.map_points(points)
        assert [e.responses for e in out] == [_synthetic(p) for p in points]
        assert engine.stats()["backend"] == "thread"
        assert engine.stats()["workers"] == 3
        engine.close()

    def test_submit_is_asynchronous_and_drain_collects(self):
        import threading

        from repro.exec import ThreadBackend

        gate = threading.Event()

        def gated(point):
            gate.wait(timeout=10.0)
            return _synthetic(point)

        backend = ThreadBackend(workers=2)
        handle = backend.submit(gated, [{"a": 0.1, "b": 1.0}])
        # The batch is genuinely in flight, not eagerly completed.
        assert not handle.done()
        gate.set()
        backend.drain()
        assert handle.done()
        assert handle.result()[0][0] == _synthetic({"a": 0.1, "b": 1.0})
        backend.close()
        # close() is idempotent and the executor rebuilds on reuse.
        backend.close()
        assert backend.run(_synthetic, [{"a": 0.2, "b": 1.0}])
        backend.close()

    def test_invalid_workers_rejected(self):
        from repro.exec import ThreadBackend

        with pytest.raises(ReproError):
            ThreadBackend(workers=0)

    def test_drain_propagates_error_of_unread_failed_batch(self):
        # A failed batch is done() the moment its futures complete,
        # but its error has not surfaced until result() — submitting
        # another batch must not make the backend forget it, or
        # drain() would swallow the exception it owes its caller.
        from repro.exec import ThreadBackend

        def broken(point):
            raise ValueError("boom")

        backend = ThreadBackend(workers=2)
        failed = backend.submit(broken, [{"a": 0.1, "b": 1.0}])
        deadline = __import__("time").monotonic() + 10.0
        while not failed.done():
            assert __import__("time").monotonic() < deadline
        backend.submit(_synthetic, [{"a": 0.2, "b": 1.0}])
        with pytest.raises(ValueError, match="boom"):
            backend.drain()
        backend.close()


class TestExplorerThroughEngine:
    def test_run_design_records_exec_stats(self):
        engine = EvaluationEngine(_synthetic, backend="serial", cache=True)
        explorer = DesignExplorer(
            _space(), _synthetic, ["y1", "y2"], engine=engine
        )
        design = central_composite(2, alpha="face", n_center=3)
        result = explorer.run_design(design)
        assert result.exec_stats["backend"] == "serial"
        # The three centre replicates collapse onto one simulation.
        assert result.exec_stats["points_evaluated"] == design.n_runs - 2
        assert result.exec_stats["replicate_hits"] == 2
        assert np.count_nonzero(result.run_seconds == 0.0) >= 2

    def test_rerun_is_fully_cached_and_identical(self):
        engine = EvaluationEngine(_synthetic, backend="serial", cache=True)
        explorer = DesignExplorer(
            _space(), _synthetic, ["y1", "y2"], engine=engine
        )
        design = latin_hypercube(8, 2, seed=3)
        first = explorer.run_design(design)
        evaluated_before = engine.points_evaluated
        second = explorer.run_design(design)
        assert engine.points_evaluated == evaluated_before
        for name in ("y1", "y2"):
            assert np.array_equal(first.responses[name], second.responses[name])
        assert np.all(second.run_seconds == 0.0)

    def test_default_engine_preserves_legacy_semantics(self):
        calls = []

        def evaluate(point):
            calls.append(1)
            return _synthetic(point)

        explorer = DesignExplorer(_space(), evaluate, ["y1", "y2"])
        design = central_composite(2, alpha="face", n_center=3)
        explorer.run_design(design)
        assert len(calls) == design.n_runs  # replicates re-evaluated


def _retune_config():
    return SystemConfig(
        harvester=TunableHarvester(),
        power=build_bridge_circuit(Supercapacitor(capacitance=0.1)),
        regulator=Regulator(),
        node=None,
        controller=None,
        vibration=SineVibration(0.6, 67.0),
        pretune=True,
    )


class TestStateSpaceCacheBound:
    def test_retune_churn_stays_bounded(self):
        engine = LinearizedStateSpaceEngine(
            SystemModel(_retune_config()), 1e-4
        )
        law = engine.system.harvester.tuning
        gaps = np.linspace(law.gap_min, law.gap_max, 120)
        for gap in gaps:
            engine.set_gap(float(gap))
            engine.step_to(engine.time + 5e-4)
        assert engine.cache_size() <= _CACHE_MAX_ENTRIES
        assert engine.stats.extra.get("cache_evictions", 0) > 0

    def test_hot_path_reuses_entries(self):
        engine = LinearizedStateSpaceEngine(
            SystemModel(_retune_config()), 1e-4
        )
        engine.step_to(0.05)
        builds_early = engine.stats.n_matrix_builds
        steps_early = engine.stats.n_steps
        engine.step_to(0.10)
        # Full-step updates come from the LRU; the only rebuilds left
        # are the uncacheable fractional steps at mode crossings.
        delta_builds = engine.stats.n_matrix_builds - builds_early
        delta_steps = engine.stats.n_steps - steps_early
        assert delta_builds < delta_steps / 3


class TestTraceRecorderFastPath:
    def test_offer_row_matches_offer(self):
        slow = TraceRecorder(["a", "b"], record_dt=0.0)
        fast = TraceRecorder(["a", "b"], record_dt=0.0)
        for i in range(5):
            t = 0.1 * i
            slow.offer(t, {"a": float(i), "b": -float(i)})
            fast.offer_row(t, (float(i), -float(i)))
        for name in ("t", "a", "b"):
            assert np.array_equal(slow.as_arrays()[name], fast.as_arrays()[name])

    def test_offer_row_decimates(self):
        rec = TraceRecorder(["v"], record_dt=0.5)
        assert rec.offer_row(0.0, (1.0,))
        assert not rec.offer_row(0.2, (2.0,))
        assert rec.offer_row(0.2, (2.0,), force=True)

    def test_offer_row_validates(self):
        rec = TraceRecorder(["a", "b"])
        with pytest.raises(SimulationError):
            rec.offer_row(0.0, (1.0,), force=True)
        rec.offer_row(1.0, (1.0, 2.0), force=True)
        with pytest.raises(SimulationError):
            rec.offer_row(0.5, (1.0, 2.0), force=True)


@pytest.fixture(scope="module")
def small_toolkit_space():
    return DesignSpace(
        [
            Factor("capacitance", 0.10, 1.00, units="F"),
            Factor("tx_interval", 2.0, 60.0, transform="log", units="s"),
        ]
    )


class TestToolkitExecution:
    """Real-simulator checks (small space, short missions)."""

    def test_serial_process_identical_on_real_evaluator(
        self, small_toolkit_space
    ):
        clear_charging_cache()
        toolkit = SensorNodeDesignToolkit(
            space=small_toolkit_space,
            mission_time=120.0,
            envelope=FAST_ENVELOPE,
            cache=False,
        )
        design = latin_hypercube(6, 2, seed=11)
        serial_result = toolkit.explorer.run_design(design)
        # Forked workers inherit the now-warm charging-map grids, so
        # both backends interpolate the same tables.
        process_explorer = DesignExplorer(
            toolkit.space,
            toolkit.evaluate_point,
            toolkit.responses,
            engine=EvaluationEngine(
                toolkit.evaluate_point,
                backend="process",
                cache=False,
                workers=2,
            ),
        )
        process_result = process_explorer.run_design(design)
        for name in toolkit.responses:
            assert np.array_equal(
                serial_result.responses[name], process_result.responses[name]
            ), name

    def test_repeated_study_hits_cache(self, small_toolkit_space):
        clear_charging_cache()
        toolkit = SensorNodeDesignToolkit(
            space=small_toolkit_space,
            mission_time=120.0,
            envelope=FAST_ENVELOPE,
        )
        first = toolkit.run_study(design="ccd", validate_points=4)
        stats_before = toolkit.exec_engine.cache.stats
        hits_before = stats_before.hits
        lookups_before = stats_before.lookups
        second = toolkit.run_study(design="ccd", validate_points=4)
        stats_after = toolkit.exec_engine.cache.stats
        new_lookups = stats_after.lookups - lookups_before
        new_hits = stats_after.hits - hits_before
        assert new_lookups > 0
        # Every previously-seen point must come from the cache.
        assert new_hits / new_lookups >= 0.90
        for name in toolkit.responses:
            assert np.array_equal(
                first.exploration.responses[name],
                second.exploration.responses[name],
            )
        # meta["exec"] is a per-study delta: the second study is pure
        # cache traffic and must not inherit the first study's
        # simulated points; lifetime totals live in exec_lifetime.
        assert first.meta["exec"]["points_evaluated"] > 0
        assert second.meta["exec"]["points_evaluated"] == 0
        assert second.meta["exec"]["cache"]["hit_rate"] == 1.0
        assert second.meta["exec_lifetime"]["points_evaluated"] == (
            first.meta["exec"]["points_evaluated"]
        )
        report = second.report()
        assert "== evaluation backend ==" in report
        assert "evaluation cache" in report

    def test_prewarm_populates_eval_cache(self, small_toolkit_space):
        toolkit = SensorNodeDesignToolkit(
            space=small_toolkit_space,
            mission_time=120.0,
            envelope=FAST_ENVELOPE,
        )
        toolkit.prewarm()
        assert len(toolkit.exec_engine.cache) == 1
        # Prewarming exists for its side effect (warm process-global
        # charging maps in the parent), so a second call — or a call
        # against a cache persisted by some other process — must
        # re-evaluate rather than return early on the cache hit.
        toolkit.prewarm()
        assert toolkit.exec_engine.points_evaluated == 2
        assert len(toolkit.exec_engine.cache) == 1

    def test_batch_evaluate_matches_per_point(self, small_toolkit_space):
        toolkit = SensorNodeDesignToolkit(
            space=small_toolkit_space,
            mission_time=120.0,
            envelope=FAST_ENVELOPE,
            cache=False,
        )
        points = [
            {"capacitance": 0.4, "tx_interval": 10.0},
            {"capacitance": 0.7, "tx_interval": 4.0},
        ]
        single = [toolkit.evaluate_point(p) for p in points]
        batched = toolkit.evaluate_points(points)
        assert single == batched

    def test_distributed_study_matches_serial_bitwise(
        self, small_toolkit_space, tmp_path
    ):
        # The tentpole acceptance property at toolkit level: a study
        # run through the distributed backend (cooperate mode — the
        # submitter is its own worker) is bit-identical to serial,
        # and a second toolkit over the same substrate re-simulates
        # nothing.
        clear_charging_cache()
        serial = SensorNodeDesignToolkit(
            space=small_toolkit_space,
            mission_time=120.0,
            envelope=FAST_ENVELOPE,
            cache=False,
        )
        design = latin_hypercube(5, 2, seed=17)
        serial_result = serial.explorer.run_design(design)
        substrate = str(tmp_path / "dist-evals.sqlite")
        distributed = SensorNodeDesignToolkit(
            space=small_toolkit_space,
            mission_time=120.0,
            envelope=FAST_ENVELOPE,
            backend="distributed",
            cache_dir=substrate,
        )
        dist_result = distributed.explorer.run_design(design)
        for name in serial.responses:
            assert np.array_equal(
                serial_result.responses[name], dist_result.responses[name]
            ), name
        assert dist_result.exec_stats["backend"] == "distributed"
        distributed.close()
        # Fresh toolkit, same path: the whole design answers from the
        # shared store with zero simulations.
        warm = SensorNodeDesignToolkit(
            space=small_toolkit_space,
            mission_time=120.0,
            envelope=FAST_ENVELOPE,
            backend="distributed",
            cache_dir=substrate,
        )
        warm_result = warm.explorer.run_design(design)
        assert warm_result.exec_stats["points_evaluated"] == 0
        assert warm_result.exec_stats["cache"]["hit_rate"] == 1.0
        warm.close()

    def test_distributed_requires_a_persistent_store(
        self, small_toolkit_space
    ):
        with pytest.raises(ReproError):
            SensorNodeDesignToolkit(
                space=small_toolkit_space,
                mission_time=120.0,
                envelope=FAST_ENVELOPE,
                backend="distributed",  # no cache_dir/cache_store
            )

    def test_batch_respects_custom_harvester(self, small_toolkit_space):
        from repro.harvester.parameters import MicrogeneratorParameters
        from repro.harvester.tuning import TunableHarvester

        custom = TunableHarvester(
            params=MicrogeneratorParameters(transduction_factor=25.0)
        )
        toolkit = SensorNodeDesignToolkit(
            space=small_toolkit_space,
            mission_time=120.0,
            envelope=FAST_ENVELOPE,
            cache=False,
            system_kwargs={"harvester": custom},
        )
        point = {"capacitance": 0.4, "tx_interval": 10.0}
        # The batched path must not swap the custom device for the
        # shared default one.
        assert toolkit.evaluate_points([point]) == [
            toolkit.evaluate_point(point)
        ]
