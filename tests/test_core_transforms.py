"""Response transforms and transformed surfaces."""

import numpy as np
import pytest

from repro.core.doe import latin_hypercube
from repro.core.explorer import DesignExplorer
from repro.core.factors import DesignSpace, Factor
from repro.core.rsm import ModelSpec, fit_response_surface
from repro.core.rsm.transforms import TransformedSurface, forward_transform
from repro.errors import FitError


class TestForwardTransform:
    def test_identity(self):
        y = np.array([1.0, -2.0, 3.0])
        assert np.array_equal(forward_transform("identity", y), y)

    def test_log1p(self):
        y = np.array([0.0, np.e - 1.0])
        out = forward_transform("log1p", y)
        assert out == pytest.approx([0.0, 1.0])

    def test_log1p_rejects_negative(self):
        with pytest.raises(FitError):
            forward_transform("log1p", np.array([-0.1]))

    def test_unknown_rejected(self):
        with pytest.raises(FitError):
            forward_transform("boxcox", np.array([1.0]))


class TestTransformedSurface:
    def _make(self):
        # y = exp(2 x1 - x2 + 2) is a disaster for a raw quadratic but
        # a near-perfect fit in log space (the +2 keeps y >> 1 so
        # log1p ~ log and the transformed response is exactly
        # quadratic).
        x = latin_hypercube(40, 2, seed=30).matrix
        y = np.exp(2.0 * x[:, 0] - x[:, 1] + 2.0)
        base = fit_response_surface(
            x, np.log1p(y), ModelSpec.quadratic(2)
        )
        return TransformedSurface(base, "log1p"), x, y

    def test_predicts_in_original_units(self):
        # log1p deviates from a pure log at the small-y corner, so the
        # fit is near-exact in the bulk and ~20 % at that corner.
        surface, x, y = self._make()
        pred = surface.predict(x)
        rel = np.abs(pred - y) / np.abs(y)
        assert np.median(rel) < 0.05
        assert np.max(rel) < 0.30

    def test_never_negative(self):
        surface, _, _ = self._make()
        grid = np.random.default_rng(1).uniform(-1, 1, (200, 2))
        assert np.all(surface.predict(grid) >= 0.0)

    def test_beats_raw_quadratic(self):
        surface, x, y = self._make()
        raw = fit_response_surface(x, y, ModelSpec.quadratic(2))
        grid = latin_hypercube(30, 2, seed=31).matrix
        truth = np.exp(2.0 * grid[:, 0] - grid[:, 1] + 2.0)
        err_t = np.sqrt(np.mean((surface.predict(grid) - truth) ** 2))
        err_r = np.sqrt(np.mean((raw.predict(grid) - truth) ** 2))
        assert err_t < 0.5 * err_r

    def test_exposes_base_and_stats(self):
        surface, _, _ = self._make()
        assert surface.k == 2
        assert surface.stats.r_squared > 0.99
        assert "log1p" in surface.summary()

    def test_invalid_transform_rejected(self):
        surface, _, _ = self._make()
        with pytest.raises(FitError):
            TransformedSurface(surface.base, "sqrt")


class TestExplorerTransforms:
    def test_fit_surfaces_with_transform(self):
        space = DesignSpace([Factor("a", 0, 1), Factor("b", 0, 1)])

        def evaluate(point):
            return {"y": np.exp(3.0 * point["a"])}

        explorer = DesignExplorer(space, evaluate, ["y"])
        result = explorer.run_design(latin_hypercube(25, 2, seed=7))
        surfaces = explorer.fit_surfaces(
            result, transforms={"y": "log1p"}
        )
        assert isinstance(surfaces["y"], TransformedSurface)
        # ANOVA works through the wrapper.
        tables = explorer.anova(surfaces)
        assert tables["y"].row("model").p_value < 0.01

    def test_unknown_response_transform_rejected(self):
        space = DesignSpace([Factor("a", 0, 1)])
        explorer = DesignExplorer(space, lambda p: {"y": 1.0}, ["y"])
        result = explorer.run_design(latin_hypercube(5, 1, seed=2))
        with pytest.raises(FitError):
            explorer.fit_surfaces(result, transforms={"zzz": "log1p"})
