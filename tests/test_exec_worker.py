"""The ``repro-worker`` loop and CLI.

In-process tests drive :class:`repro.exec.worker.Worker` and
:func:`repro.exec.worker.main` directly (fast, coverage-friendly);
the subprocess tests start *real* ``python -m repro.exec.worker``
processes against a shared substrate — including one that is
SIGKILLed mid-lease to prove reclamation hands its points to the
survivor with nothing lost.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from backend_contract import make_points, synthetic_evaluate

from repro.errors import ReproError
from repro.exec import (
    DistributedBackend,
    FaultPlan,
    FaultSpec,
    FaultyStore,
    FileStore,
    Job,
    SQLiteStore,
    Worker,
    queue_for_store,
)
from repro.exec.worker import (
    EXIT_CRASH_LOOP,
    EXIT_EVALUATOR_CONFIG,
    Supervisor,
    _child_argv,
    load_evaluator,
    main,
)

TESTS_DIR = Path(__file__).resolve().parent
SRC_DIR = TESTS_DIR.parent / "src"


def _jobs(n=6):
    return [
        Job(f"fp{i:02d}", point)
        for i, point in enumerate(make_points(n))
    ]


def _substrate(tmp_path, kind="sqlite"):
    if kind == "sqlite":
        store = SQLiteStore(tmp_path / "evals.sqlite")
    else:
        store = FileStore(tmp_path / "evals")
    return store, queue_for_store(store)


class TestLoadEvaluator:
    def test_plain_factory(self):
        evaluate, batch = load_evaluator(
            "worker_eval_fixtures:make_synthetic"
        )
        assert batch is None
        point = make_points(1)[0]
        assert evaluate(point) == synthetic_evaluate(point)

    def test_toolkit_shaped_factory(self):
        evaluate, batch = load_evaluator("worker_eval_fixtures:make_batched")
        assert batch is not None
        point = make_points(1)[0]
        assert evaluate(point) == synthetic_evaluate(point)
        [(responses, seconds)] = batch([point])
        assert responses == synthetic_evaluate(point)
        assert seconds >= 0.0

    @pytest.mark.parametrize(
        "spec",
        [
            "not-a-spec",
            "worker_eval_fixtures:absent",
            "no_such_module_xyz:factory",
            "worker_eval_fixtures:_synthetic",  # evaluator, not factory
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises((ReproError, TypeError)):
            load_evaluator(spec)


class TestWorkerLoop:
    @pytest.mark.parametrize("kind", ["sqlite", "file"])
    def test_drains_queue_and_publishes(self, kind, tmp_path):
        store, queue = _substrate(tmp_path, kind)
        jobs = _jobs(6)
        queue.submit(jobs)
        worker = Worker(
            store, queue, synthetic_evaluate, drain=True, batch=2
        )
        report = worker.run()
        assert report.jobs_completed == 6
        assert report.jobs_failed == 0
        assert report.leases == 3
        stats = queue.stats()
        assert stats.done == 6 and stats.outstanding == 0
        for job in jobs:
            assert store.peek(job.job_id) == synthetic_evaluate(job.point)

    def test_max_jobs_bounds_the_run(self, tmp_path):
        store, queue = _substrate(tmp_path)
        queue.submit(_jobs(6))
        report = Worker(
            store, queue, synthetic_evaluate, max_jobs=3, batch=1
        ).run()
        assert report.jobs_completed == 3
        assert queue.stats().pending == 3

    def test_idle_timeout_expires_on_an_empty_queue(self, tmp_path):
        store, queue = _substrate(tmp_path)
        started = time.perf_counter()
        report = Worker(
            store,
            queue,
            synthetic_evaluate,
            idle_timeout=0.2,
            poll_interval=0.02,
        ).run()
        assert report.jobs_completed == 0
        assert 0.15 < time.perf_counter() - started < 5.0

    def test_drain_with_idle_timeout_waits_for_work(self, tmp_path):
        # A worker started before the submitter must not mistake a
        # not-yet-fed queue for a drained one.
        import threading

        store, queue = _substrate(tmp_path)

        def feed_late():
            time.sleep(0.15)
            queue_for_store(store).submit(_jobs(2))

        thread = threading.Thread(target=feed_late)
        thread.start()
        report = Worker(
            store,
            queue,
            synthetic_evaluate,
            drain=True,
            idle_timeout=5.0,
            poll_interval=0.02,
        ).run()
        thread.join()
        assert report.jobs_completed == 2

    def test_evaluator_failure_fails_the_lease(self, tmp_path):
        store, queue = _substrate(tmp_path)
        queue.submit(_jobs(2))

        def broken(point):
            raise ValueError("synthetic failure")

        report = Worker(
            store, queue, broken, drain=True, batch=2
        ).run()
        # max_attempts leases, every one failing, then terminal.
        assert report.jobs_completed == 0
        assert report.jobs_failed == 2 * queue.max_attempts
        stats = queue.stats()
        assert stats.failed == 2 and stats.outstanding == 0
        assert queue.job("fp00").error == "synthetic failure"

    def test_poison_point_does_not_fail_its_batch_mates(self, tmp_path):
        # One always-failing point leased alongside a good one: the
        # batch falls back to per-job evaluation, the good point
        # completes, and only the poison one fails terminally.
        store, queue = _substrate(tmp_path)
        jobs = _jobs(2)
        queue.submit(jobs)
        poison_id = jobs[0].job_id

        def sometimes(point):
            if point == jobs[0].point:
                raise ValueError("poison")
            return synthetic_evaluate(point)

        report = Worker(
            store, queue, sometimes, drain=True, batch=2
        ).run()
        assert report.jobs_completed == 1
        assert report.jobs_failed == queue.max_attempts
        assert queue.job(poison_id).status == "failed"
        assert queue.job(jobs[1].job_id).status == "done"
        assert store.peek(jobs[1].job_id) == synthetic_evaluate(
            jobs[1].point
        )

    def test_persist_many_failure_falls_back_to_per_entry(self, tmp_path):
        # A dead batched publish must not fail jobs whose results can
        # still land one by one.
        inner = SQLiteStore(tmp_path / "evals.sqlite")
        store = FaultyStore(
            inner,
            FaultPlan([FaultSpec("store", "persist_many", 1, "terminal")]),
        )
        queue = queue_for_store(inner)
        jobs = _jobs(2)
        queue.submit(jobs)
        report = Worker(
            store, queue, synthetic_evaluate, drain=True, batch=2
        ).run()
        assert report.jobs_completed == 2
        assert report.jobs_failed == 0
        assert queue.stats().done == 2
        for job in jobs:
            assert inner.peek(job.job_id) == synthetic_evaluate(job.point)

    def test_unlandable_result_fails_only_its_own_job(self, tmp_path):
        # Batched publish dead AND one per-entry persist dead: the
        # healthy result completes, the stuck job goes back to
        # pending and heals on the next lease.
        inner = SQLiteStore(tmp_path / "evals.sqlite")
        store = FaultyStore(
            inner,
            FaultPlan(
                [
                    FaultSpec("store", "persist_many", 1, "terminal"),
                    FaultSpec("store", "persist", 1, "terminal"),
                ]
            ),
        )
        queue = queue_for_store(inner)
        jobs = _jobs(2)
        queue.submit(jobs)
        report = Worker(
            store, queue, synthetic_evaluate, drain=True, batch=2
        ).run()
        # One failed attempt recorded; on the re-lease the batched
        # store read finds the half-batch the faulted persist_many
        # left behind and the job resolves as a skip — the store is
        # authoritative, nothing is evaluated or published twice.
        assert report.jobs_failed == 1
        assert report.jobs_completed + report.jobs_skipped == 2
        stats = queue.stats()
        assert stats.done == 2 and stats.failed == 0
        for job in jobs:
            assert inner.peek(job.job_id) == synthetic_evaluate(job.point)

    def test_drain_waits_despite_finished_rows_from_older_studies(
        self, tmp_path
    ):
        # A long-lived substrate holds yesterday's done rows; a
        # worker started before today's submitter must still wait
        # out its idle timeout for the new work.
        import threading

        store, queue = _substrate(tmp_path)
        queue.submit(_jobs(1))
        queue.lease("old-worker", n=1)
        queue.complete("old-worker", "fp00")  # stale history

        def feed_late():
            time.sleep(0.15)
            queue_for_store(store).submit(
                [Job("fresh", make_points(1)[0])]
            )

        thread = threading.Thread(target=feed_late)
        thread.start()
        report = Worker(
            store,
            queue,
            synthetic_evaluate,
            drain=True,
            idle_timeout=5.0,
            poll_interval=0.02,
        ).run()
        thread.join()
        assert report.jobs_completed == 1
        assert queue.job("fresh").status == "done"

    def test_batched_path_matches_per_point(self, tmp_path):
        store, queue = _substrate(tmp_path)
        jobs = _jobs(4)
        queue.submit(jobs)

        def batch(points):
            out = []
            for point in points:
                out.append((synthetic_evaluate(point), 0.125))
            return out

        report = Worker(
            store,
            queue,
            synthetic_evaluate,
            batch_evaluate=batch,
            drain=True,
            batch=4,
        ).run()
        assert report.jobs_completed == 4
        assert report.eval_seconds == pytest.approx(0.5)
        for job in jobs:
            assert store.peek(job.job_id) == synthetic_evaluate(job.point)

    def test_bad_batch_rejected(self, tmp_path):
        store, queue = _substrate(tmp_path)
        with pytest.raises(ReproError):
            Worker(store, queue, synthetic_evaluate, batch=0)


class _EpochClock:
    """A settable ``time.time`` stand-in anchored to real epoch time."""

    def __init__(self):
        self._now = time.time()

    def now(self):
        return self._now

    def advance(self, seconds):
        self._now += seconds


class TestLeaseHeartbeat:
    """A working worker's leases must outlive a slow batch.

    Regression: jobs were completed only at batch end with no
    heartbeat in between, so a batch slower than the lease TTL was
    reclaimed mid-flight — a second worker re-leased and re-evaluated
    points the first worker was actively integrating.
    """

    def test_lease_survives_batch_slower_than_ttl(self, tmp_path):
        store, queue = _substrate(tmp_path)
        jobs = _jobs(4)
        queue.submit(jobs)
        ttl = 10.0
        clock = _EpochClock()
        stolen = []

        def slow_batch(points, progress=None):
            # Each point takes 0.6 TTL: the whole batch takes 2.4x
            # the TTL.  A rival tries to lease after every point;
            # with heartbeats riding the progress hook it must never
            # get anything.
            out = []
            for point in points:
                clock.advance(0.6 * ttl)
                if progress is not None:
                    progress()
                stolen.extend(
                    queue.lease(
                        "rival", n=8, lease_seconds=ttl, now=clock.now()
                    )
                )
                out.append((synthetic_evaluate(point), 0.0))
            return out

        report = Worker(
            store,
            queue,
            synthetic_evaluate,
            batch_evaluate=slow_batch,
            batch=4,
            lease_seconds=ttl,
            clock=clock.now,
            max_jobs=4,
        ).run()
        assert stolen == []
        assert report.jobs_completed == 4
        for job in jobs:
            record = queue.job(job.job_id)
            assert record.status == "done"
            assert record.attempts == 1

    def test_per_point_path_heartbeats_between_points(self, tmp_path):
        store, queue = _substrate(tmp_path)
        jobs = _jobs(3)
        queue.submit(jobs)
        ttl = 10.0
        clock = _EpochClock()

        def slow_evaluate(point):
            clock.advance(0.6 * ttl)
            return synthetic_evaluate(point)

        report = Worker(
            store,
            queue,
            slow_evaluate,
            batch=3,
            lease_seconds=ttl,
            clock=clock.now,
            max_jobs=3,
        ).run()
        assert report.jobs_completed == 3
        for job in jobs:
            record = queue.job(job.job_id)
            assert record.status == "done"
            assert record.attempts == 1

    def test_heartbeat_is_throttled(self, tmp_path):
        store, queue = _substrate(tmp_path)
        queue.submit(_jobs(4))
        clock = _EpochClock()
        beats = []
        real_heartbeat = queue.heartbeat

        def counting_heartbeat(*args, **kwargs):
            beats.append(kwargs.get("now"))
            return real_heartbeat(*args, **kwargs)

        queue.heartbeat = counting_heartbeat
        Worker(
            store,
            queue,
            synthetic_evaluate,
            batch=4,
            lease_seconds=60.0,
            clock=clock.now,
            max_jobs=4,
        ).run()
        # Four instant points, fresh lease: no interval ever elapses.
        assert beats == []


class TestThrottleBeforeLease:
    """``--throttle`` must sleep *before* leasing, not after.

    Regression: the sleep sat between ``lease()`` and the evaluation,
    burning lease TTL doing nothing — with a throttle longer than the
    TTL, every lease expired before its batch started and rival
    workers (or the reclaimer) stole jobs from a perfectly healthy
    worker.
    """

    def test_throttled_leases_are_never_reclaimed(self, tmp_path):
        store, queue = _substrate(tmp_path)
        jobs = _jobs(2)
        queue.submit(jobs)
        ttl = 0.5
        stolen = []

        def spying_evaluate(point):
            # Runs right after the lease.  Had the 0.8s throttle
            # burned the 0.5s TTL first, this rival lease would
            # reclaim the whole batch.
            stolen.extend(
                queue.lease("rival", n=8, lease_seconds=60.0)
            )
            return synthetic_evaluate(point)

        report = Worker(
            store,
            queue,
            spying_evaluate,
            batch=2,
            lease_seconds=ttl,
            throttle=0.8,
            max_jobs=2,
        ).run()
        assert stolen == []
        assert report.jobs_completed == 2
        for job in jobs:
            record = queue.job(job.job_id)
            assert record.status == "done"
            assert record.attempts == 1


class TestWorkerCli:
    def test_main_drains_in_process(self, tmp_path, capsys):
        store, queue = _substrate(tmp_path)
        queue.submit(_jobs(3))
        store.close()
        queue.close()
        rc = main(
            [
                str(tmp_path / "evals.sqlite"),
                "--evaluator",
                "worker_eval_fixtures:make_synthetic",
                "--drain",
                "--batch",
                "2",
                "--json",
            ]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["jobs_completed"] == 3
        fresh = SQLiteStore(tmp_path / "evals.sqlite")
        assert len(fresh) == 3
        fresh.close()

    def test_main_human_output_and_worker_id(self, tmp_path, capsys):
        store, queue = _substrate(tmp_path, "file")
        queue.submit(_jobs(1))
        rc = main(
            [
                str(tmp_path / "evals"),
                "--evaluator",
                "worker_eval_fixtures:make_batched",
                "--drain",
                "--worker-id",
                "w-test",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "w-test completed 1 jobs" in out
        assert queue_for_store(store).job("fp00").worker_id == "w-test"

    def test_main_separate_queue_path(self, tmp_path, capsys):
        from repro.exec import FileWorkQueue

        queue = FileWorkQueue(tmp_path / "standalone-queue")
        queue.submit(_jobs(2))
        rc = main(
            [
                str(tmp_path / "evals.sqlite"),
                "--evaluator",
                "worker_eval_fixtures:make_synthetic",
                "--queue",
                str(tmp_path / "standalone-queue"),
                "--drain",
                "--json",
            ]
        )
        assert rc == 0
        # --queue on a directory resolves its .queue/ subdirectory —
        # the same convention submitters use for store directories.
        inner = FileWorkQueue(tmp_path / "standalone-queue" / ".queue")
        assert inner.stats().done == 0
        report = json.loads(capsys.readouterr().out)
        assert report["jobs_completed"] == 0

    def test_main_bad_evaluator_is_an_operator_error(self, tmp_path, capsys):
        rc = main(
            [
                str(tmp_path / "evals.sqlite"),
                "--evaluator",
                "no_such_module_xyz:factory",
            ]
        )
        # Config errors get their own exit code and a one-line
        # structured reason, so supervisors never restart-loop a
        # worker that can never start.
        assert rc == EXIT_EVALUATOR_CONFIG
        err = capsys.readouterr().err
        assert "repro-worker:" in err
        line = err.splitlines()[0]
        payload = json.loads(line.split("repro-worker: ", 1)[1])
        assert payload["error"] == "evaluator-config"
        assert "no_such_module_xyz" in payload["reason"]


def _spawn_worker(store_path, *extra, evaluator="make_synthetic"):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR), str(TESTS_DIR)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.exec.worker",
            str(store_path),
            "--evaluator",
            f"worker_eval_fixtures:{evaluator}",
            "--json",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class TestWorkerSubprocess:
    def test_two_real_workers_drain_one_queue(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        store = SQLiteStore(path)
        queue = queue_for_store(store)
        jobs = _jobs(8)
        queue.submit(jobs)
        workers = [
            _spawn_worker(path, "--drain", "--batch", "1", "--poll", "0.05")
            for _ in range(2)
        ]
        reports = []
        for proc in workers:
            out, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err
            reports.append(json.loads(out))
        assert sum(r["jobs_completed"] for r in reports) == 8
        stats = queue.stats()
        assert stats.done == 8 and stats.outstanding == 0
        for job in jobs:
            assert store.peek(job.job_id) == synthetic_evaluate(job.point)
        queue.close()
        store.close()

    def test_sigkilled_worker_is_reclaimed_by_survivor(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        store = SQLiteStore(path)
        queue = queue_for_store(store)
        jobs = _jobs(4)
        queue.submit(jobs)
        # The victim leases with a short TTL and an evaluator that
        # sleeps far past it; SIGKILL leaves its leases orphaned.
        victim = _spawn_worker(
            path,
            "--batch",
            "2",
            "--lease-seconds",
            "1",
            "--poll",
            "0.05",
            evaluator="make_slow",
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if queue.stats().leased > 0:
                break
            time.sleep(0.05)
        else:
            victim.kill()
            pytest.fail("victim worker never leased")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10)
        # The survivor drains everything, reclaimed leases included.
        survivor = _spawn_worker(
            path,
            "--drain",
            "--batch",
            "1",
            "--poll",
            "0.05",
            "--idle-timeout",
            "30",
        )
        out, err = survivor.communicate(timeout=60)
        assert survivor.returncode == 0, err
        report = json.loads(out)
        assert report["jobs_completed"] == 4
        stats = queue.stats()
        assert stats.done == 4 and stats.outstanding == 0
        # Nothing lost: every point's responses are in the store,
        # bit-identical to an in-process evaluation.
        for job in jobs:
            assert store.peek(job.job_id) == synthetic_evaluate(job.point)
        records = [queue.job(job.job_id) for job in jobs]
        assert any(record.attempts >= 2 for record in records)
        queue.close()
        store.close()

    def test_distributed_submitter_with_external_worker(self, tmp_path):
        # cooperate=False: the submitting backend waits purely on a
        # real repro-worker process.
        path = tmp_path / "evals.sqlite"
        worker = _spawn_worker(
            path,
            "--drain",
            "--idle-timeout",
            "30",
            "--poll",
            "0.05",
        )
        store = SQLiteStore(path)
        backend = DistributedBackend(
            store, cooperate=False, poll_interval=0.05, timeout=60.0
        )
        points = make_points(5)
        try:
            results = backend.run(
                synthetic_evaluate,
                points,
                fingerprints=[f"ext{i}" for i in range(5)],
            )
        finally:
            out, err = worker.communicate(timeout=60)
        assert worker.returncode == 0, err
        assert json.loads(out)["jobs_completed"] == 5
        for point, (responses, _) in zip(points, results):
            assert responses == synthetic_evaluate(point)
        backend.close()
        store.close()


class _FakeProc:
    """A poll()/terminate() stand-in for a worker child process."""

    def __init__(self, codes):
        # ``codes``: successive poll() results; the last one repeats.
        self._codes = list(codes)
        self.terminated = False

    def poll(self):
        if self.terminated:
            return -signal.SIGTERM
        if len(self._codes) > 1:
            return self._codes.pop(0)
        return self._codes[0]

    def terminate(self):
        self.terminated = True


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestSupervisor:
    def _supervisor(self, spawn, workers=1, **kw):
        clock = _FakeClock()
        sleeps = []

        def sleep(dt):
            sleeps.append(dt)
            clock.advance(dt)

        events = []
        sup = Supervisor(
            spawn,
            workers,
            clock=clock,
            sleep=sleep,
            on_event=events.append,
            **kw,
        )
        return sup, clock, sleeps, events

    def test_validation(self):
        with pytest.raises(ReproError):
            Supervisor(lambda i: _FakeProc([0]), 0)
        with pytest.raises(ReproError):
            Supervisor(lambda i: _FakeProc([0]), 1, max_restarts=-1)

    def test_clean_fleet_drains_without_restarts(self):
        sup, _, _, events = self._supervisor(
            lambda i: _FakeProc([None, 0]), workers=3
        )
        report = sup.run()
        assert report.exit_code == 0
        assert report.restarts == 0
        assert report.reason == ""
        assert events[-1]["event"] == "drained"

    def test_crashed_child_is_restarted_with_backoff(self):
        spawned = []

        def spawn(index):
            # First child of the fleet crashes once; its replacement
            # finishes cleanly.
            proc = _FakeProc([1] if not spawned else [0])
            spawned.append(proc)
            return proc

        sup, _, sleeps, events = self._supervisor(spawn, backoff=0.5)
        report = sup.run()
        assert report.exit_code == 0
        assert report.restarts == 1
        assert sleeps[0] == pytest.approx(0.5)  # first-crash backoff
        kinds = [e["event"] for e in events]
        assert "crashed" in kinds and "restarted" in kinds

    def test_backoff_grows_per_recent_crash_and_is_capped(self):
        crashes = 4

        def spawn(index):
            spawn.count += 1
            return _FakeProc([1] if spawn.count <= crashes else [0])

        spawn.count = 0
        sup, _, sleeps, _ = self._supervisor(
            spawn, max_restarts=10, window=1e9, backoff=1.0, backoff_max=3.0
        )
        report = sup.run()
        assert report.restarts == crashes
        backoffs = [s for s in sleeps if s != sup.poll_interval]
        assert backoffs == pytest.approx([1.0, 2.0, 3.0, 3.0])  # capped

    def test_crash_loop_gives_up_with_a_structured_reason(self):
        sup, _, _, _ = self._supervisor(
            lambda i: _FakeProc([1]), max_restarts=2, window=1e9
        )
        report = sup.run()
        assert report.exit_code == EXIT_CRASH_LOOP
        assert report.restarts == 2  # the tolerated ones
        reason = json.loads(report.reason)
        assert reason["error"] == "crash-loop"
        assert reason["restarts"] == 3
        assert reason["last_exit_code"] == 1

    def test_crashes_outside_the_window_are_forgiven(self):
        crashes = 4

        def spawn(index):
            spawn.count += 1
            return _FakeProc([1] if spawn.count <= crashes else [0])

        spawn.count = 0
        # Each backoff sleep advances the fake clock far past the
        # window, so the sliding count never exceeds max_restarts.
        sup, _, _, _ = self._supervisor(
            spawn, max_restarts=1, window=10.0, backoff=100.0,
            backoff_max=100.0,
        )
        report = sup.run()
        assert report.exit_code == 0
        assert report.restarts == crashes

    def test_evaluator_config_exit_stops_the_fleet(self):
        procs = []

        def spawn(index):
            proc = _FakeProc(
                [EXIT_EVALUATOR_CONFIG] if index == 0 else [None]
            )
            procs.append(proc)
            return proc

        sup, _, _, _ = self._supervisor(spawn, workers=3)
        report = sup.run()
        assert report.exit_code == EXIT_EVALUATOR_CONFIG
        assert report.restarts == 0
        reason = json.loads(report.reason)
        assert reason["error"] == "evaluator-config"
        # The healthy siblings were told to stand down.
        assert all(p.terminated for p in procs if p is not procs[0])


class TestChildArgv:
    def test_supervision_flags_are_stripped(self):
        argv = [
            "store.sqlite", "--evaluator", "pkg.mod:make", "--drain",
            "--supervise", "4", "--max-restarts", "7",
            "--restart-window=30", "--worker-id", "parent", "--json",
        ]
        assert _child_argv(argv) == [
            "store.sqlite", "--evaluator", "pkg.mod:make", "--drain",
            "--json",
        ]

    def test_equals_form_is_stripped_too(self):
        argv = ["s", "--supervise=2", "--worker-id=w", "--max-jobs", "5"]
        assert _child_argv(argv) == ["s", "--max-jobs", "5"]


class TestSupervisedCli:
    def test_supervised_fleet_drains_a_real_queue(self, tmp_path, capsys):
        store, queue = _substrate(tmp_path)
        queue.submit(_jobs(6))
        queue.close()
        store.close()
        env_tweak = {"PYTHONPATH": f"{SRC_DIR}{os.pathsep}{TESTS_DIR}"}
        old = os.environ.get("PYTHONPATH")
        os.environ["PYTHONPATH"] = env_tweak["PYTHONPATH"]
        try:
            rc = main(
                [
                    str(tmp_path / "evals.sqlite"),
                    "--evaluator",
                    "worker_eval_fixtures:make_synthetic",
                    "--supervise",
                    "2",
                    "--drain",
                    "--json",
                ]
            )
        finally:
            if old is None:
                del os.environ["PYTHONPATH"]
            else:
                os.environ["PYTHONPATH"] = old
        assert rc == 0
        store = SQLiteStore(tmp_path / "evals.sqlite")
        assert len(store) == 6
        assert queue_for_store(store).stats().done == 6
        store.close()
