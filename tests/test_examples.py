"""Example scripts: importable, well-formed, and the quickstart runs.

The heavier examples (full DoE flows) are exercised in spirit by the
toolkit integration tests and the benchmarks; here each script must at
least compile and expose a ``main``, and the quickstart must execute
end-to-end on a reduced horizon.
"""

import ast
import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_compiles_and_has_main(script):
    tree = ast.parse(script.read_text())
    top_level = {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    assert "main" in top_level or len(top_level) >= 1
    # A guard so imports never execute the workload.
    assert "__main__" in script.read_text()


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_has_docstring(script):
    module = ast.parse(script.read_text())
    assert ast.get_docstring(module), f"{script.name} lacks a docstring"


def test_quickstart_runs(monkeypatch, capsys):
    # Shrink the mission so the smoke test stays fast: intercept the
    # MissionConfig the script builds.
    import repro
    from repro.sim.envelope import EnvelopeOptions
    from repro.sim.runner import MissionConfig, simulate as real_simulate

    fast = EnvelopeOptions(
        map_v_points=4,
        map_nr_warmup_cycles=4,
        map_warmup_cycles=8,
        map_measure_cycles=6,
        map_max_blocks=3,
        map_steps_per_period=80,
    )

    def fast_simulate(config, mission):
        reduced = MissionConfig(
            t_end=min(mission.t_end, 180.0),
            engine=mission.engine,
            envelope=fast,
        )
        return real_simulate(config, reduced)

    monkeypatch.setattr(repro, "simulate", fast_simulate)
    namespace = runpy.run_path(
        str(EXAMPLES_DIR / "quickstart.py"), run_name="not_main"
    )
    namespace["main"]()
    out = capsys.readouterr().out
    assert "performance indicators" in out
    assert "supercapacitor voltage" in out
