"""Toolkit factories for ``repro-campaign`` CLI tests.

The campaign CLI loads its evaluator from a ``module:factory`` spec
(:func:`repro.campaign.cli.load_toolkit`), so these live in an
importable module like the ``repro-worker`` fixtures do.  The factory
is called with the store path — the recommended shape, so cache, work
queue and campaign journal share one substrate.
"""

from repro.core.explorer import DesignExplorer
from repro.core.factors import DesignSpace, Factor


class SyntheticToolkit:
    """The toolkit-like shape the CLI requires: space / responses /
    explorer, over a cheap closed-form evaluator."""

    def __init__(self, store=None):
        self.space = DesignSpace(
            [Factor("a", -1.0, 1.0), Factor("b", -1.0, 1.0)]
        )
        self.responses = ("y", "z")
        self.explorer = DesignExplorer(
            self.space, self.evaluate_point, self.responses,
            cache_store=store,
        )

    def evaluate_point(self, point):
        a, b = point["a"], point["b"]
        return {
            "y": -((a - 0.3) ** 2) - 2.0 * (b + 0.2) ** 2,
            "z": a + b,
        }


def make_toolkit(store):
    """Store-aware factory (the recommended one-argument shape)."""
    return SyntheticToolkit(store)


def make_toolkit_no_store():
    """Zero-argument factory (legacy worker-style shape)."""
    return SyntheticToolkit()


def make_not_a_toolkit():
    """Returns something without the toolkit shape."""
    return object()


def make_typeerror_inside(store):
    """A store-aware factory whose *body* raises TypeError — must
    surface as this error, not trigger a zero-argument retry."""
    raise TypeError("bad config inside factory")
