"""The ``repro-campaign`` CLI: run / status / resume / report.

Drives :func:`repro.campaign.cli.main` in-process (fast, assertable
stdout/stderr) over synthetic toolkits from
:mod:`campaign_cli_fixtures`, plus one real-subprocess round trip to
pin the console-script wiring.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign.cli import load_toolkit, main
from repro.campaign.journal import SQLiteCampaignJournal
from repro.exec.store import SQLiteStore

REPO_ROOT = Path(__file__).resolve().parent.parent
FACTORY = "campaign_cli_fixtures:make_toolkit"


def _store(tmp_path) -> str:
    # The CLI requires an existing substrate (mirrors repro-cache).
    spec = tmp_path / "substrate.sqlite"
    SQLiteStore(spec).close()
    return str(spec)


def _run_args(spec, *extra):
    return [
        "run", spec, "--evaluator", FACTORY, "--objective", "y",
        "--rounds", "4", "--batch", "5", "--seed", "3", *extra,
    ]


class TestLoadToolkit:
    def test_store_aware_factory(self, tmp_path):
        toolkit = load_toolkit(FACTORY, _store(tmp_path))
        assert toolkit.explorer.engine.cache is not None

    def test_zero_arg_factory(self, tmp_path):
        toolkit = load_toolkit(
            "campaign_cli_fixtures:make_toolkit_no_store",
            _store(tmp_path),
        )
        assert toolkit.responses == ("y", "z")

    def test_bad_specs(self, tmp_path):
        from repro.campaign.cli import CliError

        store = _store(tmp_path)
        for spec in (
            "no-colon",
            "campaign_cli_fixtures:absent",
            "nosuchmodule:factory",
            "campaign_cli_fixtures:make_not_a_toolkit",
        ):
            with pytest.raises(CliError):
                load_toolkit(spec, store)

    def test_factory_typeerror_surfaces_not_retried(self, tmp_path):
        # A TypeError raised *inside* a store-aware factory must not
        # be mistaken for wrong arity and retried zero-argument.
        with pytest.raises(TypeError, match="bad config inside"):
            load_toolkit(
                "campaign_cli_fixtures:make_typeerror_inside",
                _store(tmp_path),
            )


class TestRun:
    def test_run_to_convergence(self, tmp_path, capsys):
        spec = _store(tmp_path)
        assert main(_run_args(spec, "--json")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stop_reason"] == "optimum-converged"
        assert payload["best"]["point"]["a"] == pytest.approx(0.3, abs=0.02)
        # State journaled beside the store, in the same database.
        journal = SQLiteCampaignJournal(spec)
        record = journal.load("default")
        assert record.status == "complete"
        assert record.result["n_rounds"] == payload["n_rounds"]
        journal.close()

    def test_run_human_report(self, tmp_path, capsys):
        spec = _store(tmp_path)
        assert main(_run_args(spec)) == 0
        out = capsys.readouterr().out
        assert "== rounds ==" in out and "optimum" in out

    def test_rerun_needs_fresh(self, tmp_path, capsys):
        spec = _store(tmp_path)
        assert main(_run_args(spec)) == 0
        capsys.readouterr()
        assert main(_run_args(spec)) == 1
        assert "already exists" in capsys.readouterr().err
        assert main(_run_args(spec, "--fresh")) == 0

    def test_unknown_objective_rejected(self, tmp_path, capsys):
        spec = _store(tmp_path)
        code = main(
            [
                "run", spec, "--evaluator", FACTORY,
                "--objective", "nonsense",
            ]
        )
        assert code == 1
        assert "responses" in capsys.readouterr().err

    def test_default_objective_requires_standard_responses(
        self, tmp_path, capsys
    ):
        # The synthetic toolkit does not model the standard
        # desirability's responses; the CLI must say so, not crash.
        spec = _store(tmp_path)
        assert main(["run", spec, "--evaluator", FACTORY]) == 1
        assert "--objective" in capsys.readouterr().err

    def test_missing_store_rejected(self, tmp_path, capsys):
        code = main(
            ["status", str(tmp_path / "nowhere.sqlite")]
        )
        assert code == 1
        assert "no store" in capsys.readouterr().err


class TestStatusReport:
    def test_status_exit_codes_track_progress(self, tmp_path, capsys):
        spec = _store(tmp_path)
        # Nothing journaled yet.
        assert main(["status", spec]) == 1
        capsys.readouterr()
        assert main(_run_args(spec)) == 0
        capsys.readouterr()
        assert main(["status", spec, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaigns"][0]["status"] == "complete"
        assert payload["campaigns"][0]["rounds_complete"] >= 2

    def test_status_exit_2_while_unfinished(self, tmp_path, capsys):
        spec = _store(tmp_path)
        journal = SQLiteCampaignJournal(spec)
        journal.create("default", {"config": {}})
        journal.begin_round("default", 0, {"points": []})
        journal.close()
        assert main(["status", spec]) == 2
        out = capsys.readouterr().out
        assert "running" in out and "in flight" in out

    def test_report_roundtrips_result(self, tmp_path, capsys):
        spec = _store(tmp_path)
        assert main(_run_args(spec, "--json")) == 0
        ran = json.loads(capsys.readouterr().out)
        assert main(["report", spec, "--json"]) == 0
        reported = json.loads(capsys.readouterr().out)
        assert reported == ran

    def test_report_before_finish_rejected(self, tmp_path, capsys):
        spec = _store(tmp_path)
        journal = SQLiteCampaignJournal(spec)
        journal.create("default", {"config": {}})
        journal.close()
        assert main(["report", spec]) == 1
        assert "no final result" in capsys.readouterr().err


class TestResume:
    def test_resume_finished_campaign_reprints_result(
        self, tmp_path, capsys
    ):
        spec = _store(tmp_path)
        assert main(_run_args(spec, "--json")) == 0
        ran = json.loads(capsys.readouterr().out)
        # Resume does not need --objective: the journal remembers.
        assert main(
            ["resume", spec, "--evaluator", FACTORY, "--json"]
        ) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed == ran

    def test_resume_notes_ignored_config_flags(self, tmp_path, capsys):
        spec = _store(tmp_path)
        assert main(_run_args(spec)) == 0
        capsys.readouterr()
        assert main(
            [
                "resume", spec, "--evaluator", FACTORY,
                "--budget", "500", "--rounds", "20",
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "ignored on resume" in err
        assert "--budget" in err and "--rounds" in err

    def test_resume_without_campaign_fails(self, tmp_path, capsys):
        spec = _store(tmp_path)
        assert main(
            ["resume", spec, "--evaluator", FACTORY]
        ) == 1
        assert "resume" in capsys.readouterr().err


class TestConsoleScript:
    def test_module_entry_point_subprocess(self, tmp_path):
        spec = _store(tmp_path)
        env_path = [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            env_path + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.campaign.cli",
                *_run_args(spec, "--json"),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["converged"] is True
