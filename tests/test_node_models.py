"""MCU, radio, sensor, task cycle, node composition."""

import pytest

from repro.errors import ModelError
from repro.node.mcu import MCUModel
from repro.node.node import SensorNode
from repro.node.policies import FixedPeriodPolicy
from repro.node.radio import RadioModel
from repro.node.sensing import SensorModel
from repro.node.tasks import measurement_phases, phases_duration, phases_energy


class TestMCU:
    def test_powers_scale_with_rail(self):
        mcu = MCUModel()
        assert mcu.active_power(3.0) == pytest.approx(mcu.active_current * 3.0)
        assert mcu.sleep_power(3.0) < mcu.active_power(3.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            MCUModel(sleep_current=-1e-6)
        with pytest.raises(ModelError):
            MCUModel(active_current=1e-6, sleep_current=2e-6)
        with pytest.raises(ModelError):
            MCUModel().active_power(0.0)


class TestRadio:
    def setup_method(self):
        self.radio = RadioModel()

    def test_airtime_scales_with_payload(self):
        assert self.radio.airtime(1024) > self.radio.airtime(128)

    def test_airtime_value(self):
        # (256 + 144) bits at 250 kbit/s = 1.6 ms.
        assert self.radio.airtime(256) == pytest.approx(400 / 250e3)

    def test_tx_time_includes_startup(self):
        assert self.radio.tx_time(256) == pytest.approx(
            self.radio.startup_time + self.radio.airtime(256)
        )

    def test_tx_energy(self):
        e = self.radio.tx_energy(256, 3.0)
        assert e == pytest.approx(
            self.radio.tx_power(3.0) * self.radio.tx_time(256)
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            self.radio.airtime(0)
        with pytest.raises(ModelError):
            RadioModel(bitrate=0.0)


class TestSensor:
    def test_energy(self):
        s = SensorModel()
        assert s.energy(3.0) == pytest.approx(
            s.power(3.0) * s.acquisition_time
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            SensorModel(current=0.0)
        with pytest.raises(ModelError):
            SensorModel().power(-3.0)


class TestTaskCycle:
    def setup_method(self):
        self.mcu = MCUModel()
        self.radio = RadioModel()
        self.sensor = SensorModel()
        self.phases = measurement_phases(
            self.mcu, self.radio, self.sensor, payload_bits=256, v_rail=3.0
        )

    def test_phase_order(self):
        names = [p.name for p in self.phases]
        assert names == ["wake", "sense", "process", "tx"]

    def test_tx_phase_is_most_powerful(self):
        by_name = {p.name: p for p in self.phases}
        assert by_name["tx"].power == max(p.power for p in self.phases)

    def test_sense_stacks_peripheral_on_mcu(self):
        by_name = {p.name: p for p in self.phases}
        assert by_name["sense"].power == pytest.approx(
            self.mcu.active_power(3.0) + self.sensor.power(3.0)
        )

    def test_energy_sum(self):
        total = phases_energy(self.phases)
        assert total == pytest.approx(sum(p.energy for p in self.phases))
        # Order of magnitude: hundreds of microjoules.
        assert 5e-5 < total < 5e-3

    def test_duration_sum(self):
        assert phases_duration(self.phases) == pytest.approx(
            sum(p.duration for p in self.phases)
        )

    def test_zero_wake_time_drops_phase(self):
        mcu = MCUModel(wake_time=0.0)
        phases = measurement_phases(mcu, self.radio, self.sensor, 256, 3.0)
        assert [p.name for p in phases][0] == "sense"


class TestSensorNode:
    def setup_method(self):
        self.node = SensorNode(policy=FixedPeriodPolicy(10.0))

    def test_average_power_decreases_with_period(self):
        assert self.node.average_power(5.0) > self.node.average_power(50.0)

    def test_average_power_floor_is_sleep(self):
        assert self.node.average_power(1e6) == pytest.approx(
            self.node.sleep_power, rel=0.05
        )

    def test_min_sustainable_period_inverts_average_power(self):
        period = 12.0
        budget = self.node.average_power(period)
        assert self.node.min_sustainable_period(budget) == pytest.approx(
            period, rel=1e-9
        )

    def test_min_sustainable_rejects_starvation(self):
        with pytest.raises(ModelError):
            self.node.min_sustainable_period(self.node.sleep_power * 0.5)

    def test_data_rate(self):
        assert self.node.data_rate(8.0) == pytest.approx(
            self.node.payload_bits / 8.0
        )

    def test_period_shorter_than_cycle_rejected(self):
        with pytest.raises(ModelError):
            self.node.average_power(self.node.cycle_duration / 2)

    def test_payload_changes_cycle_energy(self):
        small = SensorNode(payload_bits=64)
        large = SensorNode(payload_bits=1024)
        assert large.cycle_energy > small.cycle_energy

    def test_describe_mentions_policy(self):
        assert "fixed" in self.node.describe()
