"""Envelope engine: charging map, mission loop, energy accounting."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.node.policies import FixedPeriodPolicy
from repro.presets import default_system
from repro.sim.envelope import (
    ChargingMap,
    EnvelopeEngine,
    EnvelopeOptions,
    charging_cache_size,
    clear_charging_cache,
)
from repro.sim.runner import MissionConfig, simulate

#: Fast map options shared by the tests (fewer cycles than production).
FAST = EnvelopeOptions(
    map_v_points=4,
    map_nr_warmup_cycles=4,
    map_warmup_cycles=8,
    map_measure_cycles=6,
    map_max_blocks=3,
    map_steps_per_period=80,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_charging_cache()
    yield
    clear_charging_cache()


class TestChargingMap:
    def test_monotone_decreasing_in_voltage(self):
        cfg = default_system()
        cmap = ChargingMap(cfg, FAST)
        gap = cfg.resolve_initial_gap()
        currents = [
            cmap.current(v, 67.0, 0.6, gap) for v in (0.5, 2.0, 3.5, 4.8)
        ]
        assert currents[0] > currents[-1]
        assert currents[0] > 1e-6  # microamps of charging when tuned

    def test_detuned_charges_less(self):
        cfg = default_system()
        cmap = ChargingMap(cfg, FAST)
        tuned = cmap.current(2.0, 67.0, 0.6, cfg.resolve_initial_gap())
        detuned = cmap.current(2.0, 67.0, 0.6, cfg.harvester.default_gap())
        assert detuned < 0.3 * tuned

    def test_zero_amplitude_gives_zero(self):
        cfg = default_system()
        cmap = ChargingMap(cfg, FAST)
        assert cmap.current(2.0, 67.0, 0.0, cfg.resolve_initial_gap()) == 0.0

    def test_cache_shared_across_capacitances(self):
        # C_store must not change the charging current (it is a
        # voltage source on the fast scale) nor the cache key.
        cfg_a = default_system(capacitance=0.2)
        cfg_b = default_system(capacitance=0.8)
        map_a = ChargingMap(cfg_a, FAST)
        gap = cfg_a.resolve_initial_gap()
        i_a = map_a.current(2.0, 67.0, 0.6, gap)
        size_after_a = charging_cache_size()
        map_b = ChargingMap(cfg_b, FAST)
        i_b = map_b.current(2.0, 67.0, 0.6, gap)
        assert charging_cache_size() == size_after_a  # no new bins
        assert i_b == pytest.approx(i_a, rel=1e-9)

    def test_mismatch_keying_collapses_bins(self):
        cfg = default_system()
        cmap = ChargingMap(cfg, FAST)
        gap = cfg.resolve_initial_gap()
        cmap.current(2.0, 67.0, 0.6, gap)
        n1 = charging_cache_size()
        # Same mismatch at a nearby absolute frequency, same resonance
        # bin: must reuse the grid.
        gap2 = cfg.harvester.gap_for_frequency(67.1)
        cmap.current(2.0, 67.1, 0.6, gap2)
        assert charging_cache_size() == n1

    def test_requires_store(self):
        from repro.power.rectifier import build_resistive_load_circuit
        from repro.sim.system import SystemConfig

        cfg = default_system()
        bare = SystemConfig(
            harvester=cfg.harvester,
            power=build_resistive_load_circuit(1000.0),
            regulator=cfg.regulator,
            node=None,
            controller=None,
            vibration=cfg.vibration,
        )
        with pytest.raises(SimulationError):
            ChargingMap(bare, FAST)


class TestEnvelopeMission:
    def test_packets_match_fixed_period(self):
        cfg = default_system(tx_interval=10.0, check_interval=600.0)
        engine = EnvelopeEngine(cfg, FAST)
        result = engine.run(300.0, record_dt=1.0)
        # One measurement at t=0 plus one every 10 s.
        assert result.counter("packets_delivered") == pytest.approx(31, abs=1)

    def test_energy_ledger_balances(self):
        cfg = default_system(tx_interval=10.0)
        engine = EnvelopeEngine(cfg, FAST)
        result = engine.run(600.0)
        cap = cfg.power.supercap.capacitance
        v0 = cfg.power.supercap.v_initial
        v1 = result.final_store_voltage()
        delta_store = 0.5 * cap * (v1**2 - v0**2)
        net = (
            result.energy("harvested")
            - result.energy("leakage")
            - result.energy("node")
            - result.energy("tuning")
        )
        scale = max(abs(result.energy("harvested")), abs(delta_store), 1e-6)
        assert delta_store == pytest.approx(net, abs=0.08 * scale)

    def test_heavier_duty_cycle_drains_store(self):
        slow = simulate(
            default_system(tx_interval=60.0),
            MissionConfig(t_end=600.0, engine="envelope", envelope=FAST),
        )
        fast = simulate(
            default_system(tx_interval=2.0),
            MissionConfig(t_end=600.0, engine="envelope", envelope=FAST),
        )
        assert fast.final_store_voltage() < slow.final_store_voltage()

    def test_cold_start_brownout_then_recovery(self):
        # Tens of microamps into a small store: the node boots after a
        # few hundred seconds of charging.  (With the default 0.4 F a
        # cold start takes hours — physically correct, tested at R-F2
        # scale in the benchmarks.)
        cfg = default_system(
            tx_interval=20.0, v_initial=2.3, capacitance=0.05
        )
        result = simulate(
            cfg, MissionConfig(t_end=1500.0, engine="envelope", envelope=FAST)
        )
        # Starts below restart: node disabled, store charges up, node
        # eventually boots and reports.
        assert result.downtime > 0.0
        assert result.counter("packets_delivered") > 0
        assert result.final_store_voltage() > 2.2

    def test_overdraw_causes_brownout_event(self):
        cfg = default_system(
            tx_interval=2.0, capacitance=0.05, v_initial=2.6,
            check_interval=600.0,
        )
        result = simulate(
            cfg, MissionConfig(t_end=900.0, engine="envelope", envelope=FAST)
        )
        assert result.counter("brownout_events") >= 1
        assert result.downtime > 0.0

    def test_traces_present(self):
        cfg = default_system()
        result = simulate(
            cfg, MissionConfig(t_end=120.0, engine="envelope", envelope=FAST)
        )
        for channel in ("v_store", "f_dom", "f_res", "gap", "packets"):
            assert result.has_trace(channel)
        assert result.times[-1] == pytest.approx(120.0)

    def test_rejects_nonpositive_horizon(self):
        engine = EnvelopeEngine(default_system(), FAST)
        with pytest.raises(SimulationError):
            engine.run(0.0)


class TestEnvelopeOptionsValidation:
    def test_bad_dt_max(self):
        with pytest.raises(SimulationError):
            EnvelopeOptions(dt_max=0.0)

    def test_bad_v_points(self):
        with pytest.raises(SimulationError):
            EnvelopeOptions(map_v_points=1)

    def test_bad_cycles(self):
        with pytest.raises(SimulationError):
            EnvelopeOptions(map_measure_cycles=0)


class TestChargingMapDeterminism:
    """Grid contents are a pure function of the cache key.

    The key deliberately omits the storage capacitance; before maps
    were measured on a canonical-capacitance rebuild of the circuit,
    a grid held whatever the *first* design point to miss the key
    happened to measure — so independent processes (distributed
    workers, spawn pools) evaluating different subsets of a study
    diverged in the last bits.
    """

    def _evaluate(self, cap, tx, order_tag):
        cfg = default_system(capacitance=cap, tx_interval=tx)
        result = simulate(
            cfg, MissionConfig(t_end=120.0, engine="envelope", envelope=FAST)
        )
        from repro.indicators import evaluate_indicators

        return evaluate_indicators(
            result,
            ("average_harvested_power", "final_store_voltage",
             "effective_data_rate"),
        )

    def test_evaluation_order_does_not_change_responses(self):
        clear_charging_cache()
        a_first = self._evaluate(0.15, 5.0, "a1")
        b_second = self._evaluate(0.90, 30.0, "b1")
        clear_charging_cache()
        b_first = self._evaluate(0.90, 30.0, "b2")
        a_second = self._evaluate(0.15, 5.0, "a2")
        # Exact float equality: whichever point builds the map, the
        # grid must be bit-identical.
        assert a_first == a_second
        assert b_first == b_second

    def test_capacitance_shares_one_grid(self):
        clear_charging_cache()
        self._evaluate(0.15, 5.0, "x")
        grids_after_first = charging_cache_size()
        self._evaluate(0.90, 5.0, "y")
        # A different store capacitance reuses the canonical grids.
        assert charging_cache_size() == grids_after_first


class TestMapStorePersistence:
    """Charging-map grids persist through a CacheStore.

    A fleet sharing one store pays each grid's measurement once,
    ever: the first process to miss a key publishes the grid, every
    later process (or restart) loads it back bit-exactly instead of
    re-measuring.
    """

    def _mission(self):
        return simulate(
            default_system(),
            MissionConfig(t_end=120.0, engine="envelope", envelope=FAST),
        )

    def test_grids_roundtrip_and_warm_start(self, tmp_path):
        from repro.exec.store import FileStore
        from repro.sim.envelope import (
            attach_map_store,
            charging_cache_stats,
            detach_map_store,
        )

        store = FileStore(tmp_path / "maps")
        attach_map_store(store)
        try:
            first = self._mission()
            stats = charging_cache_stats()
            assert stats["built"] >= 1
            assert stats["published"] == stats["built"]

            # Same process, cold cache: every grid comes back from
            # the store, none is re-measured, and the mission is
            # bit-identical.
            clear_charging_cache()
            second = self._mission()
            stats = charging_cache_stats()
            assert stats["built"] == 0
            assert stats["loaded"] >= 1
            assert np.array_equal(
                first.traces["v_store"], second.traces["v_store"]
            )
            assert first.energies == second.energies
        finally:
            detach_map_store()
            store.close()

    def test_preload_loads_every_persisted_grid(self, tmp_path):
        from repro.exec.store import FileStore
        from repro.sim.envelope import (
            attach_map_store,
            charging_cache_stats,
            detach_map_store,
            preload_charging_maps,
        )

        store = FileStore(tmp_path / "maps")
        attach_map_store(store)
        try:
            self._mission()
            built = charging_cache_stats()["built"]
            clear_charging_cache()
            loaded = preload_charging_maps(store)
            assert loaded == built
            assert charging_cache_size() == built
            # The warm cache answers the mission without the store.
            detach_map_store()
            self._mission()
            assert charging_cache_stats()["built"] == 0
        finally:
            detach_map_store()
            store.close()

    def test_fresh_process_builds_zero_grids(self, tmp_path):
        import json
        import subprocess
        import sys
        from pathlib import Path

        from repro.exec.store import FileStore
        from repro.sim.envelope import attach_map_store, detach_map_store

        store = FileStore(tmp_path / "maps")
        attach_map_store(store)
        try:
            self._mission()
        finally:
            detach_map_store()
            store.close()

        src = Path(__file__).resolve().parent.parent / "src"
        child = subprocess.run(
            [
                sys.executable,
                "-c",
                (
                    "import json, sys\n"
                    f"sys.path.insert(0, {str(src)!r})\n"
                    "from repro.exec.store import FileStore\n"
                    "from repro.presets import default_system\n"
                    "from repro.sim.envelope import (EnvelopeOptions,\n"
                    "    attach_map_store, charging_cache_stats)\n"
                    "from repro.sim.runner import MissionConfig, simulate\n"
                    f"store = FileStore({str(tmp_path / 'maps')!r})\n"
                    "attach_map_store(store)\n"
                    "opts = EnvelopeOptions(map_v_points=4,\n"
                    "    map_nr_warmup_cycles=4, map_warmup_cycles=8,\n"
                    "    map_measure_cycles=6, map_max_blocks=3,\n"
                    "    map_steps_per_period=80)\n"
                    "simulate(default_system(), MissionConfig(t_end=120.0,\n"
                    "    engine='envelope', envelope=opts))\n"
                    "print(json.dumps(charging_cache_stats()))\n"
                ),
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert child.returncode == 0, child.stderr
        stats = json.loads(child.stdout.strip().splitlines()[-1])
        # The whole point of the store: a brand-new process measures
        # nothing, it loads the fleet's grids.
        assert stats["built"] == 0
        assert stats["loaded"] >= 1


class TestMapCacheLRU:
    """The global grid cache is bounded with LRU eviction.

    Regression: the cache grew without bound — a long campaign over a
    drifting band accumulated every grid it ever touched.
    """

    def test_limit_bounds_cache_and_counts_evictions(self):
        import dataclasses

        from repro.sim.envelope import (
            charging_cache_stats,
            set_charging_cache_limit,
        )

        opts = dataclasses.replace(FAST, map_key_mode="absolute")
        previous = set_charging_cache_limit(2)
        try:
            config = default_system()
            cm = ChargingMap(config, opts)
            gap = config.harvester.tuning.gap_min
            for freq in (60.0, 64.0, 68.0):
                cm.resolve(freq, 2.5, gap)
            stats = charging_cache_stats()
            assert stats["size"] <= 2
            assert stats["evictions"] >= 1
            # Lowering the bound evicts immediately.
            set_charging_cache_limit(1)
            assert charging_cache_size() == 1
            assert charging_cache_stats()["evictions"] >= 2
        finally:
            set_charging_cache_limit(previous)

    def test_bad_limit_rejected(self):
        from repro.sim.envelope import set_charging_cache_limit

        with pytest.raises(SimulationError):
            set_charging_cache_limit(0)
