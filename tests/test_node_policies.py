"""Duty-cycle policies and the tuning controller."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.harvester.tuning import TunableHarvester
from repro.node.controller import TuningController
from repro.node.policies import (
    EnergyNeutralPolicy,
    FixedPeriodPolicy,
    ThresholdAdaptivePolicy,
)
from repro.vibration.sources import SineVibration


class TestFixedPolicy:
    def test_constant(self):
        p = FixedPeriodPolicy(10.0)
        assert p.next_period(0.5, 0.0) == 10.0
        assert p.next_period(4.9, 1e6) == 10.0

    def test_validation(self):
        with pytest.raises(ModelError):
            FixedPeriodPolicy(0.0)


class TestThresholdPolicy:
    def setup_method(self):
        self.p = ThresholdAdaptivePolicy(
            period_min=5.0, period_max=60.0, v_low=2.6, v_high=4.0
        )

    def test_extremes(self):
        assert self.p.next_period(4.5, 0.0) == 5.0
        assert self.p.next_period(2.0, 0.0) == 60.0

    def test_midpoint_interpolates(self):
        mid = self.p.next_period(3.3, 0.0)
        assert 5.0 < mid < 60.0

    @given(st.floats(0.0, 5.0), st.floats(0.0, 5.0))
    def test_monotone_in_voltage(self, v1, v2):
        lo, hi = sorted((v1, v2))
        assert self.p.next_period(hi, 0.0) <= self.p.next_period(lo, 0.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            ThresholdAdaptivePolicy(5.0, 4.0)
        with pytest.raises(ModelError):
            ThresholdAdaptivePolicy(5.0, 60.0, v_low=4.0, v_high=3.0)


class TestEnergyNeutralPolicy:
    def test_speeds_up_above_target(self):
        p = EnergyNeutralPolicy(v_target=3.3, period_initial=30.0)
        first = p.next_period(4.0, 0.0)
        assert first < 30.0

    def test_backs_off_below_target(self):
        p = EnergyNeutralPolicy(v_target=3.3, period_initial=30.0)
        first = p.next_period(2.8, 0.0)
        assert first > 30.0

    def test_clamped_to_range(self):
        p = EnergyNeutralPolicy(period_min=1.0, period_max=300.0)
        for _ in range(100):
            period = p.next_period(0.5, 0.0)
        assert period == 300.0

    def test_reset_restores_initial(self):
        p = EnergyNeutralPolicy(period_initial=30.0)
        p.next_period(5.0, 0.0)
        p.reset()
        assert p.current_period == 30.0

    def test_at_target_holds(self):
        p = EnergyNeutralPolicy(v_target=3.3, period_initial=30.0)
        assert p.next_period(3.3, 0.0) == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            EnergyNeutralPolicy(gain=0.0)
        with pytest.raises(ModelError):
            EnergyNeutralPolicy(period_initial=1e9)


class TestTuningController:
    def setup_method(self):
        self.harvester = TunableHarvester()
        self.controller = TuningController(dead_band=1.0)

    def test_no_retune_when_matched(self):
        source = SineVibration(0.6, 67.0)
        gap = self.harvester.gap_for_frequency(67.0)
        decision = self.controller.decide(0.0, source, self.harvester, gap)
        assert decision.retune is False
        assert decision.f_estimate == pytest.approx(67.0, abs=0.4)

    def test_retunes_on_large_mismatch(self):
        source = SineVibration(0.6, 72.0)
        gap = self.harvester.gap_for_frequency(66.0)
        decision = self.controller.decide(0.0, source, self.harvester, gap)
        assert decision.retune is True
        target_f = self.harvester.resonant_frequency(decision.target_gap)
        assert target_f == pytest.approx(72.0, abs=0.5)

    def test_dead_band_suppresses_small_mismatch(self):
        source = SineVibration(0.6, 67.5)
        gap = self.harvester.gap_for_frequency(67.0)
        decision = self.controller.decide(0.0, source, self.harvester, gap)
        assert decision.retune is False

    def test_out_of_band_clamps_to_stop(self):
        # 100 Hz is above the tuning band: the controller commands the
        # closest achievable resonance (the minimum gap).
        controller = TuningController(dead_band=0.5)
        source = SineVibration(0.6, 100.0)
        gap = self.harvester.gap_for_frequency(70.0)
        decision = controller.decide(0.0, source, self.harvester, gap)
        assert decision.retune is True
        assert decision.target_gap == pytest.approx(
            self.harvester.tuning.gap_min
        )

    def test_already_at_stop_is_noop(self):
        controller = TuningController(dead_band=0.5)
        source = SineVibration(0.6, 100.0)
        gap = self.harvester.tuning.gap_min
        decision = controller.decide(0.0, source, self.harvester, gap)
        assert decision.retune is False

    def test_measurement_energy(self):
        c = TuningController(measurement_power=9e-3, capture_time=0.5)
        assert c.measurement_energy == pytest.approx(4.5e-3)

    def test_validation(self):
        with pytest.raises(ModelError):
            TuningController(check_interval=0.0)
        with pytest.raises(ModelError):
            TuningController(dead_band=-1.0)
        with pytest.raises(ModelError):
            TuningController(method="wavelet")
