"""The resilience primitives: retry, breaker, degrading wrappers.

Everything here runs on injected clocks and sleeps — the suite never
actually waits.  Determinism of the retry schedule matters beyond
test hygiene: the chaos harness replays runs fault-for-fault, and a
nondeterministic backoff would make "same seed, same outcome"
unprovable.
"""

import sqlite3
import warnings

import pytest

from repro.errors import (
    CircuitOpenError,
    ReproError,
    TransientQueueError,
    TransientStoreError,
    is_transient,
)
from repro.exec import (
    FaultPlan,
    FaultSpec,
    FaultyQueue,
    FaultyStore,
    FileStore,
    Job,
    MemoryStore,
    ResilientQueue,
    ResilientStore,
    RetryPolicy,
    SQLiteWorkQueue,
)
from repro.exec.resilience import DEFAULT_RETRY, CircuitBreaker

FAST = RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0, max_elapsed=None)


class _Clock:
    """A hand-cranked monotonic clock."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class _Breakable(MemoryStore):
    """A store with an off switch, for exercising degradation."""

    def __init__(self):
        super().__init__()
        self.broken = False
        self.fail_fingerprint = None

    def _check(self):
        if self.broken:
            raise OSError("disk on fire")

    def load(self, fingerprint):
        self._check()
        return super().load(fingerprint)

    def peek(self, fingerprint):
        self._check()
        return super().peek(fingerprint)

    def persist(self, fingerprint, responses, *, meta=None):
        self._check()
        if fingerprint == self.fail_fingerprint:
            raise OSError(f"cannot write {fingerprint}")
        return super().persist(fingerprint, responses, meta=meta)

    def load_many(self, fingerprints):
        self._check()
        return super().load_many(fingerprints)

    def persist_many(self, entries):
        self._check()
        return super().persist_many(entries)

    def __len__(self):
        self._check()
        return super().__len__()

    def __contains__(self, fingerprint):
        self._check()
        return super().__contains__(fingerprint)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ReproError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError, match="delays"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ReproError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=6, seed=42)
        assert list(policy.delays()) == list(policy.delays())
        assert list(policy.delays()) != list(
            RetryPolicy(max_attempts=6, seed=43).delays()
        )

    def test_schedule_shape_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0,
            max_delay=0.5, jitter=0.0,
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4, 0.5])

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(max_attempts=8, base_delay=1.0, multiplier=1.0,
                             max_delay=1.0, jitter=0.25, seed=7)
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.0

    def test_transients_retried_until_success(self):
        attempts = []
        retried = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientStoreError("busy")
            return "ok"

        slept = []
        result = FAST.call(
            flaky,
            sleep=slept.append,
            on_retry=lambda n, e: retried.append((n, str(e))),
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert len(slept) == 2
        assert [n for n, _ in retried] == [1, 2]

    def test_attempts_exhausted_raises_the_last_error(self):
        calls = []

        def always_busy():
            calls.append(1)
            raise TransientQueueError("still busy")

        with pytest.raises(TransientQueueError, match="still busy"):
            FAST.call(always_busy, sleep=lambda _: None)
        assert len(calls) == FAST.max_attempts

    def test_terminal_errors_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            FAST.call(broken, sleep=lambda _: None)
        assert len(calls) == 1

    def test_max_elapsed_budget_cuts_retries_short(self):
        clock = _Clock()
        policy = RetryPolicy(
            max_attempts=10, base_delay=5.0, multiplier=1.0,
            max_delay=5.0, max_elapsed=12.0, jitter=0.0,
        )
        calls = []

        def busy():
            calls.append(1)
            raise TransientStoreError("busy")

        with pytest.raises(TransientStoreError):
            policy.call(busy, sleep=clock.advance, clock=clock)
        # 5 s + 5 s fits the 12 s budget; a third sleep would not.
        assert len(calls) == 3

    def test_classify_overrides_the_taxonomy(self):
        calls = []

        def odd_failure():
            calls.append(1)
            if len(calls) < 2:
                raise KeyError("transient in this domain")
            return "ok"

        result = FAST.call(
            odd_failure,
            classify=lambda e: isinstance(e, KeyError),
            sleep=lambda _: None,
        )
        assert result == "ok"

    def test_default_policy_is_bounded_below_lease_ttls(self):
        assert DEFAULT_RETRY.max_attempts == 4
        assert sum(DEFAULT_RETRY.delays()) < 10.0
        assert set(DEFAULT_RETRY.describe()) == {
            "max_attempts", "base_delay", "multiplier", "max_delay",
            "max_elapsed", "jitter", "seed",
        }

    def test_sqlite_lock_markers_classified_transient(self):
        assert is_transient(sqlite3.OperationalError("database is locked"))
        assert is_transient(TransientStoreError("x"))
        assert not is_transient(OSError("disk on fire"))
        assert not is_transient(ValueError("nope"))


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ReproError):
            CircuitBreaker(reset_after=-1.0)

    def test_opens_after_threshold_and_fails_fast(self):
        clock = _Clock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_after=10.0, name="store", clock=clock
        )

        def boom():
            raise OSError("down")

        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(boom)
        assert breaker.state == "closed"
        with pytest.raises(OSError):
            breaker.call(boom)
        assert breaker.state == "open"
        assert breaker.trips == 1
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.call(lambda: "never runs")
        assert excinfo.value.retry_at == pytest.approx(10.0)

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=_Clock())
        with pytest.raises(OSError):
            breaker.call(lambda: (_ for _ in ()).throw(OSError("x")))
        assert breaker.call(lambda: "fine") == "fine"
        with pytest.raises(OSError):
            breaker.call(lambda: (_ for _ in ()).throw(OSError("x")))
        assert breaker.state == "closed"  # the streak was broken

    def test_half_open_admits_one_probe(self):
        clock = _Clock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after=5.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else keeps failing fast

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = _Clock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        with pytest.raises(OSError):
            breaker.call(lambda: (_ for _ in ()).throw(OSError("still down")))
        assert breaker.state == "open"  # re-armed for another reset_after
        clock.advance(5.0)
        assert breaker.call(lambda: "recovered") == "recovered"
        assert breaker.state == "closed"
        assert breaker.describe()["state"] == "closed"


class TestResilientStore:
    def _store(self, inner=None, threshold=1):
        clock = _Clock()
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_after=10.0,
            name="test store", clock=clock,
        )
        store = ResilientStore(
            inner if inner is not None else _Breakable(),
            retry=FAST,
            breaker=breaker,
            sleep=lambda _: None,
        )
        return store, clock

    def test_transients_are_masked_invisibly(self):
        plan = FaultPlan(
            [
                FaultSpec("store", "persist", 1, "transient"),
                FaultSpec("store", "load", 1, "locked"),
            ]
        )
        store, _ = self._store(FaultyStore(MemoryStore(), plan))
        store.persist("fp", {"y": 1.0})
        assert store.load("fp") == {"y": 1.0}
        assert store.resilience.retried == 2
        assert not store.degraded
        assert store.breaker.trips == 0

    def test_terminal_failure_degrades_to_the_overlay(self):
        store, _ = self._store()
        store.persist("fp1", {"y": 1.0})
        store.inner.broken = True
        with pytest.warns(RuntimeWarning, match="memory-only"):
            store.persist("fp2", {"y": 2.0})
        assert store.degraded
        assert store.overlay_entries() == 1
        # Loads, membership and len are answered from the overlay.
        assert store.load("fp2") == {"y": 2.0}
        assert "fp2" in store
        assert len(store) == 1
        assert dict(store.items()) == {"fp2": {"y": 2.0}}
        assert store.resilience.degraded_ops >= 2

    def test_degraded_batches_answer_from_the_overlay(self):
        store, _ = self._store()
        store.persist("fp1", {"y": 1.0})
        store.inner.broken = True
        with pytest.warns(RuntimeWarning, match="memory-only"):
            store.persist_many(
                [("fp2", {"y": 2.0}), ("fp3", {"y": 3.0})]
            )
        assert store.degraded
        assert store.overlay_entries() == 2
        # fp1 is stranded behind the broken inner; the overlay serves
        # the rest of the batch without touching it.
        assert store.load_many(["fp1", "fp2", "fp3"]) == {
            "fp2": {"y": 2.0},
            "fp3": {"y": 3.0},
        }

    def test_load_many_merges_overlay_over_inner(self):
        store, clock = self._store()
        store.persist("fp1", {"y": 1.0})
        store.inner.broken = True
        with pytest.warns(RuntimeWarning, match="memory-only"):
            store.persist_many([("fp2", {"y": 2.0})])
        store.inner.broken = False
        clock.advance(60.0)  # past the breaker's reset window
        # The inner store answers fp1, the (not yet flushed or just
        # flushed) overlay answered fp2 — one call, both present, in
        # input order.
        found = store.load_many(["fp1", "fp2"])
        assert list(found) == ["fp1", "fp2"]
        assert found == {"fp1": {"y": 1.0}, "fp2": {"y": 2.0}}

    def test_degradation_warns_exactly_once(self):
        store, _ = self._store()
        store.inner.broken = True
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store.persist("fp1", {"y": 1.0})
            store.persist("fp2", {"y": 2.0})
            store.load("fp1")
        runtime = [w for w in caught if w.category is RuntimeWarning]
        assert len(runtime) == 1

    def test_recovery_flushes_the_overlay(self):
        store, clock = self._store()
        store.inner.broken = True
        with pytest.warns(RuntimeWarning):
            store.persist("fpA", {"y": 1.0})
            store.persist("fpB", {"y": 2.0})
        assert store.overlay_entries() == 2
        store.inner.broken = False
        clock.advance(10.0)  # breaker half-open: next call probes
        assert store.load("fpA") == {"y": 1.0}
        assert store.overlay_entries() == 0
        assert not store.degraded
        assert store.inner.load("fpB") == {"y": 2.0}  # durable now
        assert store.resilience.recoveries == 1
        assert store.resilience.flushed == 2

    def test_partial_flush_keeps_the_remainder_safe(self):
        store, clock = self._store()
        store.inner.broken = True
        with pytest.warns(RuntimeWarning):
            store.persist("fpA", {"y": 1.0})
            store.persist("fpB", {"y": 2.0})
        store.inner.broken = False
        store.inner.fail_fingerprint = "fpB"  # recovery is itself flaky
        clock.advance(10.0)
        store.peek("fpA")
        assert store.resilience.flushed == 1
        assert store.resilience.recoveries == 0
        assert store.overlay_entries() == 1
        store.inner.fail_fingerprint = None
        store.peek("fpA")  # any successful op retries the flush
        assert store.overlay_entries() == 0
        assert store.resilience.recoveries == 1
        assert store.inner.load("fpB") == {"y": 2.0}

    def test_open_breaker_short_circuits_without_warning_again(self):
        store, _ = self._store()
        store.inner.broken = True
        with pytest.warns(RuntimeWarning):
            store.persist("fp", {"y": 1.0})
        calls_before = store.resilience.degraded_ops
        store.load("fp")  # breaker open: inner never touched
        assert store.resilience.degraded_ops == calls_before + 1

    def test_describe_reports_the_resilience_state(self):
        store, _ = self._store()
        described = store.describe()
        assert described["resilient"] is True
        assert described["degraded"] is False
        assert described["overlay_entries"] == 0
        assert described["breaker"]["state"] == "closed"
        assert described["resilience"]["retried"] == 0
        assert described["store"] == store.name

    def test_delegates_store_specific_surface(self, tmp_path):
        inner = FileStore(tmp_path / "s")
        store = ResilientStore(inner, retry=FAST, sleep=lambda _: None)
        assert store.directory == inner.directory
        assert store.stats is inner.stats
        store.close()


class TestResilientQueue:
    def test_transients_are_masked(self, tmp_path):
        plan = FaultPlan(
            [
                FaultSpec("queue", "submit", 1, "transient"),
                FaultSpec("queue", "lease", 1, "locked"),
                FaultSpec("queue", "complete", 1, "transient"),
            ]
        )
        queue = ResilientQueue(
            FaultyQueue(SQLiteWorkQueue(tmp_path / "q.sqlite"), plan),
            retry=FAST,
            sleep=lambda _: None,
        )
        assert queue.submit([Job("fp", {"a": 1.0})]) == 1
        leased = queue.lease("w1", n=1)
        assert [job.job_id for job in leased] == ["fp"]
        assert queue.complete("w1", "fp") is True
        assert queue.resilience.retried == 3
        assert queue.stats().done == 1
        assert queue.describe()["resilient"] is True
        queue.close()

    def test_exhausted_retries_propagate(self, tmp_path):
        plan = FaultPlan(
            [
                FaultSpec("queue", "submit", n, "transient")
                for n in range(1, 10)
            ]
        )
        queue = ResilientQueue(
            FaultyQueue(SQLiteWorkQueue(tmp_path / "q.sqlite"), plan),
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0,
                              max_elapsed=None),
            sleep=lambda _: None,
        )
        with pytest.raises(TransientQueueError):
            queue.submit([Job("fp", {"a": 1.0})])
        queue.close()
