"""Vibration sources: waveforms, dominant frequency, vectorization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.vibration.sources import (
    BandNoiseVibration,
    CompositeVibration,
    DriftingSineVibration,
    MultiToneVibration,
    SineVibration,
    SteppedFrequencyVibration,
)


class TestSineVibration:
    def test_amplitude_and_frequency(self):
        src = SineVibration(amplitude=0.6, frequency=67.0)
        t = np.linspace(0.0, 1.0, 6701)
        a = src.acceleration_array(t)
        assert np.max(np.abs(a)) == pytest.approx(0.6, rel=1e-3)
        assert src.dominant_frequency(0.0) == 67.0

    def test_scalar_matches_array(self):
        src = SineVibration(0.5, 40.0, phase=0.3)
        times = np.array([0.0, 0.01, 0.37])
        array = src.acceleration_array(times)
        scalars = [src.acceleration(float(t)) for t in times]
        assert np.allclose(array, scalars)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            SineVibration(-1.0, 50.0)
        with pytest.raises(ModelError):
            SineVibration(1.0, 0.0)

    @given(st.floats(0.01, 10.0), st.floats(1.0, 500.0))
    def test_amplitude_bound_property(self, amp, freq):
        src = SineVibration(amp, freq)
        t = np.linspace(0.0, 0.1, 257)
        assert np.all(np.abs(src.acceleration_array(t)) <= amp * (1 + 1e-12))


class TestMultiTone:
    def test_dominant_is_largest_amplitude(self):
        src = MultiToneVibration([(0.1, 50.0, 0.0), (0.5, 67.0, 0.0), (0.2, 120.0, 0.0)])
        assert src.dominant_frequency(0.0) == 67.0
        assert src.amplitude(0.0) == 0.5

    def test_tie_resolves_to_lowest_frequency(self):
        src = MultiToneVibration([(0.3, 90.0, 0.0), (0.3, 60.0, 0.0)])
        assert src.dominant_frequency(0.0) == 60.0

    def test_superposition(self):
        tones = [(0.2, 30.0, 0.1), (0.4, 70.0, 1.0)]
        src = MultiToneVibration(tones)
        parts = [SineVibration(a, f, p) for a, f, p in tones]
        t = 0.123
        assert src.acceleration(t) == pytest.approx(
            sum(p.acceleration(t) for p in parts)
        )

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            MultiToneVibration([])


class TestDriftingSine:
    def test_frequency_ramp(self):
        src = DriftingSineVibration(0.6, 64.0, 72.0, drift_rate=0.02)
        assert src.dominant_frequency(0.0) == 64.0
        assert src.dominant_frequency(src.ramp_duration) == 72.0
        assert src.dominant_frequency(src.ramp_duration * 10) == 72.0
        mid = src.dominant_frequency(src.ramp_duration / 2)
        assert mid == pytest.approx(68.0)

    def test_downward_drift(self):
        src = DriftingSineVibration(0.6, 72.0, 64.0, drift_rate=0.02)
        assert src.dominant_frequency(0.0) == 72.0
        assert src.dominant_frequency(1e9) == 64.0

    def test_waveform_continuous(self):
        src = DriftingSineVibration(1.0, 10.0, 20.0, drift_rate=1.0)
        t = np.linspace(0.0, 15.0, 200001)
        a = src.acceleration_array(t)
        # No jumps: the max sample-to-sample delta is bounded by
        # amplitude * max angular frequency * dt.
        dt = t[1] - t[0]
        max_step = 1.0 * 2 * np.pi * 20.0 * dt
        assert np.max(np.abs(np.diff(a))) <= max_step * 1.05

    def test_scalar_matches_array(self):
        src = DriftingSineVibration(0.5, 30.0, 40.0, drift_rate=0.5)
        times = np.array([0.0, 5.0, 19.9, 25.0])
        array = src.acceleration_array(times)
        scalars = [src.acceleration(float(x)) for x in times]
        assert np.allclose(array, scalars)


class TestSteppedFrequency:
    def test_segments(self):
        src = SteppedFrequencyVibration(0.5, [(0.0, 50.0), (10.0, 70.0)])
        assert src.dominant_frequency(5.0) == 50.0
        assert src.dominant_frequency(10.0) == 70.0
        assert src.dominant_frequency(100.0) == 70.0

    def test_phase_continuity_at_switch(self):
        src = SteppedFrequencyVibration(1.0, [(0.0, 50.0), (1.0, 80.0)])
        eps = 1e-7
        before = src.acceleration(1.0 - eps)
        after = src.acceleration(1.0 + eps)
        assert abs(after - before) < 1e-3

    def test_must_start_at_zero(self):
        with pytest.raises(ModelError):
            SteppedFrequencyVibration(0.5, [(1.0, 50.0)])

    def test_increasing_times_required(self):
        with pytest.raises(ModelError):
            SteppedFrequencyVibration(0.5, [(0.0, 50.0), (0.0, 60.0)])


class TestBandNoise:
    def test_rms_level(self):
        src = BandNoiseVibration(rms=0.2, f_low=20.0, f_high=120.0, seed=3)
        t = np.linspace(0.0, 20.0, 2**16)
        a = src.acceleration_array(t)
        assert np.sqrt(np.mean(a**2)) == pytest.approx(0.2, rel=0.05)

    def test_deterministic_given_seed(self):
        a = BandNoiseVibration(0.1, 10.0, 50.0, seed=7)
        b = BandNoiseVibration(0.1, 10.0, 50.0, seed=7)
        t = np.linspace(0, 1, 100)
        assert np.array_equal(a.acceleration_array(t), b.acceleration_array(t))

    def test_different_seeds_differ(self):
        a = BandNoiseVibration(0.1, 10.0, 50.0, seed=1)
        b = BandNoiseVibration(0.1, 10.0, 50.0, seed=2)
        t = np.linspace(0, 1, 100)
        assert not np.array_equal(a.acceleration_array(t), b.acceleration_array(t))

    def test_dominant_inside_band(self):
        src = BandNoiseVibration(0.1, 30.0, 90.0, seed=5)
        assert 30.0 <= src.dominant_frequency(0.0) <= 90.0

    def test_rejects_bad_band(self):
        with pytest.raises(ModelError):
            BandNoiseVibration(0.1, 50.0, 50.0)


class TestComposite:
    def test_sum_of_components(self):
        s1 = SineVibration(0.3, 40.0)
        s2 = SineVibration(0.2, 90.0)
        comp = CompositeVibration([s1, s2])
        t = 0.0314
        assert comp.acceleration(t) == pytest.approx(
            s1.acceleration(t) + s2.acceleration(t)
        )

    def test_dominant_follows_strongest(self):
        comp = CompositeVibration(
            [SineVibration(0.5, 67.0), SineVibration(0.1, 33.0)]
        )
        assert comp.dominant_frequency(0.0) == 67.0

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            CompositeVibration([])
