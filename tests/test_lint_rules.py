"""Fixture-snippet tests pinning every ``repro-lint`` rule.

Each rule is pinned three ways: a minimal offending snippet is
caught, the compliant idiom passes, and a waiver is honored *and
counted*.  Waiver hygiene (REP100) gets the same treatment.  These
snippets are the rules' behavioural spec — a rule change that
re-classifies any of them is a deliberate, visible decision.
"""

import textwrap

import pytest

from repro.lint import LintConfig, lint_text
from repro.lint.core import WAIVER_RULE, PARSE_RULE, path_matches


def findings_for(source, relpath="src/repro/sim/module.py", config=None):
    result = lint_text(textwrap.dedent(source), relpath, config)
    return result


def rule_ids(result):
    return [f.rule for f in result.findings]


# -- path scoping --------------------------------------------------------------


class TestPathMatching:
    def test_suffix_match_ignores_checkout_prefix(self):
        assert path_matches(
            "src/repro/exec/store.py", ("repro/exec/store.py",)
        )
        assert path_matches(
            "repro/exec/store.py", ("repro/exec/store.py",)
        )
        assert not path_matches(
            "src/repro/exec/store_util.py", ("repro/exec/store.py",)
        )

    def test_directory_pattern_matches_segment(self):
        assert path_matches("benchmarks/foo.py", ("benchmarks/",))
        assert path_matches(
            "src/repro/exec/queue.py", ("repro/exec/",)
        )
        assert not path_matches(
            "src/repro/sim/engine.py", ("repro/exec/",)
        )


# -- REP101: unseeded / implicit RNG -------------------------------------------


class TestUnseededRandom:
    def test_unseeded_default_rng_fires(self):
        result = findings_for(
            """\
            from numpy.random import default_rng
            rng = default_rng()
            """
        )
        assert rule_ids(result) == ["REP101"]

    def test_unseeded_default_rng_via_alias_fires(self):
        result = findings_for(
            """\
            import numpy as np
            rng = np.random.default_rng()
            """
        )
        assert rule_ids(result) == ["REP101"]

    def test_none_seed_counts_as_unseeded(self):
        result = findings_for(
            """\
            import numpy as np
            rng = np.random.default_rng(None)
            """
        )
        assert rule_ids(result) == ["REP101"]

    def test_seeded_default_rng_passes(self):
        result = findings_for(
            """\
            import numpy as np
            def draw(seed):
                return np.random.default_rng(seed).normal()
            """
        )
        assert result.clean

    def test_module_level_random_fires(self):
        result = findings_for(
            """\
            import random
            jitter = random.random()
            """
        )
        assert rule_ids(result) == ["REP101"]

    def test_unseeded_random_instance_fires(self):
        result = findings_for(
            """\
            from random import Random
            rng = Random()
            """
        )
        assert rule_ids(result) == ["REP101"]

    def test_seeded_random_instance_passes(self):
        result = findings_for(
            """\
            from random import Random
            def make(seed):
                return Random(seed)
            """
        )
        assert result.clean

    def test_legacy_numpy_global_state_fires(self):
        result = findings_for(
            """\
            import numpy as np
            x = np.random.rand(3)
            """
        )
        assert rule_ids(result) == ["REP101"]

    def test_method_call_on_local_rng_passes(self):
        result = findings_for(
            """\
            class Sampler:
                def draw(self):
                    return self.rng.normal()
            """
        )
        assert result.clean

    def test_waiver_honored_and_counted(self):
        result = findings_for(
            """\
            import random
            jitter = random.random()  # repro-lint: allow[REP101] demo script, determinism not claimed
            """
        )
        assert result.clean
        assert result.waived == 1


# -- REP102: wall-clock quarantine ---------------------------------------------


class TestWallClock:
    def test_wallclock_in_critical_module_fires(self):
        result = findings_for(
            """\
            import time
            def stamp():
                return time.time()
            """,
            relpath="src/repro/exec/cache.py",
        )
        assert rule_ids(result) == ["REP102"]

    def test_datetime_now_in_fingerprint_helper_fires_anywhere(self):
        result = findings_for(
            """\
            from datetime import datetime
            def point_fingerprint(point):
                return (point, datetime.now())
            """,
            relpath="src/repro/sim/anything.py",
        )
        assert rule_ids(result) == ["REP102"]

    def test_wallclock_in_allowlisted_module_passes(self):
        result = findings_for(
            """\
            import time
            def lease_horizon(ttl):
                return time.time() + ttl
            """,
            relpath="src/repro/exec/queue.py",
        )
        assert result.clean

    def test_perf_counter_passes_in_critical_module(self):
        result = findings_for(
            """\
            import time
            def measure():
                return time.perf_counter()
            """,
            relpath="src/repro/exec/cache.py",
        )
        assert result.clean

    def test_waiver_honored(self):
        result = findings_for(
            """\
            import time
            def canonical_stamp():
                return time.time()  # repro-lint: allow[REP102] operator display only, never keyed
            """,
            relpath="src/repro/sim/anything.py",
        )
        assert result.clean
        assert result.waived == 1

    def test_obs_modules_are_allowlisted(self):
        """Telemetry timestamps wall-clock by design; the whole
        ``repro/obs`` package is allowlisted."""
        result = findings_for(
            """\
            import time
            def stamp_event():
                return time.time()
            """,
            relpath="src/repro/obs/events.py",
        )
        assert result.clean

    def test_fingerprint_code_importing_obs_still_fires(self):
        """The obs allowlist must not leak: fingerprint code that
        imports obs helpers keeps the wall-clock quarantine on its own
        ``time.time()`` calls."""
        result = findings_for(
            """\
            import time
            from repro.obs.events import emit_event
            from repro.obs.tracing import span
            def point_fingerprint(point):
                emit_event("fingerprinted")
                return (point, time.time())
            """,
            relpath="src/repro/sim/anything.py",
        )
        assert rule_ids(result) == ["REP102"]

    def test_critical_module_importing_obs_still_fires(self):
        result = findings_for(
            """\
            import time
            from repro.obs.catalog import instrument
            def stamp():
                instrument("repro_gc_runs_total").inc()
                return time.time()
            """,
            relpath="src/repro/exec/cache.py",
        )
        assert rule_ids(result) == ["REP102"]


# -- REP103: atomic durable writes ---------------------------------------------


class TestAtomicWrite:
    def test_bare_write_in_durable_module_fires(self):
        result = findings_for(
            """\
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            relpath="src/repro/exec/store.py",
        )
        assert rule_ids(result) == ["REP103"]

    def test_write_with_replace_idiom_passes(self):
        result = findings_for(
            """\
            import os
            def save(path, text):
                tmp = path + ".part"
                with open(tmp, "w") as handle:
                    handle.write(text)
                os.replace(tmp, path)
            """,
            relpath="src/repro/exec/store.py",
        )
        assert result.clean

    def test_read_mode_passes(self):
        result = findings_for(
            """\
            def load(path):
                with open(path) as handle:
                    return handle.read()
            """,
            relpath="src/repro/exec/store.py",
        )
        assert result.clean

    def test_non_durable_module_passes(self):
        result = findings_for(
            """\
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            relpath="src/repro/sim/scratch.py",
        )
        assert result.clean

    def test_benchmark_scripts_are_durable_scope(self):
        result = findings_for(
            """\
            def dump(path):
                with open(path, "w") as handle:
                    handle.write("{}")
            """,
            relpath="benchmarks/bench_thing.py",
        )
        assert rule_ids(result) == ["REP103"]

    def test_waiver_honored(self):
        result = findings_for(
            """\
            def save(path, text):
                # repro-lint: allow[REP103] scratch debug dump, never read back
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            relpath="src/repro/exec/store.py",
        )
        assert result.clean
        assert result.waived == 1


# -- REP104: SQLite discipline -------------------------------------------------


class TestSQLiteDiscipline:
    def test_direct_connect_fires(self):
        result = findings_for(
            """\
            import sqlite3
            def open_db(path):
                return sqlite3.connect(path)
            """,
            relpath="src/repro/exec/newstore.py",
        )
        assert rule_ids(result) == ["REP104"]

    def test_from_import_connect_fires(self):
        result = findings_for(
            """\
            from sqlite3 import connect
            def open_db(path):
                return connect(path)
            """,
            relpath="src/repro/exec/newstore.py",
        )
        assert rule_ids(result) == ["REP104"]

    def test_blessed_helper_module_passes(self):
        result = findings_for(
            """\
            import sqlite3
            def connect_wal(path):
                return sqlite3.connect(str(path))
            """,
            relpath="src/repro/exec/sqlite_util.py",
        )
        assert result.clean

    def test_helper_usage_passes(self):
        result = findings_for(
            """\
            from repro.exec.sqlite_util import connect_wal
            def open_db(path):
                return connect_wal(path, timeout=5.0)
            """,
            relpath="src/repro/exec/newstore.py",
        )
        assert result.clean

    def test_waiver_honored(self):
        result = findings_for(
            """\
            import sqlite3
            def probe(path):
                return sqlite3.connect(path)  # repro-lint: allow[REP104] read-only forensic probe, pragmas irrelevant
            """,
            relpath="src/repro/exec/newstore.py",
        )
        assert result.clean
        assert result.waived == 1


# -- REP105: taxonomy-routed broad handlers ------------------------------------


class TestBroadExcept:
    def test_swallowing_handler_in_substrate_fires(self):
        result = findings_for(
            """\
            def fetch(store, key):
                try:
                    return store.load(key)
                except Exception:
                    return None
            """,
            relpath="src/repro/exec/helper.py",
        )
        assert rule_ids(result) == ["REP105"]

    def test_reraising_handler_passes(self):
        result = findings_for(
            """\
            def fetch(store, key):
                try:
                    return store.load(key)
                except Exception as error:
                    raise RuntimeError("load failed") from error
            """,
            relpath="src/repro/exec/helper.py",
        )
        assert result.clean

    def test_taxonomy_routed_handler_passes(self):
        result = findings_for(
            """\
            from repro.errors import is_transient
            def fetch(store, key):
                try:
                    return store.load(key)
                except Exception as error:
                    if is_transient(error):
                        return None
                    raise
            """,
            relpath="src/repro/exec/helper.py",
        )
        assert result.clean

    def test_non_substrate_module_broad_handler_passes(self):
        result = findings_for(
            """\
            def fetch(store, key):
                try:
                    return store.load(key)
                except Exception:
                    return None
            """,
            relpath="src/repro/analysis/tables.py",
        )
        assert result.clean

    def test_bare_except_fires_everywhere(self):
        result = findings_for(
            """\
            def fetch(store, key):
                try:
                    return store.load(key)
                except:
                    return None
            """,
            relpath="src/repro/analysis/tables.py",
        )
        assert rule_ids(result) == ["REP105"]

    def test_waiver_above_except_line_honored(self):
        result = findings_for(
            """\
            def fetch(store, key):
                try:
                    return store.load(key)
                # repro-lint: allow[REP105] diagnostics only, a stats probe must never raise
                except Exception:
                    return None
            """,
            relpath="src/repro/exec/helper.py",
        )
        assert result.clean
        assert result.waived == 1


# -- REP100: waiver hygiene ----------------------------------------------------


class TestWaiverHygiene:
    def test_unused_waiver_is_a_finding(self):
        result = findings_for(
            """\
            def fine():
                return 1  # repro-lint: allow[REP101] nothing wrong here
            """
        )
        assert rule_ids(result) == [WAIVER_RULE]
        assert "unused waiver" in result.findings[0].message

    def test_waiver_without_reason_is_a_finding(self):
        result = findings_for(
            """\
            import random
            jitter = random.random()  # repro-lint: allow[REP101]
            """
        )
        # The reasonless waiver is rejected, so REP101 still fires too.
        assert sorted(rule_ids(result)) == [WAIVER_RULE, "REP101"]

    def test_waiver_for_unknown_rule_is_a_finding(self):
        result = findings_for(
            """\
            x = 1  # repro-lint: allow[REP999] no such rule
            """
        )
        assert rule_ids(result) == [WAIVER_RULE]

    def test_malformed_waiver_comment_is_a_finding(self):
        result = findings_for(
            """\
            x = 1  # repro-lint: allow REP101 forgot the brackets
            """
        )
        assert rule_ids(result) == [WAIVER_RULE]

    def test_waiver_mentioned_in_string_is_ignored(self):
        result = findings_for(
            '''\
            DOC = "write # repro-lint: allow[REP101] reason on the line"
            '''
        )
        assert result.clean

    def test_one_waiver_covers_multiple_rules(self):
        result = findings_for(
            """\
            import sqlite3, random
            def probe(path):
                # repro-lint: allow[REP104, REP101] fixture exercising two rules at once
                return sqlite3.connect(path), random.random()
            """,
            relpath="src/repro/exec/newstore.py",
        )
        assert result.clean
        assert result.waived == 2


# -- parse failures ------------------------------------------------------------


class TestParseRule:
    def test_syntax_error_is_reported_not_raised(self):
        result = findings_for("def broken(:\n")
        assert rule_ids(result) == [PARSE_RULE]


# -- configuration seams -------------------------------------------------------


class TestConfigOverrides:
    def test_custom_durable_scope(self):
        config = LintConfig(durable_modules=("special/",))
        offending = """\
        def save(path):
            with open(path, "w") as handle:
                handle.write("x")
        """
        fires = findings_for(
            offending, relpath="special/io.py", config=config
        )
        silent = findings_for(
            offending, relpath="src/repro/exec/store.py", config=config
        )
        assert rule_ids(fires) == ["REP103"]
        assert silent.clean
