"""The reusable behavioural contract every :class:`CacheStore` obeys.

One suite, every store: :mod:`test_store_contract` binds these tests
to the memory, file and SQLite stores, and any future implementation
(a distributed backend's store, say) gets the whole contract by
subclassing :class:`StoreContract` and filling in the factory hooks.

The hooks keep store-specific mechanics (how to corrupt an entry on
disk, how to reopen a store in a "fresh process") out of the tests
themselves; capabilities a store cannot offer (corrupting an
in-memory dict from outside, reopening a process-local store) are
declared via the ``supports_*`` flags and those tests skip.
"""

import math

import pytest

from repro.errors import ReproError
from repro.exec import EntryMeta, GCBudget, MemoryStore, collect
from repro.exec.lifecycle import merge_stores


class StoreContract:
    """Subclass per store kind; provide the hooks, inherit the tests."""

    #: the store survives close + reopen (``reopen`` hook available).
    supports_persistence = False
    #: entries can be corrupted behind the store's back
    #: (``corrupt_entry`` / ``write_version_mismatch`` hooks available).
    supports_corruption = False
    #: the store maintains per-entry hit counts.
    counts_hits = True
    #: ``stats.round_trips`` moves by exactly one per batched call.
    #: Retry wrappers re-issue a faulted batch, so the masking
    #: bindings relax this to "at least one, far fewer than one per
    #: entry".
    counts_round_trips_exactly = True

    # -- hooks -----------------------------------------------------------------

    def make_store(self, tmp_path):
        raise NotImplementedError

    def reopen(self, tmp_path):
        """A *new* store instance over the same persisted state."""
        raise NotImplementedError

    def corrupt_entry(self, store, tmp_path, fingerprint):
        """Make the stored blob for ``fingerprint`` unparsable."""
        raise NotImplementedError

    def write_version_mismatch(self, store, tmp_path, fingerprint):
        """Re-stamp the stored blob with a wrong schema version."""
        raise NotImplementedError

    @pytest.fixture
    def store(self, tmp_path):
        built = self.make_store(tmp_path)
        yield built
        built.close()

    # -- the blob-map contract -------------------------------------------------

    def test_roundtrip_and_len(self, store):
        assert store.load("fp1") is None
        store.persist("fp1", {"y": 1.5, "z": -2.0})
        store.persist("fp2", {"y": 0.25})
        assert store.load("fp1") == {"y": 1.5, "z": -2.0}
        assert len(store) == 2
        assert "fp1" in store and "missing" not in store
        assert store.stats.persists == 2
        assert store.stats.loads == 1

    def test_persist_overwrites(self, store):
        store.persist("fp", {"y": 1.0})
        store.persist("fp", {"y": 1.0})
        assert len(store) == 1
        assert store.load("fp") == {"y": 1.0}

    def test_discard_and_clear(self, store):
        store.persist("fp1", {"y": 1.0})
        store.persist("fp2", {"y": 2.0})
        assert store.discard("fp1") is True
        assert store.discard("fp1") is False
        assert len(store) == 1
        store.clear()
        assert len(store) == 0
        assert store.stats.invalidations == 2

    def test_items_iterates_everything(self, store):
        entries = {f"fp{i}": {"y": float(i)} for i in range(4)}
        for fingerprint, responses in entries.items():
            store.persist(fingerprint, responses)
        assert dict(store.items()) == entries

    def test_values_survive_bit_exactly(self, store):
        # Shortest-repr JSON roundtrips doubles exactly; the store
        # must preserve that (the cross-backend bit-identity contract
        # depends on it).
        values = {
            "tiny": 5e-324,
            "pi": math.pi,
            "third": 1.0 / 3.0,
            "big": 1.7976931348623157e308,
            "neg": -0.0,
        }
        store.persist("fp", values)
        loaded = store.load("fp")
        for name, value in values.items():
            assert loaded[name] == value
            assert math.copysign(1.0, loaded[name]) == math.copysign(
                1.0, value
            )

    def test_describe_names_the_store(self, store):
        assert store.describe()["store"] == store.name

    # -- metadata --------------------------------------------------------------

    def test_persist_stamps_metadata(self, store):
        store.persist("fp", {"y": 1.0})
        meta = store.entry_meta("fp")
        assert meta is not None
        assert meta.fingerprint == "fp"
        assert meta.created_at is not None
        assert meta.last_used_at is not None
        assert meta.last_used_at >= meta.created_at - 1e-6
        assert meta.size_bytes > 0
        assert store.entry_meta("absent") is None

    def test_entries_cover_every_fingerprint(self, store):
        for i in range(5):
            store.persist(f"fp{i}", {"y": float(i)})
        metas = {meta.fingerprint: meta for meta in store.entries()}
        assert sorted(metas) == [f"fp{i}" for i in range(5)]
        assert store.total_bytes() == sum(
            meta.size_bytes for meta in metas.values()
        )

    def test_load_refreshes_last_use(self, store):
        stamped = EntryMeta(
            fingerprint="fp", created_at=1000.0, last_used_at=1000.0
        )
        store.persist("fp", {"y": 1.0}, meta=stamped)
        before = store.entry_meta("fp")
        assert store.load("fp") == {"y": 1.0}
        after = store.entry_meta("fp")
        # The load happened *now*, far after the pinned 1970s stamp.
        assert after.last_used_at > before.last_used_at
        if self.counts_hits:
            assert after.hits == (before.hits or 0) + 1

    def test_persist_with_meta_preserves_provenance(self, store):
        # Export/merge ship entries with their history; a copied
        # entry must not look freshly created to TTL GC.
        meta = EntryMeta(
            fingerprint="fp",
            created_at=5000.0,
            last_used_at=6000.0,
            hits=7,
        )
        store.persist("fp", {"y": 1.0}, meta=meta)
        stored = store.entry_meta("fp")
        assert stored.created_at == pytest.approx(5000.0, abs=1.0)
        assert stored.last_used_at == pytest.approx(6000.0, abs=1.0)
        if self.counts_hits:
            assert stored.hits == 7

    def test_peek_reads_without_side_effects(self, store):
        stamped = EntryMeta(
            fingerprint="fp", created_at=1000.0, last_used_at=1000.0
        )
        store.persist("fp", {"y": 1.0}, meta=stamped)
        before = store.entry_meta("fp")
        loads_before = store.stats.loads
        assert store.peek("fp") == {"y": 1.0}
        assert store.peek("absent") is None
        after = store.entry_meta("fp")
        # No usage tracking: an inspected entry must not outlive a
        # genuinely hotter one under LRU GC.
        assert after.last_used_at == pytest.approx(
            before.last_used_at, abs=1.0
        )
        if self.counts_hits:
            assert after.hits == before.hits
        assert store.stats.loads == loads_before

    def test_peek_leaves_corrupt_entries_in_place(self, store, tmp_path):
        if not self.supports_corruption:
            pytest.skip("store state not reachable from outside")
        store.persist("fp", {"y": 1.0})
        self.corrupt_entry(store, tmp_path, "fp")
        assert store.peek("fp") is None
        # The evidence is still there for verify to report.
        assert len(store) == 1
        assert store.stats.invalidations == 0

    # -- batched I/O (the amortized-substrate contract) ------------------------

    def _round_trip_delta(self, store, before):
        delta = store.stats.round_trips - before
        if self.counts_round_trips_exactly:
            assert delta == 1
        else:
            # A retry wrapper may re-issue the faulted batch, but the
            # cost must stay O(1) in the batch size.
            assert 1 <= delta <= 3

    def test_load_many_empty_touches_nothing(self, store):
        before = store.stats.round_trips
        assert store.load_many([]) == {}
        assert store.stats.round_trips == before
        assert store.stats.loads == 0

    def test_load_many_partial_hits_in_first_occurrence_order(self, store):
        store.persist("fp2", {"y": 2.0})
        store.persist("fp0", {"y": 0.0})
        found = store.load_many(["fp0", "absent", "fp2", "ghost"])
        # Misses are absent (never None); order follows the input.
        assert list(found) == ["fp0", "fp2"]
        assert found == {"fp0": {"y": 0.0}, "fp2": {"y": 2.0}}

    def test_load_many_collapses_duplicates(self, store):
        store.persist("fp", {"y": 1.0})
        before_hits = store.entry_meta("fp").hits or 0
        found = store.load_many(["fp", "fp", "fp"])
        assert found == {"fp": {"y": 1.0}}
        if self.counts_hits and self.counts_round_trips_exactly:
            # One lookup, not three.
            assert (store.entry_meta("fp").hits or 0) == before_hits + 1

    def test_load_many_is_one_round_trip(self, store):
        for i in range(4):
            store.persist(f"fp{i}", {"y": float(i)})
        before = store.stats.round_trips
        found = store.load_many([f"fp{i}" for i in range(4)])
        assert len(found) == 4
        self._round_trip_delta(store, before)

    def test_load_many_refreshes_usage_like_load(self, store):
        stamped = EntryMeta(
            fingerprint="fp", created_at=1000.0, last_used_at=1000.0
        )
        store.persist("fp", {"y": 1.0}, meta=stamped)
        before = store.entry_meta("fp")
        assert store.load_many(["fp"]) == {"fp": {"y": 1.0}}
        after = store.entry_meta("fp")
        assert after.last_used_at > before.last_used_at

    def test_persist_many_empty_touches_nothing(self, store):
        before = store.stats.round_trips
        store.persist_many([])
        assert store.stats.round_trips == before
        assert len(store) == 0

    def test_persist_many_is_one_round_trip(self, store):
        before = store.stats.round_trips
        store.persist_many(
            [(f"fp{i}", {"y": float(i)}) for i in range(3)]
        )
        self._round_trip_delta(store, before)
        assert store.load_many([f"fp{i}" for i in range(3)]) == {
            f"fp{i}": {"y": float(i)} for i in range(3)
        }

    def test_persist_many_duplicate_fingerprint_last_wins(self, store):
        store.persist_many(
            [("fp", {"y": 1.0}), ("other", {"y": 5.0}), ("fp", {"y": 2.0})]
        )
        assert len(store) == 2
        assert store.load("fp") == {"y": 2.0}

    def test_persist_many_entries_survive_reopen(self, store, tmp_path):
        if not self.supports_persistence:
            pytest.skip("process-local store")
        store.persist_many([("fp0", {"y": 0.5}), ("fp1", {"y": 1.5})])
        store.close()
        fresh = self.reopen(tmp_path)
        try:
            assert fresh.load_many(["fp0", "fp1"]) == {
                "fp0": {"y": 0.5},
                "fp1": {"y": 1.5},
            }
        finally:
            fresh.close()

    def test_load_many_skips_corrupt_entries(self, store, tmp_path):
        if not self.supports_corruption:
            pytest.skip("store state not reachable from outside")
        store.persist("good", {"y": 1.0})
        store.persist("bad", {"y": 2.0})
        self.corrupt_entry(store, tmp_path, "bad")
        assert store.load_many(["good", "bad"]) == {"good": {"y": 1.0}}

    # -- lifecycle hooks -------------------------------------------------------

    def test_verify_clean_store(self, store):
        for i in range(3):
            store.persist(f"fp{i}", {"y": float(i)})
        report = store.verify()
        assert report.clean
        assert report.scanned == 3 and report.valid == 3
        assert report.invalid == 0 and report.partials == 0
        assert report.total_bytes == store.total_bytes()

    def test_compact_runs_and_counts(self, store):
        store.persist("fp", {"y": 1.0})
        report = store.compact(grace_seconds=0.0)
        assert report.store == store.name
        assert store.stats.compactions == 1
        # Compaction never loses live entries.
        assert store.load("fp") == {"y": 1.0}

    def test_gc_count_budget_lru_order(self, store):
        for i in range(6):
            store.persist(
                f"fp{i}",
                {"y": float(i)},
                meta=EntryMeta(
                    fingerprint=f"fp{i}",
                    created_at=1000.0 + i,
                    last_used_at=1000.0 + i,
                ),
            )
        report = collect(store, GCBudget(max_entries=2, policy="lru"))
        assert report.evicted == 4 and report.budget_evicted == 4
        assert len(store) == 2
        assert "fp4" in store and "fp5" in store
        assert store.stats.gc_evictions == 4
        assert report.victims == [f"fp{i}" for i in range(4)]

    def test_gc_ttl(self, store):
        store.persist(
            "old",
            {"y": 1.0},
            meta=EntryMeta(fingerprint="old", created_at=1000.0),
        )
        store.persist("fresh", {"y": 2.0})
        report = collect(
            store, GCBudget(max_age_seconds=3600.0)
        )
        assert report.ttl_evicted == 1
        assert "old" not in store and "fresh" in store

    def test_gc_byte_budget(self, store):
        for i in range(8):
            store.persist(f"fp{i}", {"y": float(i), "pad": 1.0 / 3.0})
        cap = store.total_bytes() // 2
        report = collect(store, GCBudget(max_bytes=cap))
        assert report.evicted > 0
        assert store.total_bytes() <= cap
        assert report.bytes_after == store.total_bytes()

    def test_gc_dry_run_touches_nothing(self, store):
        for i in range(4):
            store.persist(f"fp{i}", {"y": float(i)})
        report = collect(store, GCBudget(max_entries=1), dry_run=True)
        assert report.dry_run and report.evicted == 3
        assert len(report.victims) == 3
        assert len(store) == 4
        assert store.stats.gc_evictions == 0

    def test_gc_unbounded_budget_is_noop(self, store):
        store.persist("fp", {"y": 1.0})
        report = collect(store, GCBudget())
        assert report.evicted == 0 and len(store) == 1

    def test_gc_unknown_policy_rejected(self, store):
        store.persist("fp", {"y": 1.0})
        with pytest.raises(ReproError):
            collect(store, GCBudget(max_entries=1, policy="mystery"))

    def test_merge_into_and_from_memory(self, store):
        # Export into a scratch store, wipe, merge back: a full
        # shipping round trip preserving payloads and provenance.
        for i in range(3):
            store.persist(
                f"fp{i}",
                {"y": float(i)},
                meta=EntryMeta(fingerprint=f"fp{i}", created_at=2000.0 + i),
            )
        scratch = MemoryStore()
        report = store.export_to(scratch)
        assert report.copied == 3 and report.skipped == 0
        store.clear()
        back = store.merge_from(scratch)
        assert back.copied == 3
        assert dict(store.items()) == dict(scratch.items())
        meta = store.entry_meta("fp1")
        assert meta.created_at == pytest.approx(2001.0, abs=1.0)
        # Second merge: everything collides at equal age, local wins.
        again = store.merge_from(scratch)
        assert again.copied == 0 and again.skipped == 3

    def test_merge_newest_wins(self, store):
        scratch = MemoryStore()
        store.persist(
            "fp",
            {"y": 1.0},
            meta=EntryMeta(fingerprint="fp", created_at=1000.0),
        )
        scratch.persist(
            "fp",
            {"y": 1.0},
            meta=EntryMeta(fingerprint="fp", created_at=9000.0, hits=3),
        )
        report = merge_stores(store, scratch)
        assert report.copied == 1 and report.skipped == 0
        assert store.entry_meta("fp").created_at == pytest.approx(
            9000.0, abs=1.0
        )

    def test_merge_self_rejected(self, store):
        with pytest.raises(ReproError):
            merge_stores(store, store)

    # -- durability and corruption (capability-gated) --------------------------

    def test_entries_survive_reopen(self, store, tmp_path):
        if not self.supports_persistence:
            pytest.skip("process-local store")
        store.persist("fp", {"y": 4.25})
        store.close()
        fresh = self.reopen(tmp_path)
        try:
            assert fresh.load("fp") == {"y": 4.25}
        finally:
            fresh.close()

    def test_corrupt_entry_is_a_miss_not_an_error(self, store, tmp_path):
        if not self.supports_corruption:
            pytest.skip("store state not reachable from outside")
        store.persist("fp", {"y": 1.0})
        self.corrupt_entry(store, tmp_path, "fp")
        assert store.load("fp") is None
        assert store.stats.invalidations == 1

    def test_version_mismatch_is_a_miss_not_an_error(
        self, store, tmp_path
    ):
        if not self.supports_corruption:
            pytest.skip("store state not reachable from outside")
        store.persist("fp", {"y": 1.0})
        self.write_version_mismatch(store, tmp_path, "fp")
        assert store.load("fp") is None
        assert store.stats.invalidations == 1

    def test_verify_flags_and_repairs_corruption(self, store, tmp_path):
        if not self.supports_corruption:
            pytest.skip("store state not reachable from outside")
        store.persist("good", {"y": 1.0})
        store.persist("bad", {"y": 2.0})
        self.corrupt_entry(store, tmp_path, "bad")
        report = store.verify()
        assert not report.clean
        assert report.valid == 1 and report.invalid == 1
        # Non-destructive by default: the corpse is still there.
        assert len(store) == 2
        repaired = store.verify(repair=True)
        assert repaired.repaired == 1
        assert store.verify().clean
        assert store.load("good") == {"y": 1.0}
