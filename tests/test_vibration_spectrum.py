"""Dominant-frequency estimators."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.vibration.sources import MultiToneVibration, SineVibration
from repro.vibration.spectrum import (
    estimate_dominant_frequency,
    fft_dominant_frequency,
    zero_crossing_frequency,
)


def _sine_samples(freq, rate=1024.0, n=1024, amp=1.0, phase=0.4):
    t = np.arange(n) / rate
    return amp * np.sin(2 * np.pi * freq * t + phase)


class TestFFTEstimator:
    def test_on_bin_tone(self):
        # 64 Hz with 1024 samples at 1024 Hz sits exactly on a bin.
        samples = _sine_samples(64.0)
        assert fft_dominant_frequency(samples, 1024.0) == pytest.approx(
            64.0, abs=0.05
        )

    def test_off_bin_interpolation(self):
        samples = _sine_samples(67.3)
        est = fft_dominant_frequency(samples, 1024.0)
        assert est == pytest.approx(67.3, abs=0.2)

    def test_zero_signal_returns_zero(self):
        assert fft_dominant_frequency(np.zeros(256), 1000.0) == 0.0

    def test_picks_strongest_of_two_tones(self):
        t = np.arange(2048) / 2048.0
        samples = 0.2 * np.sin(2 * np.pi * 50 * t) + 1.0 * np.sin(
            2 * np.pi * 120 * t
        )
        assert fft_dominant_frequency(samples, 2048.0) == pytest.approx(
            120.0, abs=0.5
        )

    def test_rejects_short_capture(self):
        with pytest.raises(ModelError):
            fft_dominant_frequency(np.zeros(4), 100.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ModelError):
            fft_dominant_frequency(np.zeros(64), 0.0)


class TestZeroCrossing:
    def test_clean_tone(self):
        samples = _sine_samples(67.0, n=2048)
        est = zero_crossing_frequency(samples, 1024.0)
        assert est == pytest.approx(67.0, abs=0.3)

    def test_silence_returns_zero(self):
        assert zero_crossing_frequency(np.zeros(64), 1000.0) == 0.0

    def test_dc_offset_bias(self):
        # Zero-crossing estimation degrades with DC offset; it should
        # still return something positive, not crash.
        samples = _sine_samples(50.0, n=2048) + 0.5
        est = zero_crossing_frequency(samples, 1024.0)
        assert est > 0.0


class TestEstimateFromSource:
    def test_fft_on_source(self):
        src = SineVibration(0.6, 67.0)
        est = estimate_dominant_frequency(src, t_start=3.0, capture_time=0.5)
        assert est == pytest.approx(67.0, abs=0.3)

    def test_zero_crossing_method(self):
        src = SineVibration(0.6, 67.0)
        est = estimate_dominant_frequency(
            src, t_start=0.0, method="zero-crossing"
        )
        assert est == pytest.approx(67.0, abs=0.5)

    def test_longer_capture_is_finer(self):
        src = MultiToneVibration([(0.6, 67.4, 0.0), (0.1, 50.0, 0.0)])
        short = estimate_dominant_frequency(src, 0.0, capture_time=0.25)
        long = estimate_dominant_frequency(src, 0.0, capture_time=2.0)
        assert abs(long - 67.4) <= abs(short - 67.4) + 0.05

    def test_unknown_method(self):
        with pytest.raises(ModelError):
            estimate_dominant_frequency(
                SineVibration(1.0, 10.0), 0.0, method="wavelet"
            )

    def test_bad_capture_time(self):
        with pytest.raises(ModelError):
            estimate_dominant_frequency(
                SineVibration(1.0, 10.0), 0.0, capture_time=0.0
            )
