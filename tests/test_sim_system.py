"""SystemModel: state layout, mode machinery, PWL/smooth consistency."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.harvester.tuning import TunableHarvester
from repro.power.diode import Diode
from repro.power.rectifier import (
    build_bridge_circuit,
    build_resistive_load_circuit,
)
from repro.power.regulator import Regulator
from repro.power.supercap import Supercapacitor
from repro.sim.system import SystemConfig, SystemModel
from repro.vibration.sources import SineVibration


def _bridge_system():
    return SystemModel(
        SystemConfig(
            harvester=TunableHarvester(),
            power=build_bridge_circuit(Supercapacitor()),
            regulator=Regulator(),
            node=None,
            controller=None,
            vibration=SineVibration(0.6, 67.0),
        )
    )


class TestLayout:
    def test_state_size(self):
        system = _bridge_system()
        # z, vz, i_coil + 4 circuit nodes (in_p, in_n, bus, store).
        assert system.state_size == 3 + 4

    def test_boundary_count(self):
        system = _bridge_system()
        # 2 end stops + 2 per diode * 4 diodes.
        assert system.n_boundaries == 2 + 8
        x = system.initial_state()
        assert system.boundaries(x).shape == (10,)

    def test_initial_state_quiescent(self):
        system = _bridge_system()
        x = system.initial_state()
        assert x[0] == 0.0 and x[1] == 0.0 and x[2] == 0.0
        assert system.store_voltage(x) == pytest.approx(2.6)

    def test_measurement_helpers(self):
        system = _bridge_system()
        x = system.initial_state()
        x[1] = 0.05
        x[2] = 1e-3
        phi = system.harvester.params.transduction_factor
        assert system.transduced_power(x) == pytest.approx(phi * 0.05 * 1e-3)
        assert system.coil_current(x) == 1e-3


class TestModes:
    def test_rest_mode_all_off(self):
        system = _bridge_system()
        region, diodes = system.mode_of(system.initial_state())
        assert region == 0
        # At rest with the store charged, the bridge diodes sit in
        # reverse/off.
        assert all(s == 0 for s in diodes)

    def test_end_stop_region_in_mode(self):
        system = _bridge_system()
        x = system.initial_state()
        x[0] = 2e-3  # beyond the 1.5 mm stop
        region, _ = system.mode_of(x)
        assert region == 1
        x[0] = -2e-3
        region, _ = system.mode_of(x)
        assert region == -1

    def test_mode_from_boundaries_roundtrip(self):
        system = _bridge_system()
        rng = np.random.default_rng(3)
        for _ in range(20):
            x = system.initial_state()
            x[0] = rng.uniform(-2e-3, 2e-3)
            x[3:] += rng.uniform(-0.4, 0.4, system.state_size - 3)
            assert system.mode_of(x) == SystemModel.mode_from_boundaries(
                system.boundaries(x)
            )


class TestPWLSmoothConsistency:
    """The PWL (A, B) and the smooth RHS agree wherever the diode
    models themselves agree: on the resistive circuit they must match
    to machine precision."""

    def test_resistive_circuit_exact_match(self):
        system = SystemModel(
            SystemConfig(
                harvester=TunableHarvester(),
                power=build_resistive_load_circuit(5000.0),
                regulator=Regulator(),
                node=None,
                controller=None,
                vibration=SineVibration(0.6, 67.0),
            )
        )
        gap = system.config.resolve_initial_gap()
        k_eff = system.k_eff(gap)
        rng = np.random.default_rng(7)
        for _ in range(10):
            x = rng.normal(0, 1e-3, system.state_size)
            accel = rng.normal(0, 1.0)
            # The mode must match the state (large |z| engages the end
            # stop, which changes the linear system).
            a_mat, b_mat = system.linear_system(k_eff, system.mode_of(x))
            u = np.array([1.0, accel, 0.0])
            linear = a_mat @ x + b_mat @ u
            smooth = system.f_smooth(x, accel, 0.0, k_eff)
            assert np.allclose(linear, smooth, rtol=1e-9, atol=1e-10)

    def test_bridge_matches_in_off_mode(self):
        # With all junctions well below the first breakpoint, the PWL
        # off-branch (g_off) and the Shockley small-signal current
        # differ; but the *linear structure* (mechanics, coil, resistor
        # stamps) must agree: compare with diodes effectively dead.
        system = _bridge_system()
        gap = system.config.resolve_initial_gap()
        k_eff = system.k_eff(gap)
        x = system.initial_state()  # junctions strongly reversed
        a_mat, b_mat = system.linear_system(k_eff, system.mode_of(x))
        u = np.array([1.0, 0.3, 1e-5])
        linear = a_mat @ x + b_mat @ u
        smooth = system.f_smooth(x, 0.3, 1e-5, k_eff)
        # Mechanics and coil rows are exactly shared.
        assert np.allclose(linear[:3], smooth[:3], rtol=1e-10)
        # Circuit rows differ only by the Shockley reverse *saturation*
        # current (-I_s per reverse-biased diode) that the PWL off
        # branch does not carry; bound that difference physically:
        # worst case is all diodes' I_s dumped into the smallest node
        # capacitance.
        d0 = Diode.schottky()
        caps = np.diag(system.matrices.cap_matrix)
        bound = (
            system.matrices.n_diodes
            * d0.saturation_current
            / float(np.min(caps))
        )
        assert np.all(np.abs(linear[3:] - smooth[3:]) <= bound)

    def test_jacobian_matches_numeric(self):
        system = _bridge_system()
        gap = system.config.resolve_initial_gap()
        k_eff = system.k_eff(gap)
        x = system.initial_state()
        x[1] = 0.02
        x[2] = 5e-5
        jac = system.jac_smooth(x, k_eff)
        eps = 1e-8
        for j in range(system.state_size):
            dx = np.zeros(system.state_size)
            dx[j] = eps
            numeric = (
                system.f_smooth(x + dx, 0.0, 0.0, k_eff)
                - system.f_smooth(x - dx, 0.0, 0.0, k_eff)
            ) / (2 * eps)
            scale = np.maximum(np.abs(jac[:, j]), 1.0)
            assert np.allclose(
                jac[:, j] / scale, numeric / scale, atol=1e-4
            )


class TestConfig:
    def test_initial_gap_pretune(self):
        cfg = SystemConfig(
            harvester=TunableHarvester(),
            power=build_bridge_circuit(Supercapacitor()),
            regulator=Regulator(),
            node=None,
            controller=None,
            vibration=SineVibration(0.6, 70.0),
            pretune=True,
        )
        gap = cfg.resolve_initial_gap()
        assert cfg.harvester.resonant_frequency(gap) == pytest.approx(70.0)

    def test_initial_gap_detuned(self):
        cfg = SystemConfig(
            harvester=TunableHarvester(),
            power=build_bridge_circuit(Supercapacitor()),
            regulator=Regulator(),
            node=None,
            controller=None,
            vibration=SineVibration(0.6, 70.0),
            pretune=False,
        )
        assert cfg.resolve_initial_gap() == cfg.harvester.default_gap()

    def test_explicit_gap_clamped(self):
        cfg = SystemConfig(
            harvester=TunableHarvester(),
            power=build_bridge_circuit(Supercapacitor()),
            regulator=Regulator(),
            node=None,
            controller=None,
            vibration=SineVibration(0.6, 70.0),
            initial_gap=1.0,
        )
        assert cfg.resolve_initial_gap() == cfg.harvester.tuning.gap_max

    def test_missing_coil_input_rejected(self):
        from repro.power.netlist import Circuit
        from repro.power.rectifier import PowerCircuit

        c = Circuit("no-coil")
        a = c.add_node("a")
        c.add_capacitor("ca", a, 0, 1e-6)
        pc = PowerCircuit(
            matrices=c.assemble(),
            topology="broken",
            supercap=None,
            input_plus="a",
            bus_node="a",
            store_node=None,
        )
        with pytest.raises(ModelError, match="coil"):
            SystemModel(
                SystemConfig(
                    harvester=TunableHarvester(),
                    power=pc,
                    regulator=Regulator(),
                    node=None,
                    controller=None,
                    vibration=SineVibration(0.6, 67.0),
                )
            )
