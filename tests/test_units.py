"""Units and constants."""

import math

import pytest

from repro import units


def test_hz_rad_roundtrip():
    assert units.rad_to_hz(units.hz_to_rad(67.0)) == pytest.approx(67.0)


def test_hz_to_rad_value():
    assert units.hz_to_rad(1.0) == pytest.approx(2.0 * math.pi)


def test_g_conversion_roundtrip():
    assert units.ms2_to_g(units.g_to_ms2(0.06)) == pytest.approx(0.06)


def test_one_g_is_standard_gravity():
    assert units.g_to_ms2(1.0) == pytest.approx(9.80665)


def test_db_of_ten_is_ten():
    assert units.db(10.0) == pytest.approx(10.0)


def test_db_roundtrip():
    assert units.from_db(units.db(3.7)) == pytest.approx(3.7)


def test_db_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.db(0.0)
    with pytest.raises(ValueError):
        units.db(-1.0)


def test_thermal_voltage_at_27c():
    # kT/q at 300.15 K is about 25.9 mV.
    assert units.thermal_voltage(27.0) == pytest.approx(0.02585, rel=1e-3)


def test_thermal_voltage_increases_with_temperature():
    assert units.thermal_voltage(85.0) > units.thermal_voltage(27.0)


def test_prefixes():
    assert units.MICRO * units.MEGA == pytest.approx(1.0)
    assert units.MILLI * units.KILO == pytest.approx(1.0)
    assert units.NANO * 1e9 == pytest.approx(1.0)
