"""``repro-lint`` CLI: output modes, exit codes, baseline, self-host.

The last class is the acceptance gate itself: the repository must
lint clean (zero findings, zero baseline entries, every waiver
reasoned) — the same invariant CI's static-analysis job enforces,
kept in tier-1 so it cannot rot between CI configs.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import all_rules
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

OFFENDING = textwrap.dedent(
    """\
    import random
    jitter = random.random()
    """
)

CLEAN = textwrap.dedent(
    """\
    from random import Random


    def make(seed):
        return Random(seed)
    """
)


@pytest.fixture
def offending_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "noise.py").write_text(OFFENDING)
    return tmp_path


@pytest.fixture
def clean_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "noise.py").write_text(CLEAN)
    return tmp_path


class TestCLI:
    def test_findings_exit_2_and_render_path_line(
        self, offending_tree, capsys
    ):
        code = main([str(offending_tree / "src")])
        out = capsys.readouterr().out
        assert code == 2
        assert "REP101" in out
        assert "noise.py:2" in out

    def test_clean_tree_exits_0(self, clean_tree, capsys):
        code = main([str(clean_tree / "src")])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_json_output_shape(self, offending_tree, capsys):
        code = main([str(offending_tree / "src"), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["clean"] is False
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP101"
        assert finding["line"] == 2
        assert finding["severity"] == "error"

    def test_list_rules_covers_the_whole_pack(self, capsys):
        code = main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule_id in (
            "REP101",
            "REP102",
            "REP103",
            "REP104",
            "REP105",
            "REP106",
        ):
            assert rule_id in out

    def test_rule_pack_ids_and_metadata(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert ids == sorted(ids)
        assert {
            "REP101",
            "REP102",
            "REP103",
            "REP104",
            "REP105",
            "REP106",
        } <= set(ids)
        for rule in rules:
            assert rule.title and rule.rationale
            assert rule.severity == "error"

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        code = main([str(tmp_path / "nope")])
        assert code == 1
        assert "repro-lint:" in capsys.readouterr().err

    def test_baseline_roundtrip_suppresses_known_findings(
        self, offending_tree, capsys, monkeypatch
    ):
        monkeypatch.chdir(offending_tree)
        baseline = offending_tree / "lint_baseline.json"
        code = main(["src", "--write-baseline", str(baseline)])
        assert code == 0
        entries = json.loads(baseline.read_text())["entries"]
        assert len(entries) == 1
        assert entries[0]["rule"] == "REP101"

        capsys.readouterr()
        code = main(["src", "--baseline", str(baseline), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["summary"]["suppressed"] == 1
        assert payload["summary"]["clean"] is True

    def test_baseline_does_not_mask_new_findings(
        self, offending_tree, capsys, monkeypatch
    ):
        monkeypatch.chdir(offending_tree)
        baseline = offending_tree / "lint_baseline.json"
        main(["src", "--write-baseline", str(baseline)])
        noise = (
            offending_tree / "src" / "repro" / "sim" / "noise.py"
        )
        noise.write_text(
            OFFENDING + "more = random.randint(0, 10)\n"
        )
        capsys.readouterr()
        code = main(["src", "--baseline", str(baseline), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["suppressed"] == 1


class TestSelfHosting:
    """The acceptance criterion, enforced from tier-1."""

    def test_repository_lints_clean(self, capsys):
        code = main(
            [
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "benchmarks"),
                "--tests-dir",
                str(REPO_ROOT / "tests"),
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0, payload["findings"]
        assert payload["summary"]["clean"] is True
        # Waivers exist (the REP105 audit) and every one is used —
        # an unused waiver would itself be a REP100 finding.
        assert payload["summary"]["waived"] > 0

    def test_contract_coverage_sees_the_real_suites(self):
        # REP106 runs against the real tests/ tree: sanity-check that
        # the rule actually resolved the contract modules (a bogus
        # tests dir would silently skip it and weaken the gate).
        from repro.lint import LintConfig
        from repro.lint.core import ProjectContext

        config = LintConfig()
        for modules in config.contract_suites.values():
            assert any(
                (REPO_ROOT / "tests" / name).is_file()
                for name in modules
            ), modules
