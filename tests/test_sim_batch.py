"""Batched envelope integration: bit-identity against the scalar engine.

The batched core's whole contract is that vectorizing over the batch
axis changes *nothing*: every trace sample, event, counter and energy
ledger entry must equal the per-point :class:`EnvelopeEngine`'s output
exactly — no tolerance.  These tests sweep the state machine's
branches (brownout/restart, retuning actuation, both rectifier
topologies, drifting and stepped sources) under both map key modes so
the identity is pinned where it is hardest to keep, not just on the
easy stationary path.
"""

import dataclasses
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.presets import default_harvester, default_system
from repro.sim import EnvelopeBatchEngine, simulate_batch
from repro.sim.envelope import (
    EnvelopeEngine,
    EnvelopeOptions,
    charging_cache_stats,
    clear_charging_cache,
)
from repro.vibration.sources import (
    DriftingSineVibration,
    SineVibration,
    SteppedFrequencyVibration,
)

TESTS_DIR = Path(__file__).resolve().parent
SRC_DIR = TESTS_DIR.parent / "src"

#: Very fast map options: bit-identity does not depend on map
#: fidelity, so these are cut harder than test_sim_envelope.FAST —
#: the suite sweeps 7 scenarios x 2 key modes x 2 engines.
FAST = EnvelopeOptions(
    map_v_points=3,
    map_nr_warmup_cycles=3,
    map_warmup_cycles=6,
    map_measure_cycles=4,
    map_max_blocks=2,
    map_steps_per_period=60,
    # Coarse cache bins: a drifting source then shares a handful of
    # grids instead of building one per 0.25 Hz of drift.
    freq_quantum=2.0,
    resonance_quantum=4.0,
    gap_quantum=1.0e-3,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_charging_cache()
    yield
    clear_charging_cache()


def _scenario_factories(harvester):
    """Fresh-config factories covering the engine's branch space.

    Each call builds a *new* config (the engines mutate node and
    controller state); the harvester is deliberately shared — that is
    the toolkit's production aliasing pattern.
    """
    return [
        # Plain stationary mission on the bridge rectifier.
        lambda: default_system(harvester=harvester),
        # Cold start: brownout then regulator restart.
        lambda: default_system(v_initial=1.0, harvester=harvester),
        # Aggressive transmit schedule: overdraw dips.
        lambda: default_system(
            capacitance=0.15,
            tx_interval=3.0,
            payload_bits=1024,
            harvester=harvester,
        ),
        # Drifting excitation: dynamic map lookups and retunes.
        lambda: default_system(
            vibration=DriftingSineVibration(2.5, 64.0, 68.0, 0.01),
            check_interval=60.0,
            harvester=harvester,
        ),
        # Stepped excitation: discontinuous operating points.
        lambda: default_system(
            vibration=SteppedFrequencyVibration(
                2.5, steps=((0.0, 62.0), (150.0, 70.0), (300.0, 66.0))
            ),
            check_interval=60.0,
            harvester=harvester,
        ),
        # Voltage-multiplier topology (Newton-mapped grids).
        lambda: default_system(
            topology="multiplier", n_stages=1, harvester=harvester
        ),
        # Detuned stationary source: the controller must retune.
        lambda: default_system(
            vibration=SineVibration(2.5, 71.0),
            check_interval=60.0,
            harvester=harvester,
        ),
    ]


def _assert_identical(batch_result, scalar_result):
    assert batch_result.engine == scalar_result.engine
    assert batch_result.t_end == scalar_result.t_end
    assert set(batch_result.traces) == set(scalar_result.traces)
    for name, expected in scalar_result.traces.items():
        got = batch_result.traces[name]
        assert got.shape == expected.shape, name
        assert np.array_equal(got, expected), name
    assert batch_result.events == scalar_result.events
    assert batch_result.counters == scalar_result.counters
    assert batch_result.energies == scalar_result.energies
    assert batch_result.downtime == scalar_result.downtime
    assert batch_result.meta == scalar_result.meta


class TestBatchBitIdentity:
    @pytest.mark.parametrize("key_mode", ["mismatch", "absolute"])
    def test_batch_matches_per_point_exactly(self, key_mode):
        options = dataclasses.replace(FAST, map_key_mode=key_mode)
        t_end = 300.0
        harvester = default_harvester()
        factories = _scenario_factories(harvester)

        batch_results = simulate_batch(
            [make() for make in factories], t_end, options=options
        )
        for make, batch_result in zip(factories, batch_results):
            scalar_result = EnvelopeEngine(make(), options).run(t_end)
            _assert_identical(batch_result, scalar_result)

    def test_batch_of_one_matches(self):
        harvester = default_harvester()
        [batch_result] = simulate_batch(
            [default_system(harvester=harvester)], 200.0, options=FAST
        )
        scalar_result = EnvelopeEngine(
            default_system(harvester=harvester), FAST
        ).run(200.0)
        _assert_identical(batch_result, scalar_result)

    def test_result_order_follows_config_order(self):
        harvester = default_harvester()
        configs = [
            default_system(tx_interval=4.0, harvester=harvester),
            default_system(tx_interval=20.0, harvester=harvester),
        ]
        fast, slow = simulate_batch(configs, 300.0, options=FAST)
        # More frequent transmissions must deliver more packets.
        assert (
            fast.counters["packets_delivered"]
            > slow.counters["packets_delivered"]
        )

    def test_tick_callback_fires(self):
        harvester = default_harvester()
        ticks = []
        simulate_batch(
            [default_system(harvester=harvester)] * 0
            + [
                default_system(harvester=harvester),
                default_system(tx_interval=5.0, harvester=harvester),
            ],
            100.0,
            options=FAST,
            tick=lambda: ticks.append(1),
        )
        assert len(ticks) > 0

    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError):
            EnvelopeBatchEngine([])

    def test_shared_mutable_parts_rejected(self):
        harvester = default_harvester()
        config = default_system(harvester=harvester)
        with pytest.raises(SimulationError):
            simulate_batch([config, config], 100.0, options=FAST)


class TestBatchMapSharing:
    def test_identical_points_share_grids(self):
        harvester = default_harvester()
        configs = [
            default_system(capacitance=c, harvester=harvester)
            for c in (0.2, 0.4, 0.8)
        ]
        simulate_batch(configs, 120.0, options=FAST)
        # Storage capacitance is not part of the map key: one grid
        # serves the whole batch (the single-group interp fast path).
        stats = charging_cache_stats()
        assert stats["built"] == stats["size"]
        assert stats["size"] <= 2
