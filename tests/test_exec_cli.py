"""The ``repro-cache`` CLI: every subcommand over file and SQLite stores.

The CLI is the operator surface of the lifecycle subsystem; these
tests drive :func:`repro.exec.cli.main` in-process (fast, assertable
output) and cover the exit-code contract CI gates on: 0 for success /
clean, 1 for operator errors, 2 when ``verify`` leaves problems.
"""

import argparse
import json
import math

import pytest

from repro.exec import (
    EntryMeta,
    EvaluationEngine,
    FileStore,
    SQLiteStore,
    resolve_store,
)
from repro.exec.cli import main, parse_bytes, parse_duration


@pytest.fixture(params=["file", "sqlite"])
def populated(request, tmp_path):
    """(cli store argument, entry count) for both persistent kinds."""
    if request.param == "file":
        spec = tmp_path / "evals"
        store = FileStore(spec)
    else:
        spec = tmp_path / "evals.sqlite"
        store = SQLiteStore(spec)
    for i in range(6):
        store.persist(
            f"{i:02d}" + "ab" * 29,  # 60-char hex-ish fingerprints
            {"power": 1.5 * i, "rate": 2.0 + i},
            meta=EntryMeta(
                fingerprint="",
                created_at=1_700_000_000.0 + 100.0 * i,
                last_used_at=1_700_000_000.0 + 100.0 * i,
            ),
        )
    store.close()
    return str(spec), 6


class TestParsers:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("500", 500),
            ("512k", 512 * 1024),
            ("100MB", 100 * 1024**2),
            ("2GiB", 2 * 1024**3),
            ("1.5m", int(1.5 * 1024**2)),
            ("64b", 64),
        ],
    )
    def test_sizes(self, text, expected):
        assert parse_bytes(text) == expected

    @pytest.mark.parametrize(
        "text,expected",
        [("90", 90.0), ("90s", 90.0), ("15m", 900.0), ("12h", 43200.0),
         ("7d", 604800.0), ("2w", 1209600.0), ("1.5h", 5400.0)],
    )
    def test_durations(self, text, expected):
        assert parse_duration(text) == expected

    def test_garbage_rejected(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_bytes("lots")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_duration("soon")


class TestInspection:
    def test_stats(self, populated, capsys):
        spec, n = populated
        assert main(["stats", spec, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == n
        assert payload["total_bytes"] > 0
        assert payload["partial_files"] == 0

    def test_stats_human(self, populated, capsys):
        spec, n = populated
        assert main(["stats", spec]) == 0
        out = capsys.readouterr().out
        assert f"entries:   {n}" in out

    def test_ls_sort_and_limit(self, populated, capsys):
        spec, _ = populated
        assert main(
            ["ls", spec, "--json", "--sort", "created", "--reverse",
             "--limit", "3"]
        ) == 0
        entries = json.loads(capsys.readouterr().out)["entries"]
        assert len(entries) == 3
        stamps = [e["created_at"] for e in entries]
        assert stamps == sorted(stamps, reverse=True)

    def test_show_by_unique_prefix(self, populated, capsys):
        spec, _ = populated
        assert main(["show", spec, "03", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["responses"] == {"power": 4.5, "rate": 5.0}
        assert payload["meta"]["fingerprint"].startswith("03")

    def test_show_ambiguous_prefix(self, populated, capsys):
        spec, _ = populated
        assert main(["show", spec, "0"]) == 1
        assert "ambiguous" in capsys.readouterr().err

    def test_show_unknown(self, populated, capsys):
        spec, _ = populated
        assert main(["show", spec, "zz"]) == 1
        assert "no entry" in capsys.readouterr().err

    def test_show_is_non_destructive_on_corrupt_entries(
        self, tmp_path, capsys
    ):
        store = FileStore(tmp_path / "evals")
        store.persist("deadbeef", {"y": 1.0})
        store.close()
        (tmp_path / "evals" / "deadbeef.json").write_text(
            "{not json", encoding="utf-8"
        )
        spec = str(tmp_path / "evals")
        assert main(["show", spec, "dead"]) == 1
        assert "verify --repair" in capsys.readouterr().err
        # Inspecting did not eat the evidence.
        assert (tmp_path / "evals" / "deadbeef.json").exists()
        assert main(["verify", spec]) == 2

    def test_missing_store_is_an_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 1
        assert "no store" in capsys.readouterr().err


class TestPrune:
    def test_needs_a_bound(self, populated, capsys):
        spec, _ = populated
        assert main(["prune", spec]) == 1
        assert "at least one bound" in capsys.readouterr().err

    def test_max_entries(self, populated, capsys):
        spec, n = populated
        assert main(
            ["prune", spec, "--max-entries", "2", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["evicted"] == n - 2
        assert report["entries_after"] == 2

    def test_max_bytes_reduces_disk_usage(self, populated, capsys):
        spec, _ = populated
        assert main(["stats", spec, "--json"]) == 0
        before = json.loads(capsys.readouterr().out)["total_bytes"]
        cap = before // 2
        assert main(
            ["prune", spec, "--max-bytes", str(cap), "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["bytes_after"] <= cap
        assert main(["stats", spec, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total_bytes"] <= cap

    def test_max_age_with_oldest_policy(self, populated, capsys):
        spec, _ = populated
        # All entries were created around epoch 1.7e9 — far older
        # than any sane TTL measured from now.
        assert main(
            ["prune", spec, "--max-age", "30d", "--policy", "oldest",
             "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ttl_evicted"] == 6
        assert report["entries_after"] == 0

    def test_dry_run_deletes_nothing_and_names_victims(
        self, populated, capsys
    ):
        spec, n = populated
        assert main(
            ["prune", spec, "--max-entries", "1", "--dry-run", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dry_run"] is True
        # The plan is reviewable: every would-be victim is named.
        assert len(report["victims"]) == n - 1
        assert main(["stats", spec, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == n

    def test_invalid_budget_is_a_clean_error(self, populated, capsys):
        spec, _ = populated
        assert main(["prune", spec, "--max-entries", "-3"]) == 1
        assert "max_entries" in capsys.readouterr().err


class TestLifecycleCommands:
    def test_vacuum(self, populated, capsys):
        spec, _ = populated
        assert main(["vacuum", spec, "--grace", "0", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["partials_removed"] == 0

    def test_export_then_merge_roundtrip(self, populated, tmp_path, capsys):
        spec, n = populated
        dest = str(tmp_path / "shipped.sqlite")
        assert main(["export", spec, dest, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["copied"] == n
        # Merging straight back copies nothing: every collision is
        # equal-aged and the local side wins.
        assert main(["merge", spec, dest, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["copied"] == 0 and report["skipped"] == n
        assert main(["stats", dest, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == n

    def test_merge_missing_source(self, populated, tmp_path, capsys):
        spec, _ = populated
        assert main(["merge", spec, str(tmp_path / "ghost")]) == 1

    def test_verify_clean_and_dirty(self, tmp_path, capsys):
        store = FileStore(tmp_path / "evals")
        store.persist("good", {"y": 1.0})
        store.close()
        spec = str(tmp_path / "evals")
        assert main(["verify", spec, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["clean"] is True

        (tmp_path / "evals" / "bad.json").write_text(
            "{not json", encoding="utf-8"
        )
        assert main(["verify", spec, "--json"]) == 2
        report = json.loads(capsys.readouterr().out)
        assert report["invalid"] == 1 and report["clean"] is False

        assert main(["verify", spec, "--repair", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["repaired"] == 1
        assert main(["verify", spec, "--json"]) == 0

    @pytest.mark.parametrize("spec_name", ["evals", "evals.sqlite"])
    def test_prune_survivors_still_serve_warm_hits(
        self, tmp_path, spec_name, capsys
    ):
        # The acceptance property: prune to a byte budget, then a
        # warm engine in a "fresh process" (new engine over the same
        # path) still gets hits on every surviving entry — pruning
        # never poisons what it spares.
        spec = str(tmp_path / spec_name)

        def evaluate(point):
            return {"y": math.sin(point["a"]) + 2.0 * point["a"]}

        points = [{"a": 0.1 * i} for i in range(8)]
        engine = EvaluationEngine(evaluate, cache=resolve_store(spec))
        engine.map_points(points)
        engine.close()

        assert main(["stats", spec, "--json"]) == 0
        total = json.loads(capsys.readouterr().out)["total_bytes"]
        cap = total // 2
        assert main(["prune", spec, "--max-bytes", str(cap), "--json"]) == 0
        survivors = 8 - json.loads(capsys.readouterr().out)["evicted"]
        assert 0 < survivors < 8
        assert main(["stats", spec, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total_bytes"] <= cap

        warm = EvaluationEngine(evaluate, cache=resolve_store(spec))
        warm.map_points(points)
        assert warm.cache.stats.hits == survivors
        assert warm.points_evaluated == 8 - survivors
        warm.close()

    def test_verify_counts_partials_as_dirty(self, tmp_path, capsys):
        store = FileStore(tmp_path / "evals")
        store.persist("good", {"y": 1.0})
        store.close()
        (tmp_path / "evals" / ".write-dead.part").write_text("junk")
        spec = str(tmp_path / "evals")
        assert main(["verify", spec]) == 2
        # vacuum sweeps the debris; verify then agrees it is clean.
        assert main(["vacuum", spec, "--grace", "0"]) == 0
        assert main(["verify", spec]) == 0


@pytest.fixture(params=["file", "sqlite"])
def populated_queue(request, tmp_path):
    """(cli store argument, queue) with jobs in every status."""
    from repro.exec import Job, queue_for_store
    from repro.exec.store import SQLiteStore

    if request.param == "file":
        spec = tmp_path / "evals"
        store = FileStore(spec)
    else:
        spec = tmp_path / "evals.sqlite"
        store = SQLiteStore(spec)
    queue = queue_for_store(store)
    queue.submit(
        [Job(f"{i:02d}" + "cd" * 29, {"a": float(i)}) for i in range(5)]
    )
    queue.lease("w1", n=2, lease_seconds=600.0)
    queue.complete("w1", "00" + "cd" * 29)
    for _ in range(queue.max_attempts):
        queue.fail("w1", "01" + "cd" * 29, error="sim exploded")
        queue.lease("w1", n=1, lease_seconds=600.0)
    queue.fail("w1", "01" + "cd" * 29, error="sim exploded")
    store.close()
    return str(spec), queue


class TestQueueCommands:
    def test_stats_exit_2_on_failed_jobs(self, populated_queue, capsys):
        spec, _ = populated_queue
        assert main(["queue", "stats", spec, "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["done"] == 1
        assert payload["failed"] == 1
        assert payload["pending"] + payload["leased"] == 3
        assert payload["total"] == 5

    def test_stats_human_output(self, populated_queue, capsys):
        spec, _ = populated_queue
        main(["queue", "stats", spec])
        out = capsys.readouterr().out
        assert "done:     1" in out
        assert "failed:   1" in out

    def test_stats_clean_queue_exits_0(self, tmp_path, capsys):
        FileStore(tmp_path / "evals")
        assert main(["queue", "stats", str(tmp_path / "evals")]) == 0
        assert "pending:  0" in capsys.readouterr().out

    def test_ls_filters_by_status(self, populated_queue, capsys):
        spec, _ = populated_queue
        assert main(
            ["queue", "ls", spec, "--status", "failed", "--json"]
        ) == 0
        jobs = json.loads(capsys.readouterr().out)["jobs"]
        assert len(jobs) == 1
        assert jobs[0]["error"] == "sim exploded"
        assert jobs[0]["attempts"] >= 3

    def test_ls_human_with_limit(self, populated_queue, capsys):
        spec, _ = populated_queue
        assert main(["queue", "ls", spec, "--limit", "2"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3  # header + 2 rows

    def test_requeue_failed_clears_the_backlog(
        self, populated_queue, capsys
    ):
        spec, queue = populated_queue
        assert main(["queue", "requeue", spec, "--failed", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["requeued"] == 1
        assert main(["queue", "stats", spec, "--json"]) == 0  # clean now
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 0

    def test_requeue_by_prefix(self, populated_queue, capsys):
        spec, queue = populated_queue
        done_id = "00" + "cd" * 29
        assert main(["queue", "requeue", spec, done_id[:4], "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["requeued"] == 1
        assert queue.job(done_id).status == "pending"

    def test_requeue_ambiguous_prefix(self, populated_queue, capsys):
        spec, _ = populated_queue
        assert main(["queue", "requeue", spec, "0"]) == 1
        assert "ambiguous" in capsys.readouterr().err

    def test_requeue_unknown_prefix(self, populated_queue, capsys):
        spec, _ = populated_queue
        assert main(["queue", "requeue", spec, "zz"]) == 1
        assert "no job" in capsys.readouterr().err

    def test_requeue_needs_a_selector(self, populated_queue, capsys):
        spec, _ = populated_queue
        assert main(["queue", "requeue", spec]) == 1
        assert "requeue needs" in capsys.readouterr().err


class TestQueueStatsWatch:
    """``queue stats --watch``: re-sample until interrupted."""

    def _interrupt_after(self, monkeypatch, ticks):
        import repro.exec.cli as cli_module

        calls = {"n": 0, "delays": []}

        def fake_sleep(seconds):
            calls["n"] += 1
            calls["delays"].append(seconds)
            if calls["n"] >= ticks:
                raise KeyboardInterrupt

        monkeypatch.setattr(cli_module.time, "sleep", fake_sleep)
        return calls

    def test_watch_samples_until_interrupted(
        self, populated_queue, capsys, monkeypatch
    ):
        spec, _ = populated_queue
        calls = self._interrupt_after(monkeypatch, ticks=3)
        # Exit code is the last sample's (failed jobs remain -> 2).
        assert main(["queue", "stats", spec, "--watch", "2"]) == 2
        out = capsys.readouterr().out
        # Watch mode renders the live fleet dashboard once per tick.
        assert out.count("fleet") == 3
        assert out.count("queue [") == 3  # depth bar per sample
        assert "pending=" in out
        assert calls["delays"] == [2.0, 2.0, 2.0]

    def test_watch_accepts_duration_suffix(
        self, populated_queue, monkeypatch
    ):
        spec, _ = populated_queue
        calls = self._interrupt_after(monkeypatch, ticks=1)
        assert main(["queue", "stats", spec, "--watch", "1m"]) == 2
        assert calls["delays"] == [60.0]

    def test_watch_json_counts_progress(
        self, populated_queue, capsys, monkeypatch
    ):
        spec, queue = populated_queue
        import repro.exec.cli as cli_module

        calls = {"n": 0}

        def sleep_and_mutate(seconds):
            calls["n"] += 1
            if calls["n"] == 1:
                leased = queue.lease("w2", n=1, lease_seconds=600.0)
                assert leased
                queue.complete("w2", leased[0].job_id)
            else:
                raise KeyboardInterrupt

        monkeypatch.setattr(cli_module.time, "sleep", sleep_and_mutate)
        assert main(["queue", "stats", spec, "--watch", "1", "--json"]) == 2
        raw = capsys.readouterr().out
        decoder = json.JSONDecoder()
        samples = []
        index = 0
        while index < len(raw):
            chunk = raw[index:].lstrip()
            if not chunk:
                break
            index = len(raw) - len(chunk)
            payload, consumed = decoder.raw_decode(raw, index)
            samples.append(payload)
            index += consumed
        assert len(samples) == 2
        assert samples[1]["done"] == samples[0]["done"] + 1
        assert all("at" in s for s in samples)

    def test_watch_survives_a_vanished_queue(
        self, populated_queue, capsys, monkeypatch
    ):
        """A queue that becomes unreadable mid-watch is reported and
        re-resolved; the watch keeps sampling instead of dying."""
        spec, _ = populated_queue
        import repro.exec.cli as cli_module
        from repro.exec.queue import resolve_queue as real_resolve

        class _FlakyQueue:
            """Real queue underneath; stats vanishes on chosen calls."""

            def __init__(self, inner):
                self._inner = inner
                self._calls = 0

            def stats(self, *args, **kwargs):
                self._calls += 1
                if self._calls in (2, 3):
                    raise OSError("queue file vanished")
                return self._inner.stats(*args, **kwargs)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        resolves = {"n": 0}

        def fake_resolve(spec_arg, *args, **kwargs):
            resolves["n"] += 1
            if resolves["n"] == 1:  # initial open
                return _FlakyQueue(real_resolve(spec_arg, *args, **kwargs))
            if resolves["n"] == 2:  # first recovery attempt: still gone
                raise OSError("substrate is being re-provisioned")
            return real_resolve(spec_arg, *args, **kwargs)

        monkeypatch.setattr(cli_module, "resolve_queue", fake_resolve)
        calls = self._interrupt_after(monkeypatch, ticks=4)
        # samples: ok, unreadable, unreadable (re-resolve failed, dead
        # queue kept), ok on the re-resolved queue -> last code is 2.
        assert main(["queue", "stats", spec, "--watch", "1"]) == 2
        captured = capsys.readouterr()
        assert captured.out.count("fleet") == 2
        assert captured.err.count("queue unreadable") == 2
        assert "still watching" in captured.err
        assert resolves["n"] == 3
        assert calls["n"] == 4

    def test_plain_stats_unchanged_without_watch(
        self, populated_queue, capsys
    ):
        spec, _ = populated_queue
        assert main(["queue", "stats", spec]) == 2
        out = capsys.readouterr().out
        assert "-- " not in out  # no timestamp header

    def test_requeue_expired_reclaims(self, tmp_path, capsys):
        import time as _time

        from repro.exec import Job, queue_for_store

        store = FileStore(tmp_path / "evals")
        queue = queue_for_store(store)
        queue.submit([Job("ab" * 30, {"a": 1.0})])
        queue.lease("dead", n=1, lease_seconds=0.01)
        _time.sleep(0.05)
        assert main(
            ["queue", "requeue", str(tmp_path / "evals"), "--expired",
             "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["reclaimed"] == 1
        assert queue.job("ab" * 30).status == "pending"

    def test_missing_store_is_an_error(self, tmp_path, capsys):
        assert main(["queue", "stats", str(tmp_path / "nope")]) == 1
        assert "no store" in capsys.readouterr().err
