"""The durable work queue and the store-leased distributed backend.

Covers the queue contract both implementations (SQLite table, file
directory) must obey — atomic leasing, lease TTL and reclamation,
completion gated on the lease holder, terminal failure after
``max_attempts``, operator requeue/purge — plus the distributed
backend's acceptance properties: cooperative completion, work-sharing
between concurrent submitters, and the kill-a-worker guarantee that a
reclaimed lease loses no points.
"""

import json
import math
import time

import pytest

from backend_contract import make_points, synthetic_evaluate

from repro.errors import ReproError
from repro.exec import (
    DistributedBackend,
    EvalCache,
    EvaluationEngine,
    FaultPlan,
    FaultSpec,
    FaultyQueue,
    FileStore,
    FileWorkQueue,
    Job,
    MemoryStore,
    SQLiteStore,
    SQLiteWorkQueue,
    SerialBackend,
    queue_for_store,
    resolve_backend,
    resolve_queue,
)
from repro.exec.queue import QUEUE_SCHEMA_VERSION


def _jobs(n=4):
    return [
        Job(f"fp{i:02d}", {"a": float(i), "b": 1.0 + i}) for i in range(n)
    ]


@pytest.fixture(params=["sqlite", "file"])
def queue(request, tmp_path):
    if request.param == "sqlite":
        built = SQLiteWorkQueue(tmp_path / "queue.sqlite")
    else:
        built = FileWorkQueue(tmp_path / "queue")
    yield built
    built.close()


class TestWorkQueueContract:
    def test_submit_dedupes_and_counts(self, queue):
        assert queue.submit(_jobs(3)) == 3
        assert queue.submit(_jobs(4)) == 1  # three already known
        assert len(queue) == 4
        stats = queue.stats()
        assert stats.pending == 4 and stats.outstanding == 4
        assert stats.done == stats.failed == stats.leased == 0

    def test_lease_claims_in_order_and_increments_attempts(self, queue):
        queue.submit(_jobs(4))
        leased = queue.lease("w1", n=2, lease_seconds=60.0)
        assert [job.job_id for job in leased] == ["fp00", "fp01"]
        assert leased[0].point == {"a": 0.0, "b": 1.0}
        record = queue.job("fp00")
        assert record.status == "leased"
        assert record.worker_id == "w1"
        assert record.attempts == 1
        assert record.lease_expires_at is not None
        # A held lease is not re-leasable.
        again = queue.lease("w2", n=4, lease_seconds=60.0)
        assert [job.job_id for job in again] == ["fp02", "fp03"]

    def test_lease_size_validated(self, queue):
        with pytest.raises(ReproError):
            queue.lease("w1", n=0)

    def test_complete_requires_the_lease_holder(self, queue):
        queue.submit(_jobs(1))
        queue.lease("w1", n=1)
        assert queue.complete("intruder", "fp00") is False
        assert queue.complete("w1", "fp00", seconds=0.25) is True
        record = queue.job("fp00")
        assert record.status == "done"
        assert record.seconds == pytest.approx(0.25)
        assert record.completed_at is not None
        # Completing twice is a no-op (the lease is gone).
        assert queue.complete("w1", "fp00") is False

    def test_expired_lease_is_reclaimed_by_next_lease(self, queue):
        queue.submit(_jobs(1))
        queue.lease("dead-worker", n=1, lease_seconds=0.01)
        time.sleep(0.05)
        leased = queue.lease("survivor", n=1, lease_seconds=60.0)
        assert [job.job_id for job in leased] == ["fp00"]
        record = queue.job("fp00")
        assert record.worker_id == "survivor"
        assert record.attempts == 2
        # The dead worker's late completion is rejected.
        assert queue.complete("dead-worker", "fp00") is False
        assert queue.complete("survivor", "fp00") is True

    def test_explicit_reclaim(self, queue):
        queue.submit(_jobs(2))
        queue.lease("dead", n=2, lease_seconds=0.01)
        time.sleep(0.05)
        assert queue.stats().expired == 2
        assert queue.reclaim() == 2
        stats = queue.stats()
        assert stats.pending == 2 and stats.leased == 0

    def test_heartbeat_extends_leases(self, queue):
        queue.submit(_jobs(2))
        queue.lease("w1", n=2, lease_seconds=0.2)
        assert queue.heartbeat("w1", lease_seconds=120.0) == 2
        time.sleep(0.3)
        # Without the heartbeat these would have expired.
        assert queue.reclaim() == 0
        assert queue.job("fp00").status == "leased"

    # -- batched transactions (the amortized-substrate contract) -------------

    def test_complete_many_empty_is_free(self, queue):
        before = queue.transactions
        assert queue.complete_many("w1", []) == 0
        assert queue.transactions == before

    def test_complete_many_folds_one_transaction(self, queue):
        queue.submit(_jobs(3))
        queue.lease("w1", n=3)
        before = queue.transactions
        done = queue.complete_many(
            "w1", [("fp00", 0.5), ("fp01", 0.25), ("fp02", 1.0)]
        )
        assert done == 3
        assert queue.transactions == before + 1
        record = queue.job("fp00")
        assert record.status == "done"
        assert record.seconds == pytest.approx(0.5)
        assert queue.stats().done == 3

    def test_complete_many_covers_only_held_leases(self, queue):
        queue.submit(_jobs(2))
        queue.lease("w1", n=1)
        done = queue.complete_many("w1", [("fp00", 0.1), ("fp01", 0.1)])
        assert done == 1  # fp01 was never leased to w1
        assert queue.job("fp00").status == "done"
        assert queue.job("fp01").status == "pending"

    def test_complete_many_duplicates_apply_once_in_order(self, queue):
        queue.submit(_jobs(1))
        queue.lease("w1", n=1)
        done = queue.complete_many("w1", [("fp00", 0.1), ("fp00", 0.2)])
        assert done == 1
        record = queue.job("fp00")
        assert record.status == "done"
        # The first pair won; the duplicate hit a spent lease.
        assert record.seconds == pytest.approx(0.1)

    def test_fail_many_requeues_in_one_transaction(self, queue):
        queue.submit(_jobs(2))
        queue.lease("w1", n=2)
        before = queue.transactions
        failed = queue.fail_many(
            "w1", [("fp00", "boom"), ("fp01", "bang")]
        )
        assert failed == 2
        assert queue.transactions == before + 1
        stats = queue.stats()
        assert stats.pending == 2 and stats.leased == 0
        assert queue.job("fp00").error == "boom"

    def test_heartbeat_many_empty_is_free(self, queue):
        before = queue.transactions
        assert queue.heartbeat_many("w1", []) == 0
        assert queue.transactions == before

    def test_heartbeat_many_extends_only_held_leases(self, queue):
        queue.submit(_jobs(2))
        queue.lease("w1", n=2, lease_seconds=0.2)
        before = queue.transactions
        extended = queue.heartbeat_many(
            "w1", ["fp00", "fp01", "ghost"], lease_seconds=120.0
        )
        assert extended == 2
        assert queue.transactions == before + 1
        time.sleep(0.3)
        # Without the batched heartbeat these would have expired.
        assert queue.reclaim() == 0
        assert queue.job("fp00").status == "leased"

    def test_fail_requeues_then_goes_terminal(self, queue):
        queue.submit(_jobs(1))
        for attempt in range(1, queue.max_attempts + 1):
            leased = queue.lease("w1", n=1)
            assert [job.job_id for job in leased] == ["fp00"], attempt
            assert queue.fail("w1", "fp00", error="sim exploded") is True
        record = queue.job("fp00")
        assert record.status == "failed"
        assert record.error == "sim exploded"
        assert queue.lease("w1", n=1) == []
        assert queue.stats().failed == 1

    def test_expired_lease_with_spent_attempts_goes_terminal(self, queue):
        queue.submit(_jobs(1))
        for _ in range(queue.max_attempts):
            queue.lease("dead", n=1, lease_seconds=0.01)
            time.sleep(0.03)
            queue.reclaim()
        # All attempts burned by kills: the next claim fails it
        # terminally instead of cycling forever.
        assert queue.lease("w1", n=1) == []
        assert queue.job("fp00").status == "failed"

    def test_requeue_resets_a_failed_job(self, queue):
        queue.submit(_jobs(1))
        queue.lease("w1", n=1)
        for _ in range(queue.max_attempts):
            queue.fail("w1", "fp00", error="boom")
            queue.lease("w1", n=1)
        queue.fail("w1", "fp00", error="boom")
        assert queue.job("fp00").status == "failed"
        assert queue.requeue("fp00") is True
        record = queue.job("fp00")
        assert record.status == "pending"
        assert record.attempts == 0 and record.error is None
        assert queue.requeue("fp00") is False  # already pending
        assert queue.requeue("missing") is False

    def test_purge_drops_finished_rows(self, queue):
        queue.submit(_jobs(3))
        queue.lease("w1", n=2)
        queue.complete("w1", "fp00")
        queue.complete("w1", "fp01")
        assert queue.purge(older_than_seconds=3600.0) == 0  # too young
        assert queue.purge(older_than_seconds=0.0) == 2
        assert len(queue) == 1
        assert queue.job("fp02").status == "pending"

    def test_jobs_iterates_every_record(self, queue):
        queue.submit(_jobs(3))
        records = {record.job_id: record for record in queue.jobs()}
        assert sorted(records) == ["fp00", "fp01", "fp02"]
        assert all(r.status == "pending" for r in records.values())
        assert records["fp01"].point == {"a": 1.0, "b": 2.0}
        assert queue.job("absent") is None

    def test_describe_names_the_queue(self, queue):
        described = queue.describe()
        assert described["queue"] == queue.name
        assert described["max_attempts"] == queue.max_attempts

    def test_float_payloads_survive_bit_exactly(self, queue):
        values = {"tiny": 5e-324, "third": 1.0 / 3.0, "pi": math.pi}
        queue.submit([Job("fp-bits", values)])
        leased = queue.lease("w1", n=1)
        assert leased[0].point == values


class TestLeaseExpiryIndex:
    """The covering index behind lease reclamation, pinned in place.

    Reclamation's predicate (``status = 'leased' AND
    lease_expires_at < now``) must stay index-served as done rows
    accumulate; these tests fail if the index is renamed, dropped
    from the DDL, or the query drifts off it.
    """

    def test_reclaim_predicate_uses_the_covering_index(self, tmp_path):
        queue = SQLiteWorkQueue(tmp_path / "queue.sqlite")
        try:
            queue.submit(_jobs(4))
            queue.lease("w1", n=4, lease_seconds=60.0)
            plan = " ".join(
                str(row[3])
                for row in queue._conn.execute(
                    "EXPLAIN QUERY PLAN SELECT job_id FROM queue_jobs"
                    " WHERE status = 'leased' AND lease_expires_at < ?",
                    (time.time(),),
                )
            )
            assert "queue_jobs_lease_expiry" in plan
            assert "SCAN queue_jobs" not in plan
        finally:
            queue.close()

    def test_index_migrates_in_place_on_reopen(self, tmp_path):
        path = tmp_path / "queue.sqlite"
        first = SQLiteWorkQueue(path)
        first.submit(_jobs(2))
        first.lease("w1", n=1, lease_seconds=60.0)
        # Simulate a database created before the index existed.
        first._conn.execute("DROP INDEX queue_jobs_lease_expiry")
        first.close()
        reopened = SQLiteWorkQueue(path)
        try:
            names = {
                row[0]
                for row in reopened._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'index'"
                )
            }
            assert "queue_jobs_lease_expiry" in names
            # The migration touched nothing else: rows and leases
            # survive the reopen intact.
            assert reopened.job("fp00").status == "leased"
            assert reopened.job("fp01").status == "pending"
        finally:
            reopened.close()


class TestQueuePersistence:
    @pytest.mark.parametrize("kind", ["sqlite", "file"])
    def test_jobs_survive_reopen(self, kind, tmp_path):
        spec = (
            tmp_path / "queue.sqlite" if kind == "sqlite" else tmp_path / "q"
        )
        first = (
            SQLiteWorkQueue(spec) if kind == "sqlite" else FileWorkQueue(spec)
        )
        first.submit(_jobs(2))
        first.lease("w1", n=1)
        first.close()
        fresh = (
            SQLiteWorkQueue(spec) if kind == "sqlite" else FileWorkQueue(spec)
        )
        try:
            stats = fresh.stats()
            assert stats.pending == 1 and stats.leased == 1
            assert fresh.job("fp00").worker_id == "w1"
        finally:
            fresh.close()

    def test_sqlite_queue_pickles_by_path(self, tmp_path):
        import pickle

        queue = SQLiteWorkQueue(tmp_path / "queue.sqlite")
        queue.submit(_jobs(1))
        clone = pickle.loads(pickle.dumps(queue))
        try:
            assert clone.job("fp00").status == "pending"
        finally:
            clone.close()
            queue.close()

    def test_corrupt_payload_is_failed_not_served(self, tmp_path):
        queue = SQLiteWorkQueue(tmp_path / "queue.sqlite")
        queue.submit(_jobs(1))
        queue._conn.execute(
            "UPDATE queue_jobs SET payload = '{oops' WHERE job_id = 'fp00'"
        )
        assert queue.lease("w1", n=1) == []
        assert queue.job("fp00").status == "failed"
        queue.close()

    def test_file_corrupt_payload_is_failed_not_served(self, tmp_path):
        queue = FileWorkQueue(tmp_path / "q")
        queue.submit(_jobs(1))
        (queue.directory / "fp00.pending.json").write_text(
            "{not json", encoding="utf-8"
        )
        assert queue.lease("w1", n=1) == []
        assert queue.job("fp00").status == "failed"

    def test_file_version_mismatch_is_failed(self, tmp_path):
        queue = FileWorkQueue(tmp_path / "q")
        queue.submit(_jobs(1))
        path = queue.directory / "fp00.pending.json"
        blob = json.loads(path.read_text())
        blob["schema"] = QUEUE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(blob), encoding="utf-8")
        assert queue.lease("w1", n=1) == []
        assert queue.job("fp00").status == "failed"

    def test_file_heals_crashed_transition(self, tmp_path):
        # Simulate a worker killed between the payload rewrite and
        # the rename: content says done, filename says leased.
        queue = FileWorkQueue(tmp_path / "q")
        queue.submit(_jobs(1))
        queue.lease("w1", n=1)
        path = queue.directory / "fp00.leased.json"
        blob = json.loads(path.read_text())
        blob["status"] = "done"
        blob["completed_at"] = time.time()
        path.write_text(json.dumps(blob), encoding="utf-8")
        assert queue.stats().done == 1  # content status wins
        queue.reclaim()
        assert (queue.directory / "fp00.done.json").exists()

    def test_file_reclaims_stale_claim_files(self, tmp_path):
        queue = FileWorkQueue(tmp_path / "q")
        queue.submit(_jobs(1))
        pending = queue.directory / "fp00.pending.json"
        claim = queue.directory / "fp00.claim.json"
        pending.rename(claim)
        old = time.time() - 3600.0
        import os

        os.utime(claim, times=(old, old))
        assert queue.reclaim() == 1
        assert queue.job("fp00").status == "pending"


class TestResolveQueue:
    def test_path_conventions(self, tmp_path):
        sqlite_queue = resolve_queue(tmp_path / "evals.sqlite")
        assert isinstance(sqlite_queue, SQLiteWorkQueue)
        sqlite_queue.close()
        dir_queue = resolve_queue(tmp_path / "evals")
        assert isinstance(dir_queue, FileWorkQueue)
        assert dir_queue.directory == tmp_path / "evals" / ".queue"
        ready = FileWorkQueue(tmp_path / "explicit")
        assert resolve_queue(ready) is ready

    def test_queue_for_store(self, tmp_path):
        file_store = FileStore(tmp_path / "evals")
        assert isinstance(queue_for_store(file_store), FileWorkQueue)
        sqlite_store = SQLiteStore(tmp_path / "evals.sqlite")
        queue = queue_for_store(sqlite_store)
        assert isinstance(queue, SQLiteWorkQueue)
        assert queue.path == sqlite_store.path
        queue.close()
        sqlite_store.close()
        with pytest.raises(ReproError):
            queue_for_store(MemoryStore())

    def test_queue_shares_sqlite_file_with_store(self, tmp_path):
        path = tmp_path / "substrate.sqlite"
        store = SQLiteStore(path)
        queue = SQLiteWorkQueue(path)
        store.persist("fp", {"y": 1.0})
        queue.submit(_jobs(2))
        # Both halves of the substrate live in one database file and
        # neither corrupts the other's view.
        assert store.load("fp") == {"y": 1.0}
        assert store.verify().clean
        assert len(store) == 1 and len(queue) == 2
        queue.close()
        store.close()

    def test_file_queue_invisible_to_file_store(self, tmp_path):
        store = FileStore(tmp_path / "evals")
        queue = queue_for_store(store)
        store.persist("fp", {"y": 1.0})
        queue.submit(_jobs(3))
        # Queue rows live under .queue/ and never read as cache
        # blobs, partials or sweepable debris.
        assert len(store) == 1
        assert store.partial_files() == []
        assert store.verify().clean
        store.compact(grace_seconds=0.0)
        assert len(queue) == 3

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            SQLiteWorkQueue(tmp_path / "q.sqlite", max_attempts=0)
        store = FileStore(tmp_path / "evals")
        with pytest.raises(ReproError):
            DistributedBackend(store, batch=0)
        with pytest.raises(ReproError):
            DistributedBackend(store, lease_seconds=0.0)
        with pytest.raises(ReproError):
            DistributedBackend(MemoryStore())


class TestDistributedBackend:
    def test_resolve_backend_requires_a_store(self):
        with pytest.raises(ReproError, match="persistent cache store"):
            resolve_backend("distributed")

    def test_engine_spec_builds_distributed_over_cache_store(self, tmp_path):
        engine = EvaluationEngine(
            synthetic_evaluate,
            backend="distributed",
            cache=SQLiteStore(tmp_path / "evals.sqlite"),
        )
        try:
            assert engine.backend.name == "distributed"
            assert engine.backend.store is engine.cache.store
            points = make_points(6)
            out = engine.map_points(points)
            reference = SerialBackend().run(synthetic_evaluate, points)
            assert [e.responses for e in out] == [r for r, _ in reference]
        finally:
            engine.close()

    def test_results_resolve_from_store_published_by_workers(self, tmp_path):
        # cooperate=False: the submitter never evaluates; a "worker"
        # (here: direct queue/store traffic) must finish the batch.
        store = FileStore(tmp_path / "evals")
        backend = DistributedBackend(
            store, cooperate=False, poll_interval=0.01, timeout=30.0
        )
        points = make_points(3)
        handle = backend.submit(
            synthetic_evaluate, points, fingerprints=["f0", "f1", "f2"]
        )
        assert not handle.done()
        queue = queue_for_store(store)
        while True:
            jobs = queue.lease("external-worker", n=2)
            if not jobs:
                break
            for job in jobs:
                store.persist(job.job_id, synthetic_evaluate(job.point))
                queue.complete("external-worker", job.job_id, seconds=0.5)
        results = handle.result()
        reference = SerialBackend().run(synthetic_evaluate, points)
        assert [r for r, _ in results] == [r for r, _ in reference]
        # Wall seconds travel back through the queue's done records.
        assert [s for _, s in results] == [0.5, 0.5, 0.5]
        backend.close()

    def test_replicates_collapse_to_one_job(self, tmp_path):
        store = FileStore(tmp_path / "evals")
        backend = DistributedBackend(store, timeout=30.0)
        point = {"a": 0.25, "b": 1.5}
        results = backend.run(
            synthetic_evaluate,
            [point, dict(point), point],
            fingerprints=["same", "same", "same"],
        )
        assert len(results) == 3
        assert results[0][0] == results[1][0] == results[2][0]
        queue = queue_for_store(store)
        assert len(queue) == 1  # one job served all three slots
        backend.close()

    def test_store_hits_skip_the_queue(self, tmp_path):
        store = FileStore(tmp_path / "evals")
        point = make_points(1)[0]
        store.persist("known", synthetic_evaluate(point))
        backend = DistributedBackend(store, timeout=30.0)
        results = backend.run(
            synthetic_evaluate, [point], fingerprints=["known"]
        )
        assert results[0][0] == synthetic_evaluate(point)
        assert len(queue_for_store(store)) == 0
        backend.close()

    def test_prefetch_enqueues_only_misses(self, tmp_path):
        store = FileStore(tmp_path / "evals")
        points = make_points(3)
        store.persist("hit", synthetic_evaluate(points[0]))
        backend = DistributedBackend(store, timeout=30.0)
        started = backend.prefetch(
            synthetic_evaluate,
            points,
            fingerprints=["hit", "miss-a", "miss-b"],
        )
        assert started == 2
        assert len(queue_for_store(store)) == 2
        # Re-prefetching is free: everything is queued or stored.
        again = backend.prefetch(
            synthetic_evaluate,
            points,
            fingerprints=["hit", "miss-a", "miss-b"],
        )
        assert again == 0
        # The warmed queue then serves the real submission.
        results = backend.run(
            synthetic_evaluate,
            points,
            fingerprints=["hit", "miss-a", "miss-b"],
        )
        reference = SerialBackend().run(synthetic_evaluate, points)
        assert [r for r, _ in results] == [r for r, _ in reference]
        backend.close()

    def test_prefetch_computes_fingerprints_when_omitted(self, tmp_path):
        store = FileStore(tmp_path / "evals")
        backend = DistributedBackend(store, timeout=30.0)
        points = make_points(2)
        assert backend.prefetch(synthetic_evaluate, points) == 2
        results = backend.run(synthetic_evaluate, points)
        assert len(queue_for_store(store)) == 2  # prefetch jobs reused
        reference = SerialBackend().run(synthetic_evaluate, points)
        assert [r for r, _ in results] == [r for r, _ in reference]
        backend.close()

    def test_adaptive_poll_backs_off_while_idle(self, tmp_path):
        import threading

        store = FileStore(tmp_path / "evals")
        backend = DistributedBackend(
            store, cooperate=False, poll_interval=0.005, timeout=30.0
        )
        points = make_points(2)
        handle = backend.submit(
            synthetic_evaluate, points, fingerprints=["p0", "p1"]
        )

        def finish():
            queue = queue_for_store(store)
            time.sleep(0.05)
            for job in queue.lease("w", n=2):
                store.persist(job.job_id, synthetic_evaluate(job.point))
                queue.complete("w", job.job_id, seconds=0.1)
            queue.close()

        worker = threading.Thread(target=finish)
        worker.start()
        try:
            results = handle.result()
        finally:
            worker.join()
        assert len(results) == 2
        # The idle wait was spent in counted, capped sleeps.
        assert backend.poll_sleeps > 0
        assert backend.poll_max <= 1.0
        described = backend.describe()
        assert described["poll_sleeps"] == backend.poll_sleeps
        assert described["queue_transactions"] > 0
        assert backend.queue_transactions == described["queue_transactions"]
        backend.close()

    def test_two_submitters_share_one_study(self, tmp_path):
        # Two engines over one substrate: the second resolves every
        # point the first already published, evaluating nothing new.
        path = tmp_path / "evals.sqlite"
        points = make_points(8)
        calls_a, calls_b = [], []

        def eval_a(point):
            calls_a.append(1)
            return synthetic_evaluate(point)

        def eval_b(point):
            calls_b.append(1)
            return synthetic_evaluate(point)

        engine_a = EvaluationEngine(
            eval_a, backend="distributed", cache=SQLiteStore(path)
        )
        out_a = engine_a.map_points(points)
        engine_a.close()
        engine_b = EvaluationEngine(
            eval_b, backend="distributed", cache=SQLiteStore(path)
        )
        out_b = engine_b.map_points(points)
        engine_b.close()
        assert len(calls_a) == 8 and len(calls_b) == 0
        assert [e.responses for e in out_a] == [e.responses for e in out_b]

    def test_killed_worker_loses_no_points(self, tmp_path):
        # The acceptance property: a worker dies holding leases; the
        # survivor reclaims them after the TTL and the batch still
        # completes with every point accounted for.
        store = FileStore(tmp_path / "evals")
        backend = DistributedBackend(
            store,
            batch=2,
            lease_seconds=30.0,
            poll_interval=0.01,
            timeout=60.0,
        )
        points = make_points(6)
        fingerprints = [f"kill{i}" for i in range(6)]
        handle = backend.submit(
            synthetic_evaluate, points, fingerprints=fingerprints
        )
        # A doomed worker grabs half the queue with a tiny TTL and is
        # "SIGKILLed" (never completes, never heartbeats).
        queue = queue_for_store(store)
        doomed = queue.lease("doomed-worker", n=3, lease_seconds=0.05)
        assert len(doomed) == 3
        time.sleep(0.1)
        results = handle.result()
        reference = SerialBackend().run(synthetic_evaluate, points)
        assert [r for r, _ in results] == [r for r, _ in reference]
        stats = queue.stats()
        assert stats.done == 6 and stats.outstanding == 0
        # The doomed worker's jobs show the reclaimed second attempt.
        reclaimed = [
            queue.job(job.job_id).attempts for job in doomed
        ]
        assert all(attempts == 2 for attempts in reclaimed)
        assert all(
            queue.job(job.job_id).worker_id == backend.worker_id
            for job in doomed
        )
        backend.close()

    def test_terminally_failed_job_raises(self, tmp_path):
        store = FileStore(tmp_path / "evals")
        backend = DistributedBackend(
            store, cooperate=False, poll_interval=0.01, timeout=30.0
        )
        point = make_points(1)[0]
        handle = backend.submit(
            synthetic_evaluate, [point], fingerprints=["doomed"]
        )
        queue = queue_for_store(store)
        for _ in range(queue.max_attempts):
            jobs = queue.lease("worker", n=1)
            assert jobs
            queue.fail("worker", "doomed", error="sim exploded")
        with pytest.raises(ReproError, match="sim exploded"):
            handle.result()
        backend.close()

    def test_cooperating_submitter_failure_propagates_and_requeues(
        self, tmp_path
    ):
        store = FileStore(tmp_path / "evals")
        backend = DistributedBackend(store, timeout=30.0)

        def broken(point):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            backend.run(broken, make_points(1), fingerprints=["f0"])
        # The failed attempt went back to pending for other workers.
        record = queue_for_store(store).job("f0")
        assert record.status == "pending"
        assert record.error == "boom"
        backend.close()

    def test_timeout_bounds_stalls_not_total_time(self, tmp_path):
        # A long study with steady progress must never trip the
        # timeout: it re-arms on every point that lands.
        import threading

        store = FileStore(tmp_path / "evals")
        backend = DistributedBackend(
            store, cooperate=False, poll_interval=0.02, timeout=0.3
        )
        points = make_points(6)
        fingerprints = [f"slow{i}" for i in range(6)]
        handle = backend.submit(
            synthetic_evaluate, points, fingerprints=fingerprints
        )
        queue = queue_for_store(store)

        def slow_worker():
            # One job every 0.15s: total wall time (~0.9s) is far
            # past the 0.3s stall timeout, but no stall ever lasts
            # that long.
            while True:
                jobs = queue.lease("slow-but-steady", n=1)
                if not jobs:
                    return
                time.sleep(0.15)
                for job in jobs:
                    store.persist(job.job_id, synthetic_evaluate(job.point))
                    queue.complete("slow-but-steady", job.job_id)

        thread = threading.Thread(target=slow_worker)
        thread.start()
        results = handle.result()
        thread.join()
        assert len(results) == 6
        backend.close()

    def test_engine_skips_redundant_persist_of_published_results(
        self, tmp_path
    ):
        # The distributed backend already routed every result through
        # the cache's store; a second engine-side persist would be a
        # byte-identical duplicate write per point.
        store = SQLiteStore(tmp_path / "evals.sqlite")
        engine = EvaluationEngine(
            synthetic_evaluate, backend="distributed", cache=store
        )
        engine.map_points(make_points(5))
        assert len(store) == 5
        assert store.stats.persists == 5  # one write per point, not two
        engine.close()

    def test_timeout_names_the_missing_points(self, tmp_path):
        store = FileStore(tmp_path / "evals")
        backend = DistributedBackend(
            store, cooperate=False, poll_interval=0.01, timeout=0.1
        )
        with pytest.raises(ReproError, match="stalled"):
            backend.run(
                synthetic_evaluate, make_points(2), fingerprints=["a", "b"]
            )
        backend.close()

    def test_vanished_job_is_re_enqueued(self, tmp_path):
        store = FileStore(tmp_path / "evals")
        backend = DistributedBackend(
            store, cooperate=False, poll_interval=0.01, timeout=30.0
        )
        point = make_points(1)[0]
        handle = backend.submit(
            synthetic_evaluate, [point], fingerprints=["gone"]
        )
        queue = queue_for_store(store)
        # An over-eager operator purges the pending row out from
        # under the batch; the handle must put it back, after which a
        # worker completes it normally.
        assert queue.requeue("gone") is False
        (queue.directory / "gone.pending.json").unlink()
        resolver = {"done": False}

        import threading

        def finish():
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                jobs = queue.lease("late-worker", n=1)
                for job in jobs:
                    store.persist(job.job_id, synthetic_evaluate(job.point))
                    queue.complete("late-worker", job.job_id)
                    resolver["done"] = True
                    return
                time.sleep(0.01)

        thread = threading.Thread(target=finish)
        thread.start()
        results = handle.result()
        thread.join()
        assert resolver["done"]
        assert results[0][0] == synthetic_evaluate(point)
        backend.close()

    def test_describe_reports_the_substrate(self, tmp_path):
        store = SQLiteStore(tmp_path / "evals.sqlite")
        backend = DistributedBackend(store, cooperate=False)
        described = backend.describe()
        assert described["backend"] == "distributed"
        assert described["store"]["store"] == "sqlite"
        assert described["queue"]["queue"] == "sqlite"
        assert described["cooperate"] is False
        backend.close()
        store.close()

    def test_path_spec_store_is_owned_and_closed(self, tmp_path):
        backend = DistributedBackend(str(tmp_path / "evals.sqlite"))
        results = backend.run(
            synthetic_evaluate, make_points(2), fingerprints=["x", "y"]
        )
        assert len(results) == 2
        backend.close()
        # Closed store: a fresh one still sees the published entries.
        fresh = SQLiteStore(tmp_path / "evals.sqlite")
        assert fresh.peek("x") is not None
        fresh.close()


class TestDegradedFallback:
    """The substrate dies; the study does not."""

    def _dead_queue(self, tmp_path):
        # The first queue operation of any kind fails terminally — as
        # an unplugged NFS mount or deleted database would.
        plan = FaultPlan([FaultSpec("queue", "*", 1, "terminal")])
        return FaultyQueue(SQLiteWorkQueue(tmp_path / "queue.sqlite"), plan)

    def test_unreachable_queue_falls_back_in_process(self, tmp_path):
        store = SQLiteStore(tmp_path / "evals.sqlite")
        backend = DistributedBackend(
            store,
            queue=self._dead_queue(tmp_path),
            cooperate=False,
            timeout=30.0,
        )
        points = make_points(4)
        with pytest.warns(RuntimeWarning, match="degraded"):
            results = backend.run(
                synthetic_evaluate,
                points,
                fingerprints=[f"d{i}" for i in range(4)],
            )
        assert backend.queue_down is True
        assert backend.degraded_evaluations == 4
        for point, (responses, _) in zip(points, results):
            assert responses == synthetic_evaluate(point)
        # Degraded results still land in the store: a recovered
        # substrate (and every other submitter) reuses them.
        assert len(store) == 4
        backend.close()
        store.close()

    def test_fallback_disabled_propagates_the_queue_error(self, tmp_path):
        store = SQLiteStore(tmp_path / "evals.sqlite")
        backend = DistributedBackend(
            store,
            queue=self._dead_queue(tmp_path),
            cooperate=False,
            timeout=30.0,
            fallback=False,
        )
        with pytest.raises(OSError, match="injected terminal fault"):
            backend.run(
                synthetic_evaluate, make_points(2), fingerprints=["a", "b"]
            )
        backend.close()
        store.close()

    def test_no_progress_deadline_falls_back(self, tmp_path):
        # Healthy queue, but nobody is working it: after
        # ``fallback_after`` seconds without a single point landing
        # the submitter evaluates the remainder itself.
        store = SQLiteStore(tmp_path / "evals.sqlite")
        backend = DistributedBackend(
            store,
            cooperate=False,
            poll_interval=0.01,
            timeout=30.0,
            fallback_after=0.2,
        )
        points = make_points(3)
        with pytest.warns(RuntimeWarning, match="degraded"):
            results = backend.run(
                synthetic_evaluate,
                points,
                fingerprints=[f"n{i}" for i in range(3)],
            )
        assert backend.degraded_evaluations == 3
        for point, (responses, _) in zip(points, results):
            assert responses == synthetic_evaluate(point)
        backend.close()
        store.close()

    def test_stall_error_carries_a_queue_snapshot(self, tmp_path):
        store = FileStore(tmp_path / "evals")
        backend = DistributedBackend(
            store, cooperate=False, poll_interval=0.01, timeout=0.1
        )
        with pytest.raises(ReproError, match=r"queue snapshot: pending="):
            backend.run(
                synthetic_evaluate, make_points(2), fingerprints=["a", "b"]
            )
        backend.close()

    def test_engine_surfaces_degraded_evaluations(self, tmp_path):
        store = SQLiteStore(tmp_path / "evals.sqlite")
        backend = DistributedBackend(
            store,
            queue=self._dead_queue(tmp_path),
            cooperate=False,
            timeout=30.0,
        )
        engine = EvaluationEngine(
            synthetic_evaluate, backend=backend, cache=store
        )
        before = engine.stats_snapshot()
        assert before["degraded_evaluations"] == 0
        with pytest.warns(RuntimeWarning, match="degraded"):
            engine.map_points(make_points(3))
        stats = engine.stats()
        assert stats["degraded_evaluations"] == 3
        assert engine.stats_snapshot()["degraded_evaluations"] == 3
        engine.close()


class TestExplorerDistributed:
    def test_explorer_backend_param(self, tmp_path):
        import numpy as np

        from repro.core.doe.lhs import latin_hypercube
        from repro.core.explorer import DesignExplorer
        from repro.core.factors import DesignSpace, Factor

        space = DesignSpace(
            [Factor("a", -1.0, 1.0), Factor("b", 0.5, 4.0)]
        )
        design = latin_hypercube(8, 2, seed=3)
        serial = DesignExplorer(
            space, synthetic_evaluate, ["y1", "y2"]
        ).run_design(design)
        distributed = DesignExplorer(
            space,
            synthetic_evaluate,
            ["y1", "y2"],
            cache_store=str(tmp_path / "evals.sqlite"),
            backend="distributed",
        )
        result = distributed.run_design(design)
        for name in ("y1", "y2"):
            assert np.array_equal(
                serial.responses[name], result.responses[name]
            )
        assert result.exec_stats["backend"] == "distributed"
        distributed.close()

    def test_explorer_rejects_backend_with_ready_engine(self):
        from repro.core.explorer import DesignExplorer
        from repro.core.factors import DesignSpace, Factor
        from repro.errors import DesignError

        space = DesignSpace([Factor("a", -1.0, 1.0)])
        engine = EvaluationEngine(synthetic_evaluate, cache=False)
        with pytest.raises(DesignError):
            DesignExplorer(
                space,
                synthetic_evaluate,
                ["y1"],
                engine=engine,
                backend="thread",
            )
