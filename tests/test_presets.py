"""System presets and vibration profiles."""

import pytest

from repro.errors import ModelError
from repro.presets import default_harvester, default_system, scenario_system
from repro.vibration.profiles import (
    PROFILES,
    bridge_profile,
    duty_shift_profile,
    human_motion_profile,
    machine_room_profile,
)


class TestDefaultSystem:
    def test_factor_knobs_wire_through(self):
        cfg = default_system(
            capacitance=0.7,
            tx_interval=17.0,
            dead_band=0.5,
            check_interval=200.0,
            payload_bits=512,
        )
        assert cfg.power.supercap.capacitance == 0.7
        assert cfg.node.policy.period == 17.0
        assert cfg.controller.dead_band == 0.5
        assert cfg.controller.check_interval == 200.0
        assert cfg.node.payload_bits == 512

    def test_topologies(self):
        assert default_system(topology="bridge").power.topology == "bridge"
        multi = default_system(topology="multiplier", n_stages=2)
        assert multi.power.topology == "multiplier-2"
        with pytest.raises(ModelError):
            default_system(topology="boost")

    def test_controller_optional(self):
        assert default_system(with_controller=False).controller is None

    def test_pretunes_to_source(self):
        cfg = default_system()
        gap = cfg.resolve_initial_gap()
        assert cfg.harvester.resonant_frequency(gap) == pytest.approx(
            67.0, abs=0.1
        )

    def test_harvester_band(self):
        h = default_harvester()
        lo, hi = h.tuning.achievable_band
        assert lo < 67.0 < hi


class TestScenarios:
    @pytest.mark.parametrize("name", ["structural", "drift", "burst"])
    def test_scenarios_build(self, name):
        cfg = scenario_system(name)
        assert cfg.node is not None
        assert cfg.controller is not None

    def test_scenario_overrides(self):
        cfg = scenario_system("structural", capacitance=0.9)
        assert cfg.power.supercap.capacitance == 0.9

    def test_unknown_scenario(self):
        with pytest.raises(ModelError):
            scenario_system("lunar")

    def test_drift_scenario_actually_drifts(self):
        cfg = scenario_system("drift")
        f0 = cfg.vibration.dominant_frequency(0.0)
        f1 = cfg.vibration.dominant_frequency(1800.0)
        assert f1 > f0 + 2.0


class TestProfiles:
    def test_registry_complete(self):
        assert {"machine", "bridge", "human", "duty-shift"} <= set(PROFILES)

    def test_machine_dominant_near_base(self):
        src = machine_room_profile(base_frequency=67.0)
        assert src.dominant_frequency(0.0) == pytest.approx(67.0, abs=0.5)

    def test_machine_drift_option(self):
        src = machine_room_profile(
            base_frequency=66.0, drift_hz=4.0, drift_rate=0.01
        )
        assert src.dominant_frequency(1e6) == pytest.approx(70.0, abs=0.5)

    def test_bridge_has_harmonics(self):
        src = bridge_profile(fundamental=64.5)
        assert src.dominant_frequency(0.0) == pytest.approx(64.5, abs=0.5)

    def test_human_low_frequency(self):
        src = human_motion_profile(cadence=2.0)
        assert src.dominant_frequency(0.0) == pytest.approx(2.0)

    def test_duty_shift_steps(self):
        src = duty_shift_profile(
            frequencies=(65.0, 70.0), dwell=100.0
        )
        assert src.dominant_frequency(50.0) == 65.0
        assert src.dominant_frequency(150.0) == 70.0
