"""DoE generators: factorials, fractions, PB, CCD, BBD, LHS, diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.doe import (
    box_behnken,
    central_composite,
    design_resolution,
    fractional_factorial,
    full_factorial,
    latin_hypercube,
    plackett_burman,
    two_level_factorial,
)
from repro.core.doe.diagnostics import (
    condition_number,
    d_efficiency,
    design_summary,
    leverage,
    max_column_correlation,
)
from repro.core.rsm.terms import ModelSpec
from repro.errors import DesignError


class TestTwoLevelFactorial:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_shape_and_levels(self, k):
        d = two_level_factorial(k)
        assert d.matrix.shape == (2**k, k)
        assert set(np.unique(d.matrix)) == {-1.0, 1.0}

    @given(st.integers(1, 8))
    def test_balance_property(self, k):
        d = two_level_factorial(k)
        # Every column sums to zero (balance).
        assert np.allclose(d.matrix.sum(axis=0), 0.0)

    @given(st.integers(2, 8))
    def test_orthogonality_property(self, k):
        d = two_level_factorial(k)
        gram = d.matrix.T @ d.matrix
        assert np.allclose(gram, 2**k * np.eye(k))

    def test_all_runs_distinct(self):
        d = two_level_factorial(4)
        assert len({tuple(r) for r in d.matrix}) == 16

    def test_rejects_bad_k(self):
        with pytest.raises(DesignError):
            two_level_factorial(0)

    def test_run_cap(self):
        with pytest.raises(DesignError):
            two_level_factorial(25)


class TestFullFactorial:
    def test_mixed_levels(self):
        d = full_factorial([2, 3])
        assert d.n_runs == 6
        assert set(np.unique(d.matrix[:, 1])) == {-1.0, 0.0, 1.0}

    def test_rejects_single_level(self):
        with pytest.raises(DesignError):
            full_factorial([2, 1])


class TestFractionalFactorial:
    def test_half_fraction_structure(self):
        d = fractional_factorial(5, ["E=ABCD"])
        assert d.n_runs == 16
        assert d.meta["resolution"] == 5
        # Column E equals the product of A..D on every run.
        prod = np.prod(d.matrix[:, :4], axis=1)
        assert np.allclose(d.matrix[:, 4], prod)

    def test_quarter_fraction_resolution(self):
        d = fractional_factorial(5, ["D=AB", "E=AC"])
        assert d.n_runs == 8
        assert d.meta["resolution"] == 3
        assert len(d.meta["defining_relation"]) == 3

    def test_alias_structure_res3(self):
        d = fractional_factorial(3, ["C=AB"])
        # In the 2^(3-1) with I=ABC, A aliases BC.
        assert "BC" in d.meta["aliases"]["A"]

    def test_res5_mains_clean_of_two_factor(self):
        d = fractional_factorial(5, ["E=ABCD"])
        for letter in "ABCDE":
            assert d.meta["aliases"][letter] == []

    def test_columns_orthogonal(self):
        d = fractional_factorial(6, ["E=ABC", "F=BCD"])
        gram = d.matrix.T @ d.matrix
        assert np.allclose(gram, d.n_runs * np.eye(6))

    @pytest.mark.parametrize(
        "k,gens",
        [
            (3, ["X=AB"]),          # left side not an added factor
            (3, ["C=A"]),           # rhs too short
            (3, ["C=AZ"]),          # unknown base letter
            (4, ["D=AB", "D=AC"]),  # duplicate definition
            (3, []),                # no generators
        ],
    )
    def test_generator_validation(self, k, gens):
        with pytest.raises(DesignError):
            fractional_factorial(k, gens)

    def test_design_resolution_helper(self):
        words = [frozenset("ABD"), frozenset("ABCE")]
        assert design_resolution(words) == 3


class TestPlackettBurman:
    @pytest.mark.parametrize("k", [3, 7, 11, 15, 19, 23])
    def test_sizes(self, k):
        d = plackett_burman(k)
        assert d.n_runs % 4 == 0
        assert d.n_runs > k
        assert d.matrix.shape[1] == k

    @pytest.mark.parametrize("k", [3, 5, 8, 11, 16, 20, 23])
    def test_orthogonality(self, k):
        d = plackett_burman(k)
        assert max_column_correlation(d) == pytest.approx(0.0, abs=1e-12)

    def test_levels(self):
        d = plackett_burman(11)
        assert set(np.unique(d.matrix)) == {-1.0, 1.0}

    def test_rejects_out_of_range(self):
        with pytest.raises(DesignError):
            plackett_burman(0)
        with pytest.raises(DesignError):
            plackett_burman(24)


class TestCentralComposite:
    def test_rotatable_alpha(self):
        d = central_composite(2, alpha="rotatable", n_center=5)
        assert d.meta["alpha"] == pytest.approx(4**0.25)
        assert d.n_runs == 4 + 4 + 5

    def test_face_centered(self):
        d = central_composite(3, alpha="face")
        assert d.meta["alpha"] == 1.0
        assert np.max(np.abs(d.matrix)) == 1.0

    def test_explicit_alpha(self):
        d = central_composite(2, alpha=1.3)
        axial = d.matrix[4:8]
        assert np.max(np.abs(axial)) == pytest.approx(1.3)

    def test_fractional_core_for_five_factors(self):
        full = central_composite(5, fraction=False)
        frac = central_composite(5, fraction=True)
        assert frac.meta["n_factorial"] == 16
        assert full.meta["n_factorial"] == 32
        assert frac.n_runs < full.n_runs

    def test_supports_quadratic_model(self):
        d = central_composite(3, n_center=3)
        model = ModelSpec.quadratic(3)
        x = model.build_matrix(d.matrix)
        assert np.linalg.matrix_rank(x) == model.p

    def test_orthogonal_alpha_positive(self):
        d = central_composite(3, alpha="orthogonal", n_center=4)
        assert d.meta["alpha"] > 0.0

    def test_validation(self):
        with pytest.raises(DesignError):
            central_composite(1)
        with pytest.raises(DesignError):
            central_composite(2, alpha="magic")
        with pytest.raises(DesignError):
            central_composite(2, alpha=-1.0)
        with pytest.raises(DesignError):
            central_composite(4, fraction=True)  # no built-in res-V core


class TestBoxBehnken:
    @pytest.mark.parametrize("k,expected_runs", [(3, 12), (4, 24), (5, 40)])
    def test_run_counts(self, k, expected_runs):
        d = box_behnken(k, n_center=0)
        assert d.n_runs == expected_runs

    def test_no_corner_points(self):
        d = box_behnken(4)
        # Never more than 2 factors away from centre simultaneously.
        active = np.sum(np.abs(d.matrix) > 0.5, axis=1)
        assert np.max(active) == 2

    def test_three_levels_only(self):
        d = box_behnken(3)
        assert set(np.unique(d.matrix)) <= {-1.0, 0.0, 1.0}

    def test_supports_quadratic_model(self):
        for k in (3, 5, 6, 7):
            d = box_behnken(k)
            model = ModelSpec.quadratic(k)
            x = model.build_matrix(d.matrix)
            assert np.linalg.matrix_rank(x) == model.p

    def test_k6_uses_triples(self):
        d = box_behnken(6, n_center=0)
        active = np.sum(np.abs(d.matrix) > 0.5, axis=1)
        assert np.max(active) == 3

    def test_validation(self):
        with pytest.raises(DesignError):
            box_behnken(2)
        with pytest.raises(DesignError):
            box_behnken(8)


class TestLatinHypercube:
    def test_stratification(self):
        d = latin_hypercube(20, 3, variant="random", seed=1)
        for j in range(3):
            # Exactly one point per stratum of width 2/n.
            strata = np.floor((d.matrix[:, j] + 1.0) / (2.0 / 20)).astype(int)
            strata = np.clip(strata, 0, 19)
            assert sorted(strata) == list(range(20))

    def test_centered_midpoints(self):
        d = latin_hypercube(10, 2, variant="centered", seed=2)
        expected = np.sort(2.0 * (np.arange(10) + 0.5) / 10 - 1.0)
        for j in range(2):
            assert np.allclose(np.sort(d.matrix[:, j]), expected)

    def test_maximin_no_worse_than_random(self):
        from repro.core.doe.lhs import _min_pairwise_distance

        rand = latin_hypercube(15, 2, variant="random", seed=3, n_candidates=1)
        maximin = latin_hypercube(15, 2, variant="maximin", seed=3)
        assert _min_pairwise_distance(maximin.matrix) >= _min_pairwise_distance(
            rand.matrix
        )

    def test_reproducible(self):
        a = latin_hypercube(12, 4, seed=9)
        b = latin_hypercube(12, 4, seed=9)
        assert np.array_equal(a.matrix, b.matrix)

    def test_bounds(self):
        d = latin_hypercube(30, 5, seed=4)
        assert np.all(d.matrix >= -1.0) and np.all(d.matrix <= 1.0)

    def test_validation(self):
        with pytest.raises(DesignError):
            latin_hypercube(1, 2)
        with pytest.raises(DesignError):
            latin_hypercube(5, 0)
        with pytest.raises(DesignError):
            latin_hypercube(5, 2, variant="quasi")


class TestDesignMethods:
    def test_with_center_points(self):
        d = two_level_factorial(2).with_center_points(3)
        assert d.n_runs == 7
        assert np.allclose(d.matrix[-3:], 0.0)

    def test_replicated(self):
        d = two_level_factorial(2).replicated(2)
        assert d.n_runs == 8

    def test_describe(self):
        text = central_composite(3).describe()
        assert "ccd" in text and "alpha" in text

    def test_augment_appends_rows(self):
        base = central_composite(2, n_center=1)
        extra = np.array([[0.25, -0.5], [0.75, 0.75]])
        merged = base.augment(extra)
        assert merged.n_runs == base.n_runs + 2
        assert np.allclose(merged.matrix[-2:], extra)
        assert merged.kind == base.kind
        assert merged.meta["augmented"] == 2
        # The original is untouched (augment returns a new design).
        assert base.n_runs == merged.n_runs - 2
        assert "augmented" not in base.meta

    def test_augment_accumulates_and_tags(self):
        design = two_level_factorial(2).augment([[0.0, 0.0]])
        design = design.augment([[0.5, 0.5]], kind="campaign")
        assert design.meta["augmented"] == 2
        assert design.kind == "campaign"
        assert "+2 augmented" in design.describe()

    def test_augment_single_row_promoted(self):
        design = two_level_factorial(2).augment(np.array([0.1, 0.2]))
        assert design.n_runs == 5

    def test_augment_empty_is_identity(self):
        design = two_level_factorial(2)
        assert design.augment(np.empty((0, 2))) is design

    def test_augment_validation(self):
        design = two_level_factorial(2)
        with pytest.raises(DesignError):
            design.augment([[1.0, 2.0, 3.0]])  # wrong k
        with pytest.raises(DesignError):
            design.augment([[np.nan, 0.0]])

    def test_augmented_design_supports_coded_fits(self):
        # The campaign contract: merging points must not break
        # coded-unit semantics — the merged matrix fits the same model
        # the base design supported, with more degrees of freedom.
        from repro.core.rsm.fit import fit_response_surface

        base = central_composite(2, n_center=1)
        merged = base.augment(
            latin_hypercube(6, 2, seed=4).matrix
        )
        y = merged.matrix[:, 0] ** 2 - merged.matrix[:, 1]
        surface = fit_response_surface(
            merged.matrix, y, ModelSpec.quadratic(2)
        )
        assert surface.stats.n == merged.n_runs
        assert surface.stats.r_squared > 0.999

    def test_quality_metrics(self):
        design = two_level_factorial(3)
        quality = design.quality()
        assert quality["d_efficiency"] == pytest.approx(1.0)
        assert quality["condition_number"] == pytest.approx(1.0)
        quadratic = central_composite(2, n_center=3).quality("quadratic")
        assert quadratic["condition_number"] > 1.0
        assert 0.0 < quadratic["d_efficiency"] <= 1.0

    def test_quality_accepts_modelspec_and_rejects_nonsense(self):
        design = central_composite(2, n_center=1)
        explicit = design.quality(ModelSpec.quadratic(2))
        named = design.quality("quadratic")
        assert explicit["condition_number"] == pytest.approx(
            named["condition_number"]
        )
        with pytest.raises(DesignError, match="unknown model"):
            design.quality("septic")


class TestDiagnostics:
    def test_factorial_is_d_optimal_for_linear(self):
        d = two_level_factorial(3)
        eff = d_efficiency(d, ModelSpec.linear(3))
        assert eff == pytest.approx(1.0)

    def test_lhs_less_efficient_than_factorial(self):
        lhs = latin_hypercube(8, 3, seed=1)
        fact = two_level_factorial(3)
        model = ModelSpec.linear(3)
        assert d_efficiency(lhs, model) < d_efficiency(fact, model)

    def test_leverage_sums_to_p(self):
        d = central_composite(2, n_center=3)
        model = ModelSpec.quadratic(2)
        lev = leverage(d, model)
        assert np.sum(lev) == pytest.approx(model.p)
        assert np.all((lev >= 0.0) & (lev <= 1.0 + 1e-12))

    def test_leverage_needs_identifiable_model(self):
        d = two_level_factorial(2)  # 4 runs
        with pytest.raises(DesignError):
            leverage(d, ModelSpec.quadratic(2))  # 6 terms

    def test_condition_number_reasonable(self):
        d = two_level_factorial(3)
        assert condition_number(d, ModelSpec.linear(3)) == pytest.approx(1.0)

    def test_design_summary_keys(self):
        summary = design_summary(central_composite(2))
        assert {"kind", "n_runs", "max_correlation", "d_efficiency"} <= set(
            summary
        )
