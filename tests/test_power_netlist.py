"""Netlist construction, MNA stamping, mode machinery."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.power.diode import Diode
from repro.power.netlist import Circuit


def _rc_circuit():
    c = Circuit("rc")
    a = c.add_node("a")
    c.add_capacitor("c1", a, Circuit.GROUND, 1e-6)
    c.add_resistor("r1", a, Circuit.GROUND, 1000.0)
    c.add_current_input("src", Circuit.GROUND, a)
    return c


class TestConstruction:
    def test_node_indices_sequential(self):
        c = Circuit()
        assert c.add_node("a") == 1
        assert c.add_node("b") == 2
        assert c.node_index("gnd") == 0

    def test_duplicate_node_rejected(self):
        c = Circuit()
        c.add_node("a")
        with pytest.raises(ModelError):
            c.add_node("a")

    def test_unknown_node_rejected(self):
        c = Circuit()
        with pytest.raises(ModelError):
            c.node_index("nope")

    def test_duplicate_element_name_rejected(self):
        c = Circuit()
        a = c.add_node("a")
        c.add_resistor("r", a, 0, 10.0)
        with pytest.raises(ModelError):
            c.add_capacitor("r", a, 0, 1e-6)

    def test_self_loop_rejected(self):
        c = Circuit()
        a = c.add_node("a")
        with pytest.raises(ModelError):
            c.add_resistor("r", a, a, 10.0)

    def test_nonpositive_values_rejected(self):
        c = Circuit()
        a = c.add_node("a")
        with pytest.raises(ModelError):
            c.add_resistor("r", a, 0, 0.0)
        with pytest.raises(ModelError):
            c.add_capacitor("c", a, 0, -1e-6)

    def test_floating_node_fails_assembly(self):
        c = Circuit("bad")
        a = c.add_node("a")
        b = c.add_node("b")
        c.add_capacitor("c1", a, 0, 1e-6)
        c.add_resistor("r1", a, b, 100.0)  # b has no capacitance
        with pytest.raises(ModelError, match="capacitance"):
            c.assemble()

    def test_empty_circuit_fails(self):
        with pytest.raises(ModelError):
            Circuit().assemble()


class TestStamps:
    def test_rc_matrices(self):
        m = _rc_circuit().assemble()
        assert m.cap_matrix == pytest.approx(np.array([[1e-6]]))
        g = m.conductance_matrix(())
        assert g == pytest.approx(np.array([[1e-3]]))

    def test_input_vector_signs(self):
        m = _rc_circuit().assemble()
        e = m.input_vector("src")
        assert e == pytest.approx(np.array([1.0]))

    def test_two_node_resistor_stamp(self):
        c = Circuit()
        a = c.add_node("a")
        b = c.add_node("b")
        c.add_capacitor("ca", a, 0, 1e-6)
        c.add_capacitor("cb", b, 0, 1e-6)
        c.add_resistor("r", a, b, 100.0)
        m = c.assemble()
        g = m.conductance_matrix(())
        assert g == pytest.approx(np.array([[0.01, -0.01], [-0.01, 0.01]]))

    def test_unknown_input_rejected(self):
        m = _rc_circuit().assemble()
        with pytest.raises(ModelError):
            m.input_vector("nope")

    def test_rc_step_response(self):
        # Forward-Euler a step of current, compare to 1 - exp(-t/RC).
        m = _rc_circuit().assemble()
        e = m.input_vector("src")
        ci = m.cap_inverse
        g = m.conductance_matrix(())
        v = np.zeros(1)
        dt = 1e-6
        i_in = 1e-3
        for _ in range(3000):
            v = v + dt * (ci @ (-(g @ v) + e * i_in))
        t = 3000 * dt
        expected = i_in * 1000.0 * (1 - np.exp(-t / (1000.0 * 1e-6)))
        assert v[0] == pytest.approx(expected, rel=1e-3)


class TestDiodeStamps:
    def _diode_circuit(self):
        c = Circuit()
        a = c.add_node("a")
        b = c.add_node("b")
        c.add_capacitor("ca", a, 0, 1e-6)
        c.add_capacitor("cb", b, 0, 1e-6)
        d = Diode.schottky()
        c.add_diode("d1", a, b, d)
        return c.assemble(), d

    def test_mode_from_voltages(self):
        m, d = self._diode_circuit()
        v_on = np.array([d.v_knee_high + 0.2, 0.0])
        assert m.mode_from_voltages(v_on) == (2,)
        v_knee = np.array([0.5 * (d.v_knee_low + d.v_knee_high), 0.0])
        assert m.mode_from_voltages(v_knee) == (1,)
        assert m.mode_from_voltages(np.array([-0.5, 0.0])) == (0,)

    def test_conductance_grows_with_state(self):
        m, _ = self._diode_circuit()
        g_off = m.conductance_matrix((0,))[0, 0]
        g_knee = m.conductance_matrix((1,))[0, 0]
        g_on = m.conductance_matrix((2,))[0, 0]
        assert g_off < g_knee < g_on

    def test_norton_offsets(self):
        m, d = self._diode_circuit()
        s_off = m.norton_vector((0,))
        assert s_off == pytest.approx(np.zeros(2))
        s_on = m.norton_vector((2,))
        # On segment i = g v + c with c < 0: +|c| into the anode row.
        _, c_on = d.pwl_coefficients(2)
        assert s_on[0] == pytest.approx(-c_on)
        assert s_on[1] == pytest.approx(c_on)

    def test_pwl_linear_system_consistency(self):
        # -G v + s must equal the negated PWL branch currents stamped
        # onto the nodes, for a random voltage in each mode.
        m, d = self._diode_circuit()
        for v_test in ([-0.4, 0.1], [0.12, 0.0], [0.5, 0.0]):
            v = np.array(v_test)
            mode = m.mode_from_voltages(v)
            g = m.conductance_matrix(mode)
            s = m.norton_vector(mode)
            rhs = -(g @ v) + s
            i_d = d.pwl_current(float(v[0] - v[1]))
            assert rhs == pytest.approx(np.array([-i_d, i_d]), abs=1e-12)

    def test_boundary_layout_two_per_diode(self):
        m, d = self._diode_circuit()
        b = m.boundary_values(np.array([0.3, 0.0]))
        assert b.shape == (2,)
        assert b[0] == pytest.approx(0.3 - d.v_knee_low)
        assert b[1] == pytest.approx(0.3 - d.v_knee_high)

    def test_segments_from_boundaries(self):
        from repro.power.netlist import CircuitMatrices

        assert CircuitMatrices.segments_from_boundaries(
            np.array([-1.0, -2.0])
        ) == (0,)
        assert CircuitMatrices.segments_from_boundaries(
            np.array([0.5, -0.5])
        ) == (1,)
        assert CircuitMatrices.segments_from_boundaries(
            np.array([0.5, 0.1])
        ) == (2,)

    def test_shockley_injection_consistent_with_scalar(self):
        m, d = self._diode_circuit()
        v = np.array([0.31, -0.05])
        inj, jac = m.shockley_injection(v)
        i = d.current(0.36)
        g = d.conductance(0.36)
        assert inj == pytest.approx(np.array([-i, i]))
        assert jac == pytest.approx(np.array([[-g, g], [g, -g]]))

    def test_invalid_mode_rejected(self):
        m, _ = self._diode_circuit()
        with pytest.raises(ModelError):
            m.conductance_matrix((5,))
        with pytest.raises(ModelError):
            m.norton_vector((0, 0))


class TestEnergyBookkeeping:
    def test_capacitor_energy(self):
        c = Circuit()
        a = c.add_node("a")
        b = c.add_node("b")
        c.add_capacitor("ca", a, 0, 2e-6)
        c.add_capacitor("cab", a, b, 1e-6)
        c.add_capacitor("cb", b, 0, 1e-6)
        m = c.assemble()
        v = np.array([3.0, 1.0])
        expected = 0.5 * 2e-6 * 9 + 0.5 * 1e-6 * 4 + 0.5 * 1e-6 * 1
        assert m.capacitor_energy(v) == pytest.approx(expected)

    def test_resistive_power(self):
        m = _rc_circuit().assemble()
        v = np.array([2.0])
        assert m.resistive_power(v) == pytest.approx(4.0 / 1000.0)
