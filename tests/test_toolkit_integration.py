"""End-to-end toolkit flow on the real simulator (reduced budget).

The canonical 5-factor study runs in the benchmarks; here a 2-factor
sub-space keeps the suite fast while still exercising the whole chain:
design -> envelope simulation -> RSM fit -> validation -> instant
exploration -> optimization.
"""

import numpy as np
import pytest

from repro.core.desirability import CompositeDesirability, Desirability
from repro.core.factors import DesignSpace, Factor
from repro.core.toolkit import (
    SensorNodeDesignToolkit,
    standard_desirability,
)
from repro.errors import DesignError
from repro.sim.envelope import EnvelopeOptions, clear_charging_cache

FAST_ENVELOPE = EnvelopeOptions(
    map_v_points=4,
    map_nr_warmup_cycles=4,
    map_warmup_cycles=8,
    map_measure_cycles=6,
    map_max_blocks=3,
    map_steps_per_period=80,
)


@pytest.fixture(scope="module")
def study():
    clear_charging_cache()
    space = DesignSpace(
        [
            Factor("capacitance", 0.10, 1.00, units="F"),
            Factor("tx_interval", 2.0, 60.0, transform="log", units="s"),
        ]
    )
    toolkit = SensorNodeDesignToolkit(
        space=space,
        mission_time=600.0,
        envelope=FAST_ENVELOPE,
    )
    return toolkit.run_study(design="ccd", validate_points=5)


class TestStudyFlow:
    def test_design_ran(self, study):
        assert study.exploration.n_runs >= 11

    def test_surfaces_fit_well(self, study):
        # Data rate is dominated by the reporting period: near-perfect.
        assert study.surfaces["effective_data_rate"].stats.r_squared > 0.95

    def test_validation_populated(self, study):
        assert study.validation is not None
        rate = study.validation.metrics["effective_data_rate"]
        assert rate["normalized_rmse"] < 0.25

    def test_rsm_evaluation_fast(self, study):
        # "Practically instant": thousands of times faster than a
        # mission simulation.
        assert study.speedup_sim_vs_rsm > 1000.0

    def test_predict_physical_units(self, study):
        out = study.predict(capacitance=0.5, tx_interval=10.0)
        assert set(out) == set(study.surfaces)
        # 256 bits / 10 s = 25.6 bit/s within surface error.
        assert out["effective_data_rate"] == pytest.approx(25.6, rel=0.3)

    def test_predict_monotone_in_interval(self, study):
        fast = study.predict(capacitance=0.5, tx_interval=3.0)
        slow = study.predict(capacitance=0.5, tx_interval=50.0)
        assert (
            fast["effective_data_rate"] > slow["effective_data_rate"]
        )

    def test_surface_slice_shapes(self, study):
        x, y, grid = study.surface_slice(
            "effective_data_rate", "capacitance", "tx_interval", n=11
        )
        assert x.shape == (11,) and y.shape == (11,)
        assert grid.shape == (11, 11)
        # Physical axes span the factor ranges.
        assert x[0] == pytest.approx(0.10) and x[-1] == pytest.approx(1.00)

    def test_trade_off_front(self, study):
        points, values = study.trade_off(
            ["effective_data_rate", "downtime_fraction"],
            maximize=[True, False],
            points_per_axis=9,
        )
        assert points.shape[0] == values.shape[0] > 0

    def test_optimize_desirability(self, study):
        comp = CompositeDesirability(
            {
                "effective_data_rate": Desirability("maximize", 0.0, 60.0),
                "min_store_voltage": Desirability("maximize", 2.2, 2.6),
            }
        )
        outcome, physical = study.optimize(comp)
        assert 0.0 < outcome.value <= 1.0
        assert set(physical) == {"capacitance", "tx_interval"}

    def test_report_renders(self, study):
        text = study.report()
        assert "== fit quality ==" in text
        assert "speedup" in text

    def test_report_shows_design_quality(self, study):
        # Operators see what the campaign conditions on: D-efficiency
        # and the model-matrix condition number of the fitted model.
        text = study.report()
        assert "design quality" in text
        assert "D-efficiency" in text
        assert "condition number" in text
        quality = study.exploration.design.quality("quadratic")
        assert f"{quality['d_efficiency']:.3f}" in text

    def test_unknown_surface_rejected(self, study):
        with pytest.raises(DesignError):
            study.surface_slice("bogus", "capacitance", "tx_interval")


class TestRunCampaign:
    def test_campaign_over_real_simulator(self, tmp_path):
        # Small budget on the 2-factor sub-space: the adaptive loop
        # must converge toward the max-data-rate corner, journal its
        # state beside the cache, and answer a resume for free.
        space = DesignSpace(
            [
                Factor("capacitance", 0.10, 1.00, units="F"),
                Factor(
                    "tx_interval", 2.0, 60.0, transform="log", units="s"
                ),
            ]
        )
        store = str(tmp_path / "campaign.sqlite")
        toolkit = SensorNodeDesignToolkit(
            space=space,
            mission_time=120.0,
            envelope=FAST_ENVELOPE,
            cache_dir=store,
        )
        result = toolkit.run_campaign(
            objective="effective_data_rate",
            config={"max_rounds": 3, "batch": 4, "seed": 3, "budget": 16},
        )
        assert result.n_rounds >= 1
        assert result.best["value"] > 50.0  # fast reporting corner
        assert result.best["point"]["tx_interval"] == pytest.approx(
            2.0, rel=0.1
        )
        # State journaled in the store's database; resume is free.
        resumed = toolkit.run_campaign(
            objective="effective_data_rate",
            config={"max_rounds": 3, "batch": 4, "seed": 3, "budget": 16},
            resume=True,
        )
        assert resumed.stop_reason == result.stop_reason
        assert resumed.history == result.history
        toolkit.close()


class TestToolkitConfig:
    def test_build_design_kinds(self):
        toolkit = SensorNodeDesignToolkit(
            space=DesignSpace(
                [Factor("capacitance", 0.1, 1.0), Factor("tx_interval", 2, 60)]
            )
        )
        assert toolkit.build_design("ccd").kind == "ccd"
        assert toolkit.build_design("lhs").kind == "lhs"
        assert toolkit.build_design("factorial").kind == "full-2k"
        with pytest.raises(DesignError):
            toolkit.build_design("taguchi")

    def test_unknown_design_kind_lists_available(self):
        # The error must be actionable: name every registered kind.
        toolkit = SensorNodeDesignToolkit(
            space=DesignSpace(
                [Factor("capacitance", 0.1, 1.0), Factor("tx_interval", 2, 60)]
            )
        )
        with pytest.raises(DesignError) as excinfo:
            toolkit.build_design("taguchi")
        message = str(excinfo.value)
        assert "taguchi" in message
        for kind in toolkit.design_kinds:
            assert kind in message
        assert set(toolkit.design_kinds) >= {
            "ccd", "box-behnken", "lhs", "factorial"
        }

    def test_standard_desirability_shape(self):
        comp = standard_desirability()
        good = comp(
            {
                "effective_data_rate": 50.0,
                "downtime_fraction": 0.0,
                "final_store_voltage": 3.4,
            }
        )
        bad = comp(
            {
                "effective_data_rate": 50.0,
                "downtime_fraction": 0.5,
                "final_store_voltage": 3.4,
            }
        )
        assert good > 0.5
        assert bad == 0.0
