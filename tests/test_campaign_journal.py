"""Campaign journal contract over every substrate.

One parametrized suite pins :class:`MemoryCampaignJournal`,
:class:`FileCampaignJournal` and :class:`SQLiteCampaignJournal` to the
same create/plan/complete/finish semantics — the same pattern the
store- and backend-contract suites use, so a future journal substrate
plugs into the identical pinning.
"""

import json

import pytest

from repro.campaign.journal import (
    CAMPAIGN_SCHEMA_VERSION,
    FileCampaignJournal,
    MemoryCampaignJournal,
    SQLiteCampaignJournal,
    journal_for_store,
    resolve_journal,
)
from repro.errors import ReproError
from repro.exec.store import FileStore, MemoryStore, SQLiteStore


@pytest.fixture(params=["memory", "file", "sqlite"])
def journal(request, tmp_path):
    if request.param == "memory":
        j = MemoryCampaignJournal()
    elif request.param == "file":
        j = FileCampaignJournal(tmp_path / ".campaign")
    else:
        j = SQLiteCampaignJournal(tmp_path / "journal.sqlite")
    yield j
    j.close()


CONFIG = {"config": {"seed": 3}, "objective": {"kind": "response"}}


class TestJournalContract:
    def test_create_and_load(self, journal):
        journal.create("camp", CONFIG)
        record = journal.load("camp")
        assert record is not None
        assert record.status == "running"
        assert record.config == CONFIG
        assert record.rounds == []
        assert record.created_at is not None

    def test_load_absent_returns_none(self, journal):
        assert journal.load("ghost") is None

    def test_create_refuses_to_clobber(self, journal):
        journal.create("camp", CONFIG)
        with pytest.raises(ReproError, match="already exists"):
            journal.create("camp", CONFIG)

    def test_create_overwrite_resets(self, journal):
        journal.create("camp", CONFIG)
        journal.begin_round("camp", 0, {"points": [[0.0]]})
        journal.create("camp", {"config": {"seed": 9}}, overwrite=True)
        record = journal.load("camp")
        assert record.config == {"config": {"seed": 9}}
        assert record.rounds == []
        assert record.status == "running"

    def test_round_lifecycle(self, journal):
        journal.create("camp", CONFIG)
        journal.begin_round("camp", 0, {"points": [[0.0, 1.0]]})
        record = journal.load("camp")
        assert [r.status for r in record.rounds] == ["planned"]
        journal.complete_round("camp", 0, {"score": 1.5})
        journal.begin_round("camp", 1, {"points": [[0.5, 0.5]]})
        record = journal.load("camp")
        assert [r.status for r in record.rounds] == ["complete", "planned"]
        assert record.rounds[0].completed == {"score": 1.5}
        assert record.rounds[1].planned == {"points": [[0.5, 0.5]]}

    def test_complete_unplanned_round_rejected(self, journal):
        journal.create("camp", CONFIG)
        with pytest.raises(ReproError, match="no planned round"):
            journal.complete_round("camp", 3, {})

    def test_round_ops_need_campaign(self, journal):
        with pytest.raises(ReproError):
            journal.begin_round("ghost", 0, {})
        with pytest.raises(ReproError):
            journal.finish("ghost", {})

    def test_finish_seals(self, journal):
        journal.create("camp", CONFIG)
        journal.begin_round("camp", 0, {"points": []})
        journal.complete_round("camp", 0, {"score": 2.0})
        journal.finish("camp", {"stop_reason": "max-rounds"})
        record = journal.load("camp")
        assert record.status == "complete"
        assert record.result == {"stop_reason": "max-rounds"}

    def test_begin_round_replaces_same_index(self, journal):
        # A resume may re-plan an interrupted round deterministically;
        # the journal keeps exactly one row per index.
        journal.create("camp", CONFIG)
        journal.begin_round("camp", 0, {"points": [[0.0]]})
        journal.begin_round("camp", 0, {"points": [[1.0]]})
        record = journal.load("camp")
        assert len(record.rounds) == 1
        assert record.rounds[0].planned == {"points": [[1.0]]}

    def test_advance_round_equals_complete_then_begin(self, journal):
        # One round boundary, one durable mutation — but observably
        # identical to complete_round + begin_round.
        journal.create("camp", CONFIG)
        journal.begin_round("camp", 0, {"points": [[0.0]]})
        journal.advance_round(
            "camp", 0, {"score": 1.5}, {"points": [[0.5]]}
        )
        record = journal.load("camp")
        assert [r.status for r in record.rounds] == [
            "complete",
            "planned",
        ]
        assert record.rounds[0].completed == {"score": 1.5}
        assert record.rounds[1].planned == {"points": [[0.5]]}
        # The boundary chains: the next advance completes round 1.
        journal.advance_round("camp", 1, {"score": 0.5}, {"points": []})
        record = journal.load("camp")
        assert [r.status for r in record.rounds] == [
            "complete",
            "complete",
            "planned",
        ]

    def test_advance_round_replaces_a_stale_next_plan(self, journal):
        # A resume may have re-planned round 1 already; advance keeps
        # exactly one row per index, like begin_round.
        journal.create("camp", CONFIG)
        journal.begin_round("camp", 0, {"points": [[0.0]]})
        journal.begin_round("camp", 1, {"points": [[9.0]]})
        journal.advance_round("camp", 0, {"score": 1.0}, {"points": [[0.5]]})
        record = journal.load("camp")
        assert len(record.rounds) == 2
        assert record.rounds[1].planned == {"points": [[0.5]]}
        assert record.rounds[1].status == "planned"

    def test_advance_unplanned_round_is_atomic_rejection(self, journal):
        journal.create("camp", CONFIG)
        with pytest.raises(ReproError, match="no planned round"):
            journal.advance_round("camp", 3, {}, {"points": []})
        # Nothing landed: the rejection left no round-4 plan behind.
        assert journal.load("camp").rounds == []

    def test_campaigns_lists_everything(self, journal):
        journal.create("a", CONFIG)
        journal.create("b", CONFIG)
        ids = [r.campaign_id for r in journal.campaigns()]
        assert set(ids) == {"a", "b"}

    def test_floats_roundtrip_exactly(self, journal):
        # Bit-identical resume rests on this: journaled responses must
        # come back as the same float bits.
        values = [0.1, 1.0000000000000002, 130.13333333333347, 1e-300]
        journal.create("camp", CONFIG)
        journal.begin_round("camp", 0, {"points": [values]})
        record = journal.load("camp")
        assert record.rounds[0].planned["points"][0] == values


class TestFileJournal:
    def test_rejects_bad_campaign_ids(self, tmp_path):
        journal = FileCampaignJournal(tmp_path)
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(ReproError):
                journal.create(bad, CONFIG)

    def test_corrupt_document_is_loud(self, tmp_path):
        journal = FileCampaignJournal(tmp_path)
        journal.create("camp", CONFIG)
        (tmp_path / "camp.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ReproError, match="corrupt"):
            journal.load("camp")

    def test_schema_mismatch_refused(self, tmp_path):
        journal = FileCampaignJournal(tmp_path)
        journal.create("camp", CONFIG)
        path = tmp_path / "camp.json"
        blob = json.loads(path.read_text())
        blob["schema"] = CAMPAIGN_SCHEMA_VERSION + 1
        path.write_text(json.dumps(blob))
        with pytest.raises(ReproError, match="schema"):
            journal.load("camp")

    def test_stray_files_ignored_in_listing(self, tmp_path):
        journal = FileCampaignJournal(tmp_path)
        journal.create("camp", CONFIG)
        (tmp_path / ".write-stray.part").write_text("x")
        (tmp_path / "notes.txt").write_text("x")
        assert [r.campaign_id for r in journal.campaigns()] == ["camp"]


class TestSQLiteJournal:
    def test_shares_database_with_store_and_queue(self, tmp_path):
        path = tmp_path / "substrate.sqlite"
        store = SQLiteStore(path)
        store.persist("fp", {"y": 1.0})
        journal = SQLiteCampaignJournal(path)
        journal.create("camp", CONFIG)
        assert store.peek("fp") == {"y": 1.0}
        assert journal.load("camp").status == "running"
        journal.close()
        store.close()

    def test_pickles_by_path(self, tmp_path):
        import pickle

        journal = SQLiteCampaignJournal(tmp_path / "j.sqlite")
        journal.create("camp", CONFIG)
        clone = pickle.loads(pickle.dumps(journal))
        assert clone.load("camp").status == "running"
        clone.close()
        journal.close()


class TestResolution:
    def test_resolve_none_is_memory(self):
        assert resolve_journal(None).name == "memory"

    def test_resolve_passthrough(self):
        journal = MemoryCampaignJournal()
        assert resolve_journal(journal) is journal

    def test_resolve_by_suffix(self, tmp_path):
        assert (
            resolve_journal(tmp_path / "x.sqlite").name == "sqlite"
        )
        file_journal = resolve_journal(tmp_path / "store-dir")
        assert file_journal.name == "file"
        assert file_journal.directory.name == ".campaign"

    def test_journal_for_store(self, tmp_path):
        assert journal_for_store(MemoryStore()).name == "memory"
        sq = SQLiteStore(tmp_path / "s.sqlite")
        assert journal_for_store(sq).name == "sqlite"
        sq.close()
        fs = FileStore(tmp_path / "fs")
        journal = journal_for_store(fs)
        assert journal.name == "file"
        assert journal.directory == fs.directory / ".campaign"
        fs.close()
