"""The metrics registry and Prometheus exporter.

Covers the acceptance properties of the observability tentpole's
metrics half: instruments are idempotent and thread-safe (N threads,
exact totals), collectors are pull-time and weakref-pruned, and the
text exposition round-trips through its own parser bit-exactly —
including histogram bucket ordering, label escaping and ``+Inf``.
"""

import threading
import urllib.request

import pytest

from repro.obs.export import (
    MetricsServer,
    parse_prometheus,
    render_prometheus,
    write_textfile,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    Sample,
    default_registry,
    series_key,
)


class TestInstruments:
    def test_counter_counts_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs", ("worker",))
        c.inc(worker="a")
        c.inc(3, worker="a")
        c.inc(worker="b")
        assert c.value(worker="a") == 4
        assert c.value(worker="b") == 1
        assert c.value(worker="never") == 0

    def test_counter_rejects_negative_and_unknown_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "", ("worker",))
        with pytest.raises(ValueError):
            c.inc(-1, worker="a")
        with pytest.raises(ValueError):
            c.inc(1, nope="a")

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth", "", ("status",))
        g.set(5, status="pending")
        g.inc(2, status="pending")
        g.dec(status="pending")
        assert g.value(status="pending") == 6

    def test_instrument_creation_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total", "", ("a",)) is reg.counter(
            "x_total", "", ("a",)
        )

    def test_kind_or_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "", ("a",))
        with pytest.raises(ValueError):
            reg.gauge("x_total", "", ("a",))
        with pytest.raises(ValueError):
            reg.counter("x_total", "", ("b",))

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(50.0)  # lands in +Inf
        rows = {s.key: s.value for s in h.samples()}
        assert rows['lat_bucket{le="0.1"}'] == 1
        assert rows['lat_bucket{le="1"}'] == 2
        assert rows['lat_bucket{le="+Inf"}'] == 3
        assert rows["lat_count"] == 3
        assert rows["lat_sum"] == pytest.approx(50.55)

    def test_default_buckets_end_at_inf(self):
        assert DEFAULT_BUCKETS[-1] == float("inf")

    def test_series_key_is_stable_under_label_order(self):
        assert series_key("m", {"b": 1, "a": 2}) == series_key(
            "m", {"a": 2, "b": 1}
        )


class TestConcurrency:
    def test_n_threads_land_exact_totals(self):
        """The hard registry guarantee: concurrent increments from N
        threads across instruments and label sets lose nothing."""
        reg = MetricsRegistry()
        counter = reg.counter("ops_total", "", ("worker",))
        gauge = reg.gauge("level", "")
        hist = reg.histogram("lat", "", buckets=(0.5,))
        threads, per_thread = 8, 2500

        def hammer(idx):
            label = f"w{idx % 2}"
            for _ in range(per_thread):
                counter.inc(worker=label)
                gauge.inc()
                hist.observe(0.25)

        pool = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = threads * per_thread
        assert counter.value(worker="w0") == total / 2
        assert counter.value(worker="w1") == total / 2
        assert gauge.value() == total
        count, summed = hist.state()
        assert count == total
        assert summed == pytest.approx(0.25 * total)

    def test_concurrent_instrument_creation_yields_one_metric(self):
        reg = MetricsRegistry()
        handles = []

        def create():
            handles.append(reg.counter("shared_total", "", ()))

        pool = [threading.Thread(target=create) for _ in range(16)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len({id(h) for h in handles}) == 1


class TestCollectors:
    def test_collector_samples_appear_and_unregister(self):
        reg = MetricsRegistry()
        unregister = reg.register_collector(
            lambda: [Sample("ext", "gauge", "", (), 7.0)]
        )
        assert reg.snapshot()["ext"] == 7.0
        unregister()
        assert "ext" not in reg.snapshot()

    def test_object_collector_prunes_when_object_dies(self):
        reg = MetricsRegistry()

        class Tracked:
            value = 3.0

        obj = Tracked()
        reg.register_object_collector(
            obj, lambda o: [Sample("tracked", "gauge", "", (), o.value)]
        )
        assert reg.snapshot()["tracked"] == 3.0
        del obj
        assert "tracked" not in reg.snapshot()

    def test_raising_collector_is_skipped_not_fatal(self):
        reg = MetricsRegistry()
        reg.counter("ok_total", "").inc()

        def bad():
            raise RuntimeError("component mid-teardown")

        reg.register_collector(bad)
        assert reg.snapshot()["ok_total"] == 1.0

    def test_duplicate_series_sum_in_snapshot(self):
        """Two mirrors of one series aggregate — the cross-instance
        rule the fleet aggregator also uses."""
        reg = MetricsRegistry()
        mk = lambda v: lambda: [Sample("dup_total", "counter", "", (), v)]
        reg.register_collector(mk(2.0))
        reg.register_collector(mk(5.0))
        assert reg.snapshot()["dup_total"] == 7.0

    def test_delta_mirrors_stats_since_idiom(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "")
        c.inc(4)
        before = reg.snapshot()
        c.inc(3)
        assert reg.delta(before)["ops_total"] == 3.0


class TestExposition:
    def _registry(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_jobs_total", "Jobs processed.", ("worker",))
        c.inc(5, worker="w-1")
        c.inc(2, worker='we"ird\\w')  # label escaping must round-trip
        reg.gauge("repro_depth", "Queue depth.").set(11)
        h = reg.histogram("repro_lat_seconds", "Latency.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.7)
        return reg

    def test_round_trip_is_exact(self):
        reg = self._registry()
        parsed = parse_prometheus(render_prometheus(registry=reg))
        assert parsed == reg.snapshot()

    def test_help_and_type_headers(self):
        text = render_prometheus(registry=self._registry())
        assert "# HELP repro_jobs_total Jobs processed." in text
        assert "# TYPE repro_jobs_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_lat_seconds histogram" in text

    def test_histogram_family_shares_one_type_header(self):
        text = render_prometheus(registry=self._registry())
        assert text.count("# TYPE repro_lat_seconds histogram") == 1
        # Buckets stay in ascending-le order with +Inf last.
        bucket_lines = [
            l for l in text.splitlines() if l.startswith("repro_lat_seconds_bucket")
        ]
        assert bucket_lines[-1].startswith('repro_lat_seconds_bucket{le="+Inf"}')

    def test_duplicate_keys_sum_in_exposition(self):
        samples = [
            Sample("m_total", "counter", "", (), 1.0),
            Sample("m_total", "counter", "", (), 2.0),
        ]
        assert parse_prometheus(render_prometheus(samples=samples)) == {
            "m_total": 3.0
        }

    def test_textfile_write_is_atomic_and_parseable(self, tmp_path):
        out = tmp_path / "metrics" / "repro.prom"
        write_textfile(out, registry=self._registry())
        parsed = parse_prometheus(out.read_text())
        assert parsed['repro_jobs_total{worker="w-1"}'] == 5.0
        assert not list(out.parent.glob("*.tmp*"))  # no staging litter


class TestServer:
    def test_scrape_endpoint_serves_registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_up_total", "").inc(9)
        with MetricsServer(port=0, registry=reg) as server:
            body = urllib.request.urlopen(server.url, timeout=5).read()
        assert parse_prometheus(body.decode())["repro_up_total"] == 9.0

    def test_extra_samples_fold_in_per_scrape(self):
        reg = MetricsRegistry()
        pulls = []

        def extra():
            pulls.append(1)
            return [Sample("fleet_extra", "gauge", "", (), float(len(pulls)))]

        with MetricsServer(port=0, registry=reg, extra_samples=extra) as server:
            first = urllib.request.urlopen(server.url, timeout=5).read().decode()
            second = urllib.request.urlopen(server.url, timeout=5).read().decode()
        assert parse_prometheus(first)["fleet_extra"] == 1.0
        assert parse_prometheus(second)["fleet_extra"] == 2.0

    def test_non_metrics_path_is_404(self):
        with MetricsServer(port=0, registry=MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url.replace("/metrics", "/nope"), timeout=5)
        assert err.value.code == 404


def test_default_registry_is_a_singleton():
    assert default_registry() is default_registry()
