"""Desirability, Pareto, and RSM-based optimizers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.desirability import CompositeDesirability, Desirability
from repro.core.doe import latin_hypercube
from repro.core.optimize import optimize_desirability, optimize_surface
from repro.core.pareto import hypervolume_2d, pareto_front
from repro.core.rsm import ModelSpec, fit_response_surface
from repro.errors import OptimizationError


class TestDesirability:
    def test_maximize_ramp(self):
        d = Desirability("maximize", 0.0, 10.0)
        assert d(-1.0) == 0.0
        assert d(5.0) == pytest.approx(0.5)
        assert d(12.0) == 1.0

    def test_minimize_ramp(self):
        d = Desirability("minimize", 0.0, 0.1)
        assert d(0.0) == 1.0
        assert d(0.05) == pytest.approx(0.5)
        assert d(0.2) == 0.0

    def test_target_peak(self):
        d = Desirability("target", 2.0, 4.0, target=3.0)
        assert d(3.0) == 1.0
        assert d(2.5) == pytest.approx(0.5)
        assert d(3.5) == pytest.approx(0.5)
        assert d(1.0) == 0.0 and d(5.0) == 0.0

    def test_weight_shapes_ramp(self):
        strict = Desirability("maximize", 0.0, 1.0, weight=3.0)
        lax = Desirability("maximize", 0.0, 1.0, weight=0.5)
        assert strict(0.5) < 0.5 < lax(0.5)

    @given(st.floats(-100, 100))
    def test_bounded_property(self, value):
        for d in (
            Desirability("maximize", -1.0, 1.0),
            Desirability("minimize", -1.0, 1.0),
            Desirability("target", -1.0, 1.0, target=0.0),
        ):
            assert 0.0 <= d(value) <= 1.0

    @given(st.floats(-10, 10), st.floats(-10, 10))
    def test_maximize_monotone(self, a, b):
        d = Desirability("maximize", -5.0, 5.0)
        lo, hi = sorted((a, b))
        assert d(lo) <= d(hi)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            Desirability("maximize", 1.0, 0.0)
        with pytest.raises(OptimizationError):
            Desirability("target", 0.0, 1.0)  # missing target
        with pytest.raises(OptimizationError):
            Desirability("target", 0.0, 1.0, target=2.0)
        with pytest.raises(OptimizationError):
            Desirability("maximize", 0.0, 1.0, target=0.5)
        with pytest.raises(OptimizationError):
            Desirability("best", 0.0, 1.0)


class TestCompositeDesirability:
    def _composite(self):
        return CompositeDesirability(
            {
                "rate": Desirability("maximize", 0.0, 10.0),
                "downtime": Desirability("minimize", 0.0, 0.1),
            }
        )

    def test_geometric_mean(self):
        comp = self._composite()
        score = comp({"rate": 5.0, "downtime": 0.05})
        assert score == pytest.approx(np.sqrt(0.5 * 0.5))

    def test_zero_vetoes(self):
        comp = self._composite()
        assert comp({"rate": 20.0, "downtime": 0.5}) == 0.0

    def test_importance_weights(self):
        weighted = CompositeDesirability(
            {
                "a": Desirability("maximize", 0.0, 1.0),
                "b": Desirability("maximize", 0.0, 1.0),
            },
            importances={"a": 3.0},
        )
        # a=1 (good), b=0.25 (poor): weighting toward a raises score
        # above the unweighted geometric mean.
        unweighted = CompositeDesirability(
            {
                "a": Desirability("maximize", 0.0, 1.0),
                "b": Desirability("maximize", 0.0, 1.0),
            }
        )
        values = {"a": 1.0, "b": 0.25}
        assert weighted(values) > unweighted(values)

    def test_missing_response_rejected(self):
        with pytest.raises(OptimizationError):
            self._composite()({"rate": 1.0})

    def test_validation(self):
        with pytest.raises(OptimizationError):
            CompositeDesirability({})
        with pytest.raises(OptimizationError):
            CompositeDesirability(
                {"a": Desirability("maximize", 0, 1)},
                importances={"zzz": 1.0},
            )


class TestParetoFront:
    def test_simple_front(self):
        obj = np.array(
            [
                [1.0, 1.0],  # dominated by [2, 2]
                [2.0, 2.0],
                [3.0, 0.5],
                [0.5, 3.0],
            ]
        )
        idx = pareto_front(obj, [True, True])
        assert set(idx) == {1, 2, 3}

    def test_direction_flip(self):
        obj = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert set(pareto_front(obj, [True, False])) == {0, 1}

    def test_front_is_mutually_nondominated(self):
        rng = np.random.default_rng(21)
        obj = rng.uniform(0, 1, (60, 3))
        idx = pareto_front(obj, [True, True, False])
        front = obj[idx]
        signs = np.array([1.0, 1.0, -1.0])
        work = front * signs
        for i in range(len(front)):
            for j in range(len(front)):
                if i == j:
                    continue
                dominates = np.all(work[j] >= work[i]) and np.any(
                    work[j] > work[i]
                )
                assert not dominates

    def test_duplicates_kept(self):
        obj = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert len(pareto_front(obj, [True, True])) == 2

    def test_nonfinite_rejected(self):
        with pytest.raises(OptimizationError):
            pareto_front(np.array([[np.nan, 1.0]]), [True, True])

    def test_hypervolume_known_case(self):
        obj = np.array([[1.0, 2.0], [2.0, 1.0]])
        hv = hypervolume_2d(obj, [True, True], reference=[0.0, 0.0])
        # Union of 1x2 and 2x1 rectangles = 3.
        assert hv == pytest.approx(3.0)

    def test_hypervolume_monotone_in_points(self):
        base = np.array([[1.0, 1.0]])
        more = np.array([[1.0, 1.0], [2.0, 0.5]])
        ref = [0.0, 0.0]
        assert hypervolume_2d(more, [True, True], ref) >= hypervolume_2d(
            base, [True, True], ref
        )


class TestOptimizeSurface:
    def _surface(self):
        x = latin_hypercube(40, 2, seed=20).matrix
        y = -((x[:, 0] - 0.3) ** 2) - 2 * (x[:, 1] + 0.2) ** 2
        return fit_response_surface(x, y, ModelSpec.quadratic(2))

    def test_finds_interior_maximum(self):
        outcome = optimize_surface(self._surface(), maximize=True)
        assert outcome.x_coded == pytest.approx([0.3, -0.2], abs=1e-3)
        assert outcome.value == pytest.approx(0.0, abs=1e-6)

    def test_minimize_runs_to_boundary(self):
        outcome = optimize_surface(self._surface(), maximize=False)
        assert np.any(np.abs(outcome.x_coded) >= 1.0 - 1e-6)

    def test_stays_in_box(self):
        outcome = optimize_surface(self._surface(), maximize=False)
        assert np.all(np.abs(outcome.x_coded) <= 1.0 + 1e-9)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            optimize_surface(self._surface(), points_per_axis=1)


class TestOptimizeSurfaceEdgeCases:
    """Degenerate topologies the campaign's acquisition loop hits."""

    def _fit(self, fn, seed=31, n=60):
        x = latin_hypercube(n, 2, seed=seed).matrix
        return fit_response_surface(x, fn(x), ModelSpec.quadratic(2))

    def test_tied_grid_optima_deterministic(self):
        # y = x1^2 is symmetric: the scan grid ties at x1 = +/-1.  The
        # optimizer must return one of the tied optima with the right
        # value, and do so deterministically across calls.
        surface = self._fit(lambda x: x[:, 0] ** 2)
        first = optimize_surface(surface, maximize=True)
        second = optimize_surface(surface, maximize=True)
        assert abs(first.x_coded[0]) == pytest.approx(1.0, abs=1e-6)
        assert first.value == pytest.approx(1.0, abs=1e-6)
        assert np.array_equal(first.x_coded, second.x_coded)
        assert first.value == second.value

    def test_flat_surface_stays_in_box(self):
        # A perfectly flat response ties *every* grid cell.
        surface = self._fit(lambda x: np.full(x.shape[0], 3.0))
        outcome = optimize_surface(surface, maximize=True)
        assert outcome.value == pytest.approx(3.0, abs=1e-9)
        assert np.all(np.abs(outcome.x_coded) <= 1.0 + 1e-9)

    def test_optimum_pinned_to_box_boundary(self):
        # A linear trend drives the optimum into the corner; the
        # refinement must pin it there exactly, never step outside.
        surface = self._fit(lambda x: 2.0 * x[:, 0] - x[:, 1])
        outcome = optimize_surface(surface, maximize=True)
        assert outcome.x_coded[0] == pytest.approx(1.0, abs=1e-9)
        assert outcome.x_coded[1] == pytest.approx(-1.0, abs=1e-9)
        assert np.all(np.abs(outcome.x_coded) <= 1.0 + 1e-12)
        assert outcome.evaluations > 0

    def test_boundary_ridge_single_active_factor(self):
        # Only x1 matters: x2 ties everywhere along the optimal edge.
        surface = self._fit(lambda x: x[:, 0])
        outcome = optimize_surface(surface, maximize=True)
        assert outcome.x_coded[0] == pytest.approx(1.0, abs=1e-9)
        assert outcome.value == pytest.approx(1.0, abs=1e-6)


class TestDesirabilityZeroRegions:
    """Composite-desirability all-zero and near-all-zero regions."""

    def _surfaces(self, seed=22):
        x = latin_hypercube(40, 2, seed=seed).matrix
        rate = 5.0 + 4.0 * x[:, 0]
        downtime = 0.05 + 0.04 * x[:, 0] - 0.02 * x[:, 1]
        return {
            "rate": fit_response_surface(x, rate, ModelSpec.quadratic(2)),
            "downtime": fit_response_surface(
                x, downtime, ModelSpec.quadratic(2)
            ),
        }

    def test_all_zero_region_raises_regardless_of_density(self):
        comp = CompositeDesirability(
            {"rate": Desirability("maximize", 100.0, 200.0)}
        )
        for density in (3, 7, 15):
            with pytest.raises(OptimizationError, match="zero everywhere"):
                optimize_desirability(
                    self._surfaces(), comp, points_per_axis=density
                )

    def test_conflicting_goals_zero_region_vetoes_but_feasible_sliver_found(self):
        # rate wants x1 high, downtime wants x1 low: each part zeroes
        # out a half-space and only a band in between survives the
        # geometric-mean veto.
        comp = CompositeDesirability(
            {
                "rate": Desirability("maximize", 6.0, 9.0),
                "downtime": Desirability("minimize", 0.03, 0.07),
            }
        )
        outcome = optimize_desirability(self._surfaces(), comp)
        assert 0.0 < outcome.value <= 1.0
        # Inside the feasible band both hard constraints hold.
        assert outcome.responses["rate"] > 6.0
        assert outcome.responses["downtime"] < 0.07

    def test_narrow_sliver_missed_by_coarse_grid(self):
        # The feasible set requires rate >= 8.9, i.e. x1 >= 0.975 — a
        # sliver the interior cells of a 3-point grid miss, but the
        # boundary cell x1 = 1 catches.  Documents that feasibility
        # detection is grid-resolution-bound: callers with thin
        # feasible bands should raise points_per_axis.
        comp = CompositeDesirability(
            {"rate": Desirability("maximize", 8.9, 9.5)}
        )
        outcome = optimize_desirability(
            self._surfaces(), comp, points_per_axis=3
        )
        assert outcome.x_coded[0] == pytest.approx(1.0, abs=1e-6)
        assert outcome.value > 0.0

    def test_zero_desirability_point_never_wins(self):
        comp = CompositeDesirability(
            {
                "rate": Desirability("maximize", 6.0, 9.0),
                "downtime": Desirability("minimize", 0.03, 0.07),
            }
        )
        outcome = optimize_desirability(self._surfaces(), comp)
        assert comp(outcome.responses) == pytest.approx(
            outcome.value, rel=1e-9
        )
        assert outcome.value > 0.0


class TestOptimizeDesirability:
    def _surfaces(self):
        x = latin_hypercube(40, 2, seed=22).matrix
        rate = 5.0 + 4.0 * x[:, 0]
        downtime = 0.05 + 0.04 * x[:, 0] - 0.02 * x[:, 1]
        return {
            "rate": fit_response_surface(x, rate, ModelSpec.quadratic(2)),
            "downtime": fit_response_surface(
                x, downtime, ModelSpec.quadratic(2)
            ),
        }

    def test_balances_conflicting_goals(self):
        comp = CompositeDesirability(
            {
                "rate": Desirability("maximize", 0.0, 10.0),
                "downtime": Desirability("minimize", 0.0, 0.1),
            }
        )
        outcome = optimize_desirability(self._surfaces(), comp)
        assert 0.0 < outcome.value <= 1.0
        # x2 only helps downtime: must be pushed high.
        assert outcome.x_coded[1] == pytest.approx(1.0, abs=1e-3)
        assert set(outcome.responses) == {"rate", "downtime"}

    def test_unsatisfiable_raises(self):
        comp = CompositeDesirability(
            {"rate": Desirability("maximize", 100.0, 200.0)}
        )
        with pytest.raises(OptimizationError, match="zero everywhere"):
            optimize_desirability(self._surfaces(), comp)

    def test_missing_surface_rejected(self):
        comp = CompositeDesirability(
            {"bogus": Desirability("maximize", 0.0, 1.0)}
        )
        with pytest.raises(OptimizationError, match="no surface"):
            optimize_desirability(self._surfaces(), comp)
