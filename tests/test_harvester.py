"""Harvester parameters, microgenerator mechanics, tuning, actuator."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.harvester.actuator import TuningActuator
from repro.harvester.microgenerator import MechanicalState, Microgenerator
from repro.harvester.parameters import (
    MicrogeneratorParameters,
    default_parameters,
    scaled_parameters,
)
from repro.harvester.tuning import MagneticTuningLaw, TunableHarvester


class TestParameters:
    def test_derived_quantities_consistent(self):
        p = default_parameters()
        assert p.spring_constant == pytest.approx(
            p.mass * (2 * math.pi * p.natural_frequency) ** 2
        )
        assert p.quality_factor == pytest.approx(1 / (2 * p.damping_ratio))
        assert p.parasitic_damping == pytest.approx(
            2 * p.damping_ratio * p.mass * p.angular_frequency
        )

    def test_replace_revalidates(self):
        p = default_parameters()
        q = p.replace(mass=1e-3)
        assert q.mass == 1e-3
        with pytest.raises(ModelError):
            p.replace(mass=-1.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("mass", 0.0),
            ("natural_frequency", -5.0),
            ("damping_ratio", 0.0),
            ("damping_ratio", 1.5),
            ("transduction_factor", 0.0),
            ("coil_resistance", -1.0),
            ("coil_inductance", 0.0),
            ("max_displacement", 0.0),
            ("end_stop_stiffness_ratio", -2.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ModelError):
            default_parameters().replace(**{field: value})

    def test_electrical_damping_decreases_with_load(self):
        p = default_parameters()
        assert p.electrical_damping(100.0) > p.electrical_damping(10000.0)

    def test_scaled_parameters_frequency_scaling(self):
        small = scaled_parameters(0.5)
        # f ~ sqrt(k/m) ~ sqrt(s / s^3) = 1/s.
        assert small.natural_frequency == pytest.approx(
            default_parameters().natural_frequency / 0.5, rel=1e-9
        )

    def test_summary_mentions_key_values(self):
        text = default_parameters().summary()
        assert "Hz" in text and "ohm" in text


class TestMicrogenerator:
    def setup_method(self):
        self.gen = Microgenerator(default_parameters())

    def test_end_stop_free_region(self):
        z_max = self.gen.params.max_displacement
        assert self.gen.end_stop_force(0.5 * z_max) == 0.0
        assert self.gen.end_stop_region(0.5 * z_max) == 0

    def test_end_stop_engages_symmetric(self):
        z_max = self.gen.params.max_displacement
        up = self.gen.end_stop_force(1.2 * z_max)
        down = self.gen.end_stop_force(-1.2 * z_max)
        assert up > 0.0
        assert down == pytest.approx(-up)
        assert self.gen.end_stop_region(1.2 * z_max) == 1
        assert self.gen.end_stop_region(-1.2 * z_max) == -1

    def test_restoring_acceleration_sign(self):
        state = MechanicalState(displacement=1e-4, velocity=0.0)
        acc = self.gen.acceleration(state, coil_current=0.0, base_acceleration=0.0)
        assert acc < 0.0  # spring pulls back

    def test_em_reaction_opposes_current(self):
        state = MechanicalState(displacement=0.0, velocity=0.0)
        base = self.gen.acceleration(state, 0.0, 0.0)
        with_current = self.gen.acceleration(state, 1e-3, 0.0)
        assert with_current < base

    def test_emf_proportional_to_velocity(self):
        assert self.gen.emf(0.1) == pytest.approx(
            self.gen.params.transduction_factor * 0.1
        )

    def test_transduced_power_identity(self):
        # P = EMF * i.
        assert self.gen.transduced_power(0.05, 2e-3) == pytest.approx(
            self.gen.emf(0.05) * 2e-3
        )

    def test_stored_energy_nonnegative(self):
        state = MechanicalState(displacement=1e-4, velocity=0.02)
        assert self.gen.stored_energy(state, 1e-3) > 0.0

    def test_rejects_nonpositive_stiffness(self):
        state = MechanicalState(0.0, 0.0)
        with pytest.raises(ModelError):
            self.gen.acceleration(state, 0.0, 0.0, k_eff=0.0)


class TestTuningLaw:
    def setup_method(self):
        self.law = MagneticTuningLaw()

    def test_monotonic_decreasing_in_gap(self):
        gaps = np.linspace(self.law.gap_min, self.law.gap_max, 50)
        freqs = [self.law.frequency_for_gap(g) for g in gaps]
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))

    def test_band_limits(self):
        lo, hi = self.law.achievable_band
        assert self.law.f_min < lo < hi < self.law.f_max

    @given(st.floats(64.5, 77.0))
    def test_roundtrip_inverse(self, freq):
        lo, hi = self.law.achievable_band
        target = min(max(freq, lo), hi)
        gap = self.law.gap_for_frequency(target)
        assert self.law.frequency_for_gap(gap) == pytest.approx(
            target, abs=1e-6
        )

    def test_out_of_band_clamps_to_stops(self):
        assert self.law.gap_for_frequency(10.0) == self.law.gap_max
        assert self.law.gap_for_frequency(500.0) == self.law.gap_min

    def test_added_stiffness_positive_and_monotonic(self):
        m = 5e-3
        near = self.law.added_stiffness(self.law.gap_min, m)
        far = self.law.added_stiffness(self.law.gap_max, m)
        assert near > far >= 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            MagneticTuningLaw(f_min=70.0, f_max=60.0)
        with pytest.raises(ModelError):
            MagneticTuningLaw(gap_half=-1.0)


class TestActuator:
    def setup_method(self):
        self.act = TuningActuator()

    def test_zero_move_is_free(self):
        duration, energy = self.act.move_cost(0.01, 0.01)
        assert duration == 0.0 and energy == 0.0

    def test_cost_scales_with_distance(self):
        d1, e1 = self.act.move_cost(0.005, 0.010)
        d2, e2 = self.act.move_cost(0.005, 0.015)
        assert d2 == pytest.approx(2 * d1)
        # Energy has a fixed overhead, so strictly between 1x and 2x.
        assert e1 < e2 < 2 * e1

    def test_cost_symmetric(self):
        assert self.act.move_cost(0.005, 0.015) == self.act.move_cost(
            0.015, 0.005
        )

    def test_trajectory_saturates_at_target(self):
        gap = self.act.gap_trajectory(0.005, 0.010, t=1e9)
        assert gap == pytest.approx(0.010)

    def test_trajectory_speed(self):
        g0, g1 = 0.005, 0.010
        t = 2.0
        expected = g0 + self.act.speed * t
        assert self.act.gap_trajectory(g0, g1, t) == pytest.approx(expected)

    def test_moving_power(self):
        assert self.act.moving_power == pytest.approx(
            self.act.speed * self.act.energy_per_metre
        )

    def test_clamps_to_travel(self):
        assert self.act.clamp(1.0) == self.act.gap_travel_max
        assert self.act.clamp(0.0) == self.act.gap_travel_min


class TestTunableHarvester:
    def test_default_composition(self):
        h = TunableHarvester()
        assert h.resonant_frequency(h.default_gap()) == pytest.approx(
            h.tuning.achievable_band[0]
        )

    def test_frequency_mismatch_raises(self):
        params = default_parameters().replace(natural_frequency=50.0)
        with pytest.raises(ModelError):
            TunableHarvester(params=params)

    def test_effective_stiffness_matches_frequency(self):
        h = TunableHarvester()
        gap = 5e-3
        k = h.effective_stiffness(gap)
        f = h.resonant_frequency(gap)
        assert math.sqrt(k / h.params.mass) / (2 * math.pi) == pytest.approx(f)

    def test_retune_cost_clamps_gaps(self):
        h = TunableHarvester()
        duration, energy = h.retune_cost(-1.0, 1.0)
        expected_distance = h.tuning.gap_max - h.tuning.gap_min
        assert duration == pytest.approx(
            expected_distance / h.actuator.speed
        )
        assert energy > 0.0
