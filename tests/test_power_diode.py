"""Diode models: Shockley curve, PWL segments, consistency."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.power.diode import Diode


class TestShockley:
    def setup_method(self):
        self.d = Diode.schottky()

    def test_zero_bias_zero_current(self):
        assert self.d.current(0.0) == pytest.approx(0.0, abs=1e-15)

    def test_forward_exponential_growth(self):
        i1 = self.d.current(0.2)
        i2 = self.d.current(0.3)
        assert i2 > 10 * i1 > 0.0

    def test_reverse_leakage_small(self):
        i = self.d.current(-1.0)
        assert -1e-6 < i < 0.0

    def test_conductance_is_derivative(self):
        for v in [-0.5, 0.0, 0.15, 0.25]:
            eps = 1e-7
            numeric = (self.d.current(v + eps) - self.d.current(v - eps)) / (
                2 * eps
            )
            assert self.d.conductance(v) == pytest.approx(numeric, rel=1e-4)

    def test_exponent_clamp_keeps_finite(self):
        i = self.d.current(100.0)
        g = self.d.conductance(100.0)
        assert np.isfinite(i) and np.isfinite(g)
        assert i > 0.0 and g > 0.0

    def test_clamped_region_continuous(self):
        # The tangent continuation must join the exponential smoothly.
        v_clamp = 60.0 * self.d.n_vt
        below = self.d.current(v_clamp - 1e-9)
        above = self.d.current(v_clamp + 1e-9)
        assert above == pytest.approx(below, rel=1e-6)

    def test_junction_limiting_caps_forward_jumps(self):
        v_new = self.d.limit_junction_update(0.2, 5.0)
        assert v_new < 5.0

    def test_junction_limiting_passes_small_steps(self):
        assert self.d.limit_junction_update(0.1, 0.12) == pytest.approx(0.12)


class TestPWLSegments:
    def setup_method(self):
        self.d = Diode.schottky()

    def test_three_states_ordered(self):
        assert self.d.pwl_state(-1.0) == 0
        mid = 0.5 * (self.d.v_knee_low + self.d.v_knee_high)
        assert self.d.pwl_state(mid) == 1
        assert self.d.pwl_state(self.d.v_knee_high + 0.1) == 2

    def test_breakpoints_ordered(self):
        assert 0.0 < self.d.v_knee_low < self.d.v_knee_high

    def test_continuity_at_breakpoints(self):
        for v in (self.d.v_knee_low, self.d.v_knee_high):
            below = self.d.pwl_current(v - 1e-12)
            above = self.d.pwl_current(v + 1e-12)
            assert above == pytest.approx(below, abs=1e-9)

    def test_pwl_tracks_shockley_at_match_points(self):
        # The knee chord is anchored at i_knee by construction.
        i_pwl = self.d.pwl_current(self.d.v_knee_high)
        assert i_pwl == pytest.approx(self.d.i_knee, rel=1e-9)

    def test_pwl_monotonic(self):
        voltages = np.linspace(-0.5, 0.6, 300)
        currents = [self.d.pwl_current(float(v)) for v in voltages]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    @given(st.floats(-1.0, 1.0))
    def test_pwl_state_matches_boundaries(self, v):
        low, high = self.d.boundaries(v)
        state = self.d.pwl_state(v)
        if high >= 0:
            assert state == 2
        elif low >= 0:
            assert state == 1
        else:
            assert state == 0

    def test_coefficients_reproduce_current(self):
        for v in [-0.3, 0.1, 0.3]:
            state = self.d.pwl_state(v)
            g, c = self.d.pwl_coefficients(state)
            assert g * v + c == pytest.approx(self.d.pwl_current(v))

    def test_invalid_state_rejected(self):
        with pytest.raises(ModelError):
            self.d.pwl_coefficients(7)

    def test_pwl_chord_bounded_over_its_segment(self):
        # Inside the knee segment the chord stays within an order of
        # magnitude of the exponential (it is a secant approximation —
        # this looseness is exactly the fidelity limit documented in
        # DESIGN.md).  Below the segment the off branch deliberately
        # neglects the sub-knee exponential tail.
        for v in np.linspace(
            self.d.v_knee_low * 1.01, self.d.v_knee_high, 20
        ):
            ratio = self.d.pwl_current(float(v)) / self.d.current(float(v))
            assert 0.1 < ratio < 10.0


class TestConstruction:
    def test_derived_von_positive(self):
        d = Diode()
        assert d.v_on > 0.0 and d.r_on > 0.0

    def test_explicit_von_ron(self):
        d = Diode(v_on=0.3, r_on=50.0)
        assert d.v_on == 0.3 and d.r_on == 50.0

    def test_silicon_higher_threshold_than_schottky(self):
        assert Diode.silicon().v_on > Diode.schottky().v_on

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"saturation_current": 0.0},
            {"ideality": -1.0},
            {"g_off": 0.0},
            {"i_knee": -1e-6},
            {"v_on": -0.1},
            {"r_on": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ModelError):
            Diode(**kwargs)
