"""Event queue, trace recorder, results container."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.results import SimulationResult
from repro.sim.traces import TraceRecorder


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_empty_behaviour(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        with pytest.raises(IndexError):
            q.pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "bad")

    def test_payload_carried(self):
        q = EventQueue()
        q.push(1.0, "evt", payload={"k": 3})
        assert q.pop().payload == {"k": 3}

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, "x")
        q.clear()
        assert not q


class TestTraceRecorder:
    def test_decimation(self):
        rec = TraceRecorder(["v"], record_dt=0.1)
        for t in np.arange(0.0, 1.0, 0.01):
            rec.offer(float(t), {"v": float(t)})
        assert 9 <= rec.n_rows <= 11

    def test_force_overrides_decimation(self):
        rec = TraceRecorder(["v"], record_dt=10.0)
        rec.offer(0.0, {"v": 1.0})
        rec.offer(0.5, {"v": 2.0}, force=True)
        assert rec.n_rows == 2

    def test_time_must_not_decrease(self):
        rec = TraceRecorder(["v"])
        rec.offer(1.0, {"v": 0.0}, force=True)
        with pytest.raises(SimulationError):
            rec.offer(0.5, {"v": 0.0}, force=True)

    def test_missing_channel_rejected(self):
        rec = TraceRecorder(["a", "b"])
        with pytest.raises(SimulationError):
            rec.offer(0.0, {"a": 1.0}, force=True)

    def test_unknown_channel_read_rejected(self):
        rec = TraceRecorder(["a"])
        with pytest.raises(SimulationError):
            rec.channel("zzz")

    def test_as_arrays(self):
        rec = TraceRecorder(["v"], record_dt=0.0)
        rec.offer(0.0, {"v": 1.0})
        rec.offer(1.0, {"v": 2.0})
        arrays = rec.as_arrays()
        assert np.array_equal(arrays["t"], [0.0, 1.0])
        assert np.array_equal(arrays["v"], [1.0, 2.0])

    def test_event_log(self):
        rec = TraceRecorder(["v"])
        rec.log_event(1.0, "retune", "info")
        assert rec.events() == [(1.0, "retune", "info")]

    def test_duplicate_channels_rejected(self):
        with pytest.raises(SimulationError):
            TraceRecorder(["a", "a"])


def _result(v_trace, t_end=10.0, **kwargs):
    t = np.linspace(0.0, t_end, len(v_trace))
    defaults = dict(
        engine="envelope",
        t_end=t_end,
        traces={"t": t, "v_store": np.asarray(v_trace, dtype=float)},
    )
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_final_and_min(self):
        r = _result([2.0, 3.0, 2.5])
        assert r.final_store_voltage() == 2.5
        assert r.min_store_voltage() == 2.0

    def test_charge_time_interpolates(self):
        r = _result([0.0, 1.0, 2.0])  # t = 0, 5, 10
        assert r.charge_time(0.5) == pytest.approx(2.5)

    def test_charge_time_unreached_returns_t_end(self):
        r = _result([0.0, 1.0, 2.0])
        assert r.charge_time(99.0) == 10.0

    def test_charge_time_already_reached(self):
        r = _result([3.0, 3.5, 4.0])
        assert r.charge_time(2.0) == 0.0

    def test_downtime_fraction(self):
        r = _result([3.0, 3.0], downtime=2.5)
        assert r.downtime_fraction() == pytest.approx(0.25)

    def test_tuning_error_rms(self):
        t = np.linspace(0, 10, 11)
        traces = {
            "t": t,
            "v_store": np.full(11, 3.0),
            "f_dom": np.full(11, 67.0),
            "f_res": np.full(11, 65.0),
        }
        r = SimulationResult(engine="envelope", t_end=10.0, traces=traces)
        assert r.tuning_error_rms() == pytest.approx(2.0)

    def test_mismatched_trace_lengths_rejected(self):
        with pytest.raises(SimulationError):
            SimulationResult(
                engine="x",
                t_end=1.0,
                traces={"t": np.zeros(3), "v_store": np.zeros(2)},
            )

    def test_missing_time_axis_rejected(self):
        with pytest.raises(SimulationError):
            SimulationResult(engine="x", t_end=1.0, traces={"v": np.zeros(2)})

    def test_summary_readable(self):
        r = _result([2.0, 2.5], counters={"packets_delivered": 5})
        text = r.summary()
        assert "packets_delivered=5" in text
