"""Transient engines: analytic agreement, NR/linearized equivalence.

These are the load-bearing physics tests: both engines must reproduce
the closed-form steady state on the resistive circuit, and agree with
each other on the bridge rectifier (where the PWL view is valid — see
the fidelity finding in DESIGN.md).
"""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.harvester import analytic
from repro.harvester.tuning import TunableHarvester
from repro.power.rectifier import build_bridge_circuit, build_resistive_load_circuit
from repro.power.regulator import Regulator
from repro.power.supercap import Supercapacitor
from repro.sim.newton import NewtonRaphsonEngine
from repro.sim.state_space import LinearizedStateSpaceEngine
from repro.sim.system import SystemConfig, SystemModel
from repro.vibration.sources import SineVibration

FREQ = 67.0
AMP = 0.6


def _resistive_config(load=20000.0, freq=FREQ):
    return SystemConfig(
        harvester=TunableHarvester(),
        power=build_resistive_load_circuit(load),
        regulator=Regulator(),
        node=None,
        controller=None,
        vibration=SineVibration(AMP, freq),
        pretune=True,
    )


def _bridge_config(v_initial=2.5):
    return SystemConfig(
        harvester=TunableHarvester(),
        power=build_bridge_circuit(Supercapacitor(v_initial=v_initial)),
        regulator=Regulator(),
        node=None,
        controller=None,
        vibration=SineVibration(AMP, FREQ),
        pretune=True,
    )


def _measure_load_power(engine, system, load, cycles=15):
    period = 1.0 / FREQ
    samples = []
    t_stop = engine.time + cycles * period
    while engine.time < t_stop:
        engine.step_to(engine.time + engine.dt)
        v = system.bus_voltage(engine.state)
        samples.append(v * v / load)
    return float(np.mean(samples))


class TestResistiveSteadyState:
    """Both engines against the exact phasor solution."""

    @pytest.mark.parametrize("engine_cls", [LinearizedStateSpaceEngine, NewtonRaphsonEngine])
    def test_load_power_matches_analytic(self, engine_cls):
        load = 20000.0
        config = _resistive_config(load)
        system = SystemModel(config)
        gap = config.resolve_initial_gap()
        f_res = config.harvester.resonant_frequency(gap)
        expected = analytic.load_power(
            config.harvester.params, AMP, FREQ, load, resonance=f_res
        )
        dt = 1.0 / (200 * FREQ)
        engine = engine_cls(system, dt)
        engine.step_to(2.5)  # settle the high-Q resonance
        measured = _measure_load_power(engine, system, load)
        assert measured == pytest.approx(expected, rel=0.03)

    def test_displacement_matches_analytic(self):
        load = 20000.0
        config = _resistive_config(load)
        system = SystemModel(config)
        gap = config.resolve_initial_gap()
        f_res = config.harvester.resonant_frequency(gap)
        expected = analytic.displacement_amplitude(
            config.harvester.params, AMP, FREQ, load, resonance=f_res
        )
        engine = LinearizedStateSpaceEngine(system, 1.0 / (200 * FREQ))
        engine.step_to(2.5)
        zs = []
        for _ in range(3000):
            engine.step_to(engine.time + engine.dt)
            zs.append(engine.state[0])
        measured = 0.5 * (max(zs) - min(zs))
        assert measured == pytest.approx(expected, rel=0.03)

    def test_transduced_energy_positive(self):
        config = _resistive_config()
        engine = LinearizedStateSpaceEngine(SystemModel(config), 1e-4)
        engine.step_to(0.5)
        assert engine.energy_transduced > 0.0


class TestEngineEquivalence:
    """NR (smooth) vs linearized (PWL) on the bridge rectifier."""

    def test_charging_current_agreement(self):
        config = _bridge_config(v_initial=2.5)
        system = SystemModel(config)
        dt = 1.0 / (150 * FREQ)
        period = 1.0 / FREQ
        results = {}
        for name, cls, settle in [
            ("nr", NewtonRaphsonEngine, 50),
            ("lss", LinearizedStateSpaceEngine, 90),
        ]:
            engine = cls(system, dt)
            engine.set_load_current(0.0)
            engine.step_to(settle * period)
            v1, t1 = engine.store_voltage(), engine.time
            engine.step_to(t1 + 20 * period)
            v2, t2 = engine.store_voltage(), engine.time
            cap = config.power.supercap.capacitance
            leak = config.power.supercap.leakage_resistance
            results[name] = cap * (v2 - v1) / (t2 - t1) + 0.5 * (v1 + v2) / leak
        assert results["nr"] > 1e-6  # genuinely charging
        assert results["lss"] == pytest.approx(results["nr"], rel=0.25)

    def test_trace_agreement_short_horizon(self):
        config = _bridge_config()
        system = SystemModel(config)
        dt = 1.0 / (150 * FREQ)
        nr = NewtonRaphsonEngine(system, dt)
        lss = LinearizedStateSpaceEngine(system, dt)
        # Common warm start from the NR engine avoids comparing the
        # two engines' different startup paths.
        nr.step_to(0.3)
        lss.reset(nr.time, nr.state)
        z_nr, z_lss = [], []
        for _ in range(600):
            nr.step_to(nr.time + dt)
            lss.step_to(lss.time + dt)
            z_nr.append(nr.state[0])
            z_lss.append(lss.state[0])
        z_nr = np.array(z_nr)
        z_lss = np.array(z_lss)
        scale = np.max(np.abs(z_nr))
        assert np.sqrt(np.mean((z_nr - z_lss) ** 2)) < 0.15 * scale


class TestLinearizedEngineMechanics:
    def test_mode_cache_reused(self):
        config = _bridge_config()
        engine = LinearizedStateSpaceEngine(SystemModel(config), 1e-4)
        engine.step_to(0.2)
        builds_early = engine.stats.n_matrix_builds
        engine.step_to(0.4)
        builds_late = engine.stats.n_matrix_builds
        # Cached full-step updates: later stretch needs far fewer
        # builds than its step count.
        steps_late = engine.stats.n_steps
        assert builds_late - builds_early < 0.5 * steps_late

    def test_mode_switches_counted(self):
        config = _bridge_config()
        engine = LinearizedStateSpaceEngine(SystemModel(config), 1e-4)
        engine.step_to(0.5)
        assert engine.stats.n_mode_switches > 10

    def test_set_gap_changes_resonance(self):
        config = _resistive_config()
        system = SystemModel(config)
        engine = LinearizedStateSpaceEngine(system, 1e-4)
        g1 = engine.gap
        engine.set_gap(g1 * 0.5)
        assert engine.gap != g1

    def test_step_backwards_rejected(self):
        config = _resistive_config()
        engine = LinearizedStateSpaceEngine(SystemModel(config), 1e-4)
        engine.step_to(0.01)
        with pytest.raises(SimulationError):
            engine.step_to(0.001)

    def test_negative_load_rejected(self):
        config = _bridge_config()
        engine = LinearizedStateSpaceEngine(SystemModel(config), 1e-4)
        with pytest.raises(SimulationError):
            engine.set_load_current(-1e-3)


class TestNewtonEngineMechanics:
    def test_iteration_counter_advances(self):
        config = _bridge_config()
        engine = NewtonRaphsonEngine(SystemModel(config), 1e-4)
        engine.step_to(0.05)
        assert engine.stats.n_newton_iterations >= engine.stats.n_steps

    def test_load_current_discharges_store(self):
        config = _bridge_config(v_initial=3.0)
        system = SystemModel(config)
        engine = NewtonRaphsonEngine(system, 1e-4)
        engine.set_load_current(5e-3)  # heavy load, dwarfs harvesting
        v0 = engine.store_voltage()
        engine.step_to(0.5)
        assert engine.store_voltage() < v0

    def test_reset_restores_time_and_state(self):
        config = _bridge_config()
        system = SystemModel(config)
        engine = NewtonRaphsonEngine(system, 1e-4)
        engine.step_to(0.02)
        engine.reset(0.0)
        assert engine.time == 0.0
        assert engine.stats.n_steps == 0
