"""The adaptive campaign subsystem on cheap synthetic evaluators.

Covers the acquisition layer (factor boxes, the four strategies, the
auto driver), the objective abstraction, the round loop (convergence,
budget, acquisitions, relaxed desirability), and — the durability
headline — kill/resume: an interrupted campaign resumed over the same
substrate finishes bit-identical to an uninterrupted control run with
no cached point re-evaluated.
"""

import json

import numpy as np
import pytest

from repro.campaign import (
    ACQUISITIONS,
    AutoAcquisition,
    Campaign,
    CampaignConfig,
    DesirabilityExploit,
    FactorBox,
    Objective,
    RoundContext,
    SpaceFillingInfill,
    SteepestAscent,
    TrustRegionZoom,
    resolve_acquisition,
)
from repro.campaign.acquisition import initial_design_matrix
from repro.core.desirability import CompositeDesirability, Desirability
from repro.core.explorer import DesignExplorer
from repro.core.factors import DesignSpace, Factor
from repro.core.optimize import OptimizationOutcome
from repro.errors import DesignError, OptimizationError, ReproError


def synthetic_space() -> DesignSpace:
    # Physical == coded bounds, so assertions read naturally.
    return DesignSpace(
        [Factor("a", -1.0, 1.0), Factor("b", -1.0, 1.0)]
    )


def evaluate(point):
    a, b = point["a"], point["b"]
    return {
        "y": -((a - 0.3) ** 2) - 2.0 * (b + 0.2) ** 2,
        "z": a + b,
    }


def make_explorer(cache_store=None):
    return DesignExplorer(
        synthetic_space(), evaluate, ["y", "z"], cache_store=cache_store
    )


class TestFactorBox:
    def test_roundtrip(self):
        box = FactorBox(center=[0.5, -0.25], half_width=[0.25, 0.5])
        local = np.array([[1.0, -1.0], [0.0, 0.0]])
        global_coded = box.to_global(local)
        assert np.allclose(global_coded, [[0.75, -0.75], [0.5, -0.25]])
        assert np.allclose(box.to_local(global_coded), local)

    def test_contains(self):
        box = FactorBox(center=[0.0, 0.0], half_width=[0.5, 0.5])
        mask = box.contains(np.array([[0.4, 0.4], [0.6, 0.0]]))
        assert mask.tolist() == [True, False]

    def test_zoom_clamps_inside_global_box(self):
        box = FactorBox.full(2)
        zoomed = box.zoomed(np.array([1.0, 1.0]), 0.5, 0.05)
        assert np.allclose(zoomed.half_width, 0.5)
        assert np.allclose(zoomed.center, [0.5, 0.5])  # clamped
        assert np.all(np.abs(zoomed.center) + zoomed.half_width <= 1.0 + 1e-12)

    def test_zoom_floors_at_min_half_width(self):
        box = FactorBox(center=[0.0, 0.0], half_width=[0.08, 0.08])
        zoomed = box.zoomed(np.zeros(2), 0.5, 0.05)
        assert np.allclose(zoomed.half_width, 0.05)

    def test_pan_keeps_size(self):
        box = FactorBox(center=[0.0, 0.0], half_width=[0.25, 0.25])
        panned = box.panned(np.array([2.0, -2.0]))
        assert np.allclose(panned.half_width, 0.25)
        assert np.allclose(panned.center, [0.75, -0.75])

    def test_serialization_roundtrip(self):
        box = FactorBox(center=[0.1, -0.2], half_width=[0.3, 0.4])
        clone = FactorBox.from_dict(box.as_dict())
        assert np.allclose(clone.center, box.center)
        assert np.allclose(clone.half_width, box.half_width)

    def test_validation(self):
        with pytest.raises(DesignError):
            FactorBox(center=[0.0], half_width=[0.0])
        with pytest.raises(DesignError):
            FactorBox(center=[0.0, 0.0], half_width=[0.5])


def _context(box=None, optimum=None, cv=0.01, batch=4, seed=5):
    """A minimal RoundContext over a fitted synthetic surface.

    Mirrors the campaign's convention: the surface is fitted in the
    *local* coordinates of the box (where it spans [-1, 1]^2), on
    responses evaluated at the corresponding global points.
    """
    from repro.core.doe.lhs import latin_hypercube
    from repro.core.rsm import ModelSpec, fit_response_surface

    box = box if box is not None else FactorBox.full(2)
    x_local = latin_hypercube(20, 2, seed=1).matrix
    x = box.to_global(x_local)
    y = -((x[:, 0] - 0.3) ** 2) - 2.0 * (x[:, 1] + 0.2) ** 2
    surface = fit_response_surface(x_local, y, ModelSpec.quadratic(2))
    optimum = (
        np.asarray(optimum, dtype=float)
        if optimum is not None
        else np.array([0.3, -0.2])
    )
    outcome = OptimizationOutcome(
        x_coded=box.to_local(optimum),
        value=0.0,
        responses={"y": 0.0},
        evaluations=1,
    )
    return RoundContext(
        round_index=0,
        box=box,
        surfaces={"y": surface},
        outcome=outcome,
        objective_surface=surface,
        optimum_global=optimum,
        x_global=box.to_global(x_local * 0.9),
        loo_error=np.zeros(20),
        fit_index=np.arange(20),
        cv_error=cv,
        lack_of_fit_p=None,
        batch=batch,
        seed=seed,
    )


class TestStrategies:
    def test_zoom_shrinks_and_designs_inside(self):
        proposal = TrustRegionZoom().propose(_context())
        assert np.allclose(proposal.box.half_width, 0.5)
        assert proposal.points.shape[1] == 2
        assert np.all(proposal.box.contains(proposal.points))

    def test_infill_spreads_within_box(self):
        ctx = _context(batch=5)
        proposal = SpaceFillingInfill().propose(ctx)
        assert proposal.points.shape == (5, 2)
        assert np.all(ctx.box.contains(proposal.points))
        # maximin-ish: no two picks coincide
        d = np.linalg.norm(
            proposal.points[:, None] - proposal.points[None, :], axis=-1
        )
        d[np.arange(5), np.arange(5)] = np.inf
        assert d.min() > 0.05

    def test_exploit_clusters_around_optimum(self):
        ctx = _context(batch=6)
        proposal = DesirabilityExploit(radius=0.1).propose(ctx)
        assert proposal.points.shape[0] == 6
        assert np.allclose(proposal.points[0], ctx.optimum_global)
        spread = np.abs(proposal.points - ctx.optimum_global)
        assert np.max(spread) <= 0.1 * np.max(ctx.box.half_width) + 1e-9

    def test_ascent_walks_toward_gradient_and_pans(self):
        box = FactorBox(center=[0.0, 0.0], half_width=[0.25, 0.25])
        # Optimum pinned on the +a edge of the box; the fitted
        # surface's gradient there points toward a=0.3.
        ctx = _context(box=box, optimum=[0.25, -0.2])
        proposal = SteepestAscent(step=0.2).propose(ctx)
        assert proposal.points.shape[0] >= 2
        assert np.all(proposal.points[:, 0] > 0.25)  # walked outward
        assert not np.allclose(proposal.box.center, box.center)

    def test_ascent_negative_direction_pans_to_far_end(self):
        # Regression: the walk's last row must be its far end in walk
        # order (a lexicographic sort would pan the box back next to
        # the optimum for any negative-direction walk).
        box = FactorBox(center=[0.7, -0.2], half_width=[0.25, 0.25])
        # Optimum pinned on the -a edge at a=0.45; the quadratic's
        # gradient there (-2(a-0.3)) points toward a=0.3, i.e.
        # further negative.
        ctx = _context(box=box, optimum=[0.45, -0.2], batch=4)
        proposal = SteepestAscent(step=0.2).propose(ctx)
        # Walk order: strictly decreasing in a.
        assert np.all(np.diff(proposal.points[:, 0]) < 0)
        # The box pans toward the far (most negative-a) end.
        assert proposal.box.center[0] < box.center[0]
        assert proposal.box.center[0] == pytest.approx(
            np.clip(proposal.points[-1][0], -0.75, 0.75)
        )

    def test_strategies_are_deterministic_in_seed(self):
        for strategy in (SpaceFillingInfill(), DesirabilityExploit()):
            p1 = strategy.propose(_context(seed=42))
            p2 = strategy.propose(_context(seed=42))
            assert np.array_equal(p1.points, p2.points)

    def test_auto_routing(self):
        auto = AutoAcquisition()
        # Interior optimum, good model -> zoom.
        assert auto.propose(_context()).strategy == "zoom"
        # Bad model -> infill.
        assert auto.propose(_context(cv=0.9)).strategy == "infill"
        # Optimum pinned to a movable box edge -> ascent.
        box = FactorBox(center=[0.0, 0.0], half_width=[0.25, 0.25])
        pinned = _context(box=box, optimum=[0.25, 0.0])
        assert auto.propose(pinned).strategy == "ascent"
        # Minimum-size box -> exploit.
        tiny = FactorBox(center=[0.3, -0.2], half_width=[0.05, 0.05])
        ctx = _context(box=tiny, optimum=[0.3, -0.2])
        ctx.min_half_width = 0.05
        assert auto.propose(ctx).strategy == "exploit"

    def test_registry(self):
        assert set(ACQUISITIONS) == {
            "auto", "zoom", "infill", "exploit", "ascent"
        }
        assert resolve_acquisition("zoom").name == "zoom"
        ready = SteepestAscent()
        assert resolve_acquisition(ready) is ready
        with pytest.raises(DesignError, match="available"):
            resolve_acquisition("bayesian")

    def test_strategy_params_roundtrip_through_spec(self):
        # Bit-identical resume needs tunables back, not defaults.
        for strategy in (
            SteepestAscent(step=0.1),
            SpaceFillingInfill(oversample=16),
            DesirabilityExploit(radius=0.3),
            AutoAcquisition(cv_threshold=0.4),
        ):
            clone = resolve_acquisition(strategy.spec())
            assert type(clone) is type(strategy)
            assert clone.params() == strategy.params()
        # Parameterless strategies serialize as the bare name.
        assert TrustRegionZoom().spec() == "zoom"

    def test_config_journals_strategy_tunables(self):
        config = CampaignConfig(acquisition=SteepestAscent(step=0.1))
        payload = config.as_dict()
        assert payload["acquisition"] == {
            "name": "ascent",
            "params": {"step": 0.1},
        }
        restored = CampaignConfig.from_dict(payload)
        rebuilt = resolve_acquisition(restored.acquisition)
        assert isinstance(rebuilt, SteepestAscent)
        assert rebuilt.step == 0.1
        # And the restored config re-serializes identically.
        assert restored.as_dict()["acquisition"] == payload["acquisition"]

    def test_initial_designs(self):
        ccd = initial_design_matrix("ccd", 2, None, 1)
        assert ccd.shape[1] == 2 and ccd.shape[0] >= 9
        lhs = initial_design_matrix("lhs", 3, 14, 1)
        assert lhs.shape == (15, 3)  # + centre point
        with pytest.raises(DesignError):
            initial_design_matrix("sobol", 2, None, 1)


class TestObjective:
    def test_single_response_score(self):
        objective = Objective.maximize_response("y")
        assert objective.responses == ("y",)
        assert objective.score({"y": 2.0}) == 2.0
        assert Objective.minimize_response("y").score({"y": 2.0}) == -2.0

    def test_desirability_score(self):
        composite = CompositeDesirability(
            {"y": Desirability("maximize", 0.0, 1.0)}
        )
        objective = Objective.of_desirability(composite)
        assert objective.responses == ("y",)
        assert objective.score({"y": 0.5}) == pytest.approx(0.5)

    def test_spec_roundtrip(self):
        single = Objective.minimize_response("z")
        clone = Objective.from_spec(single.spec())
        assert clone.response == "z" and clone.maximize is False
        composite = Objective.of_desirability(
            CompositeDesirability(
                {
                    "y": Desirability("target", 0.0, 2.0, target=1.0),
                    "z": Desirability("minimize", 0.0, 5.0, weight=2.0),
                },
                importances={"z": 3.0},
            )
        )
        clone = Objective.from_spec(composite.spec())
        values = {"y": 0.8, "z": 1.5}
        assert clone.score(values) == pytest.approx(
            composite.score(values)
        )

    def test_validation(self):
        with pytest.raises(OptimizationError):
            Objective()
        with pytest.raises(ReproError):
            Objective.from_spec({"kind": "mystery"})


class TestCampaignFlow:
    def test_converges_to_interior_optimum(self):
        campaign = Campaign(
            make_explorer(),
            "y",
            config=CampaignConfig(max_rounds=8, batch=6, seed=3),
        )
        result = campaign.run()
        assert result.converged
        assert result.stop_reason == "optimum-converged"
        assert result.best["point"]["a"] == pytest.approx(0.3, abs=0.02)
        assert result.best["point"]["b"] == pytest.approx(-0.2, abs=0.02)
        assert result.n_rounds >= 2
        assert "y" in result.surfaces

    def test_beats_oneshot_budget(self):
        # The headline claim on the synthetic problem: the campaign
        # reaches the optimum with fewer evaluations than a one-shot
        # dense design of comparable accuracy would take.
        campaign = Campaign(
            make_explorer(),
            "y",
            config=CampaignConfig(max_rounds=8, batch=6, seed=3),
        )
        result = campaign.run()
        assert result.evaluations["simulated"] <= 40

    def test_boundary_optimum_reached(self):
        campaign = Campaign(
            make_explorer(),
            "z",
            config=CampaignConfig(max_rounds=6, batch=5, seed=11),
        )
        result = campaign.run()
        assert result.best["point"]["a"] == pytest.approx(1.0, abs=0.02)
        assert result.best["point"]["b"] == pytest.approx(1.0, abs=0.02)

    def test_budget_stop(self):
        campaign = Campaign(
            make_explorer(),
            "y",
            config=CampaignConfig(
                max_rounds=10, batch=5, seed=3, budget=12
            ),
        )
        result = campaign.run()
        assert result.stop_reason == "budget-exhausted"
        assert not result.converged

    def test_max_rounds_stop(self):
        campaign = Campaign(
            make_explorer(),
            "y",
            config=CampaignConfig(
                max_rounds=1, batch=5, seed=3
            ),
        )
        result = campaign.run()
        assert result.stop_reason == "max-rounds"
        assert result.n_rounds == 1

    def test_cv_floor_stop(self):
        campaign = Campaign(
            make_explorer(),
            "y",
            config=CampaignConfig(
                max_rounds=8, batch=6, seed=3, cv_floor=0.5,
                patience=99,
            ),
        )
        result = campaign.run()
        # The quadratic is exactly representable: CV error collapses.
        assert result.stop_reason == "cv-floor-reached"
        assert result.converged

    def test_relaxed_desirability_when_all_zero(self):
        # y <= 0 everywhere but the desirability demands y >= 5: the
        # hard objective vetoes the whole space, and the campaign must
        # steer by the relaxed score instead of dying.
        composite = CompositeDesirability(
            {"y": Desirability("maximize", 5.0, 10.0)}
        )
        campaign = Campaign(
            make_explorer(),
            composite,
            config=CampaignConfig(max_rounds=3, batch=5, seed=5),
        )
        result = campaign.run()
        assert all(entry["relaxed"] for entry in result.history)

    def test_history_entries_are_complete(self):
        result = Campaign(
            make_explorer(),
            "y",
            config=CampaignConfig(max_rounds=3, batch=5, seed=3),
        ).run()
        for entry in result.history:
            assert {
                "round", "box", "n_points", "optimum_coded", "score",
                "cv_error", "design_quality", "data_digest", "strategy",
            } <= set(entry)
            assert entry["design_quality"]["condition_number"] > 0
        # Everything must be JSON-serializable (the journal contract).
        json.dumps(result.as_dict())

    def test_report_is_textual(self):
        result = Campaign(
            make_explorer(),
            "y",
            config=CampaignConfig(max_rounds=2, batch=5, seed=3),
        ).run()
        text = result.report()
        assert "== rounds ==" in text
        assert "optimum" in text

    def test_objective_must_be_fittable(self):
        with pytest.raises(DesignError, match="does not produce"):
            Campaign(make_explorer(), "missing_response")

    def test_campaign_id_collision_needs_overwrite(self):
        explorer = make_explorer()
        campaign = Campaign(
            explorer,
            "y",
            config=CampaignConfig(max_rounds=1, batch=4, seed=3),
        )
        campaign.run()
        with pytest.raises(ReproError, match="already exists"):
            Campaign(
                explorer,
                "y",
                journal=campaign.journal,
                config=CampaignConfig(max_rounds=1, batch=4, seed=3),
            ).run()
        # overwrite restarts cleanly
        result = Campaign(
            explorer,
            "y",
            journal=campaign.journal,
            config=CampaignConfig(max_rounds=1, batch=4, seed=3),
        ).run(overwrite=True)
        assert result.n_rounds == 1


class KillSwitch(RuntimeError):
    pass


def make_killable(limit):
    count = {"n": 0}

    def killable(point):
        count["n"] += 1
        if limit is not None and count["n"] > limit:
            raise KillSwitch("simulated SIGKILL")
        return evaluate(point)

    return killable


@pytest.mark.parametrize("store_kind", ["sqlite", "file"])
class TestKillResume:
    """The acceptance property, in-process: interrupted + resumed ==
    uninterrupted, with zero cached points re-evaluated."""

    def _store(self, tmp_path, kind, name):
        return str(
            tmp_path / (f"{name}.sqlite" if kind == "sqlite" else name)
        )

    def _campaign(self, spec, limit=None):
        explorer = DesignExplorer(
            synthetic_space(),
            make_killable(limit),
            ["y", "z"],
            cache_store=spec,
        )
        return Campaign(
            explorer,
            "y",
            config=CampaignConfig(max_rounds=8, batch=6, seed=3),
        )

    @staticmethod
    def _identity(result):
        payload = result.as_dict()
        payload.pop("evaluations")  # session-dependent by design
        return json.dumps(payload, sort_keys=True)

    def test_kill_mid_round_resume_bit_identical(
        self, tmp_path, store_kind
    ):
        control = self._campaign(
            self._store(tmp_path, store_kind, "control")
        ).run()

        victim_spec = self._store(tmp_path, store_kind, "victim")
        victim = self._campaign(victim_spec, limit=14)
        with pytest.raises(KillSwitch):
            victim.run()
        victim.explorer.close()

        resumed_campaign = self._campaign(victim_spec)
        resumed = resumed_campaign.resume()

        assert self._identity(resumed) == self._identity(control)
        # Zero lost, zero repeated: the resumed session simulates
        # exactly what the victim had not yet persisted.
        assert (
            resumed.evaluations["simulated"]
            == control.evaluations["simulated"] - 14
        )

    def test_resume_of_finished_campaign_is_free(
        self, tmp_path, store_kind
    ):
        spec = self._store(tmp_path, store_kind, "done")
        finished = self._campaign(spec).run()
        # An evaluator that dies on the first call proves resume never
        # evaluates anything.
        resumed = self._campaign(spec, limit=0).resume()
        assert resumed.stop_reason == finished.stop_reason
        assert self._identity(resumed) == self._identity(finished)

    def test_resume_missing_campaign_rejected(
        self, tmp_path, store_kind
    ):
        spec = self._store(tmp_path, store_kind, "empty")
        campaign = self._campaign(spec)
        with pytest.raises(ReproError, match="to resume"):
            campaign.resume()

    def test_resume_refuses_other_space(self, tmp_path, store_kind):
        spec = self._store(tmp_path, store_kind, "spacecheck")
        self._campaign(spec).run()
        other_space = DesignSpace(
            [Factor("a", -2.0, 2.0), Factor("b", -1.0, 1.0)]
        )
        explorer = DesignExplorer(
            other_space, evaluate, ["y", "z"], cache_store=spec
        )
        campaign = Campaign(
            explorer, "y", config=CampaignConfig(seed=3)
        )
        with pytest.raises(ReproError, match="different factor space"):
            campaign.resume()


@pytest.mark.parametrize("store_kind", ["sqlite", "file"])
class TestPipelinedRounds:
    """Opt-in round pipelining must be invisible in the results.

    The speculative next-round acquisition runs on a *copy* of the
    state and only warms the substrate; the real fit/acquisition
    always sees the full round.  History, journal and resume therefore
    stay bit-identical to the sequential campaign.
    """

    def _store(self, tmp_path, kind, name):
        return str(
            tmp_path / (f"{name}.sqlite" if kind == "sqlite" else name)
        )

    def _campaign(self, spec, pipelined, limit=None):
        explorer = DesignExplorer(
            synthetic_space(),
            make_killable(limit),
            ["y", "z"],
            cache_store=spec,
        )
        return Campaign(
            explorer,
            "y",
            config=CampaignConfig(
                max_rounds=8,
                batch=6,
                seed=3,
                pipeline_rounds=pipelined,
            ),
        )

    @staticmethod
    def _identity(result):
        payload = result.as_dict()
        payload.pop("evaluations")  # session-dependent by design
        return json.dumps(payload, sort_keys=True)

    def test_pipelined_equals_sequential(self, tmp_path, store_kind):
        control = self._campaign(
            self._store(tmp_path, store_kind, "control"), False
        ).run()
        pipelined = self._campaign(
            self._store(tmp_path, store_kind, "pipelined"), True
        ).run()
        assert self._identity(pipelined) == self._identity(control)
        # The speculation telemetry is present (and excluded from the
        # identity payload above).
        assert "speculated" in pipelined.evaluations
        assert "speculative_hits" in pipelined.evaluations

    def test_pipelined_kill_resume_bit_identical(
        self, tmp_path, store_kind
    ):
        control = self._campaign(
            self._store(tmp_path, store_kind, "control"), False
        ).run()

        victim_spec = self._store(tmp_path, store_kind, "victim")
        victim = self._campaign(victim_spec, True, limit=14)
        with pytest.raises(KillSwitch):
            victim.run()
        victim.explorer.close()

        resumed = self._campaign(victim_spec, True).resume()
        assert self._identity(resumed) == self._identity(control)

    def test_pipelined_journal_matches_sequential(
        self, tmp_path, store_kind
    ):
        # Beyond the result payload: the *journal rounds* themselves
        # must be indistinguishable, or a sequential resume of a
        # pipelined campaign could diverge.
        seq = self._campaign(
            self._store(tmp_path, store_kind, "seq"), False
        )
        seq.run()
        pipe = self._campaign(
            self._store(tmp_path, store_kind, "pipe"), True
        )
        pipe.run()

        def rounds(campaign):
            record = campaign.journal.load(campaign.campaign_id)
            return [
                (r.index, r.status, json.dumps(r.planned, sort_keys=True),
                 json.dumps(r.completed, sort_keys=True))
                for r in record.rounds
            ]

        assert rounds(pipe) == rounds(seq)
