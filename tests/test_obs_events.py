"""The structured event log, span tracer and fleet aggregation.

The event log is the cross-process telemetry transport: O_APPEND JSONL
whose reader tolerates torn lines, with ``metrics_flush`` records
folded latest-per-process and discrete lifecycle events (lease grants,
reclaims, breaker trips, round boundaries) taking precedence over
same-named flushed series.
"""

import json
import threading

import pytest

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    default_events_path,
    emit_event,
    read_events,
    set_event_log,
)
from repro.obs.fleet import FleetSample, aggregate_event_counters, sample_fleet
from repro.obs.dashboard import render_dashboard
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanRecord, Tracer


@pytest.fixture(autouse=True)
def _unbound_event_log():
    """Each test starts and ends with no process-wide log bound."""
    set_event_log(None)
    yield
    set_event_log(None)


class TestEventLog:
    def test_round_trip_with_envelope_fields(self, tmp_path):
        path = tmp_path / "log" / "events.jsonl"
        log = EventLog(path)
        log.emit("lease_grant", queue="q", jobs=2)
        log.emit("gc", store="s")
        log.close()
        records = read_events(path)
        assert [r["event"] for r in records] == ["lease_grant", "gc"]
        first = records[0]
        assert first["schema"] == EVENT_SCHEMA_VERSION
        assert first["jobs"] == 2
        assert isinstance(first["ts"], float)
        assert isinstance(first["pid"], int)

    def test_reader_skips_torn_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps({"event": "a", "schema": 1})
        path.write_text(
            good + "\n" + '{"event": "torn", "ha' + "\n" + good + "\n"
            + '{"event": "trailing-partial"'
        )
        assert [r["event"] for r in read_events(path)] == ["a", "a"]

    def test_event_filter_and_missing_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("a")
        log.emit("b")
        log.emit("a")
        log.close()
        assert len(read_events(path, event="a")) == 2
        assert read_events(tmp_path / "never.jsonl") == []

    def test_unwritable_log_disables_itself(self, tmp_path, capsys):
        log = EventLog(tmp_path)  # a directory: open() fails
        log.emit("a")
        log.emit("b")
        err = capsys.readouterr().err
        assert err.count("disabled") == 1  # one warning, then silence

    def test_emit_event_is_noop_until_configured(self, tmp_path):
        emit_event("ignored")  # must not raise, nothing bound
        path = tmp_path / "events.jsonl"
        set_event_log(path)
        emit_event("kept", k=1)
        assert [r["event"] for r in read_events(path)] == ["kept"]

    def test_env_var_binds_the_default_log(self, tmp_path, monkeypatch):
        import repro.obs.events as events_module

        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_EVENT_LOG", str(path))
        monkeypatch.setattr(events_module, "_log", None)
        monkeypatch.setattr(events_module, "_env_checked", False)
        emit_event("from-env")
        assert [r["event"] for r in read_events(path)] == ["from-env"]

    def test_concurrent_writers_interleave_whole_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)

        def write(tag):
            for i in range(200):
                log.emit("tick", tag=tag, i=i)

        pool = [
            threading.Thread(target=write, args=(t,)) for t in range(4)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        log.close()
        records = read_events(path, event="tick")
        assert len(records) == 800  # nothing torn, nothing lost

    def test_default_events_path_conventions(self, tmp_path):
        assert default_events_path("results.sqlite") == "results.events.jsonl"
        assert default_events_path("results.db") == "results.events.jsonl"
        directory = tmp_path / "evals"
        directory.mkdir()
        assert default_events_path(str(directory)) == str(
            directory / ".events.jsonl"
        )


class TestTracer:
    def _fake_clock(self, ticks):
        it = iter(ticks)
        return lambda: next(it)

    def test_span_durations_are_exact_with_injected_clock(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg, clock=self._fake_clock([10.0, 12.5]))
        with tracer.span("evaluate"):
            pass
        hist = reg.get("repro_span_seconds")
        count, total = hist.state(span="evaluate", status="ok")
        assert (count, total) == (1, 2.5)

    def test_failing_span_records_error_status_and_reraises(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg, clock=self._fake_clock([0.0, 1.0]))
        with pytest.raises(RuntimeError):
            with tracer.span("persist"):
                raise RuntimeError("disk gone")
        count, total = reg.get("repro_span_seconds").state(
            span="persist", status="error"
        )
        assert (count, total) == (1, 1.0)

    def test_sink_sees_labels_and_context(self):
        records = []
        tracer = Tracer(
            registry=MetricsRegistry(),
            clock=self._fake_clock([0.0, 3.0]),
            sink=records.append,
        )
        with tracer.span("lease", worker="w1") as ctx:
            ctx["jobs"] = 4
        (record,) = records
        assert isinstance(record, SpanRecord)
        assert record.name == "lease"
        assert record.seconds == 3.0
        assert dict(record.labels) == {"worker": "w1", "jobs": "4"}


class TestAggregation:
    def _write(self, path, records):
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")

    def test_latest_flush_per_process_sums_across_processes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write(path, [
            {"event": "metrics_flush", "pid": 1, "source": "w1",
             "counters": {"repro_jobs_completed_total": 3.0}},
            # Same pid+source again: monotonic, latest wins (not summed).
            {"event": "metrics_flush", "pid": 1, "source": "w1",
             "counters": {"repro_jobs_completed_total": 5.0}},
            {"event": "metrics_flush", "pid": 2, "source": "w2",
             "counters": {"repro_jobs_completed_total": 4.0}},
        ])
        totals = aggregate_event_counters(path)
        assert totals["repro_jobs_completed_total"] == 9.0

    def test_discrete_events_override_flushed_series(self, tmp_path):
        """Lease counters come from discrete events; the same series
        inside a flush must not double count."""
        path = tmp_path / "events.jsonl"
        self._write(path, [
            {"event": "metrics_flush", "pid": 1, "source": "w1",
             "counters": {
                 'repro_lease_grants_total{queue="q"}': 99.0,
                 "repro_points_evaluated_total": 7.0,
             }},
            {"event": "lease_grant", "queue": "q", "jobs": 2},
            {"event": "lease_grant", "queue": "q", "jobs": 1},
            {"event": "lease_reclaim", "queue": "q"},
            {"event": "breaker_trip", "component": "store"},
            {"event": "degraded_op", "component": "store"},
            {"event": "gc"},
            {"event": "round_complete", "round": 0, "stop": None},
            {"event": "round_complete", "round": 1, "stop": "max-rounds"},
        ])
        totals = aggregate_event_counters(path)
        assert totals["repro_lease_grants_total"] == 3.0
        assert 'repro_lease_grants_total{queue="q"}' not in totals
        assert totals["repro_lease_reclaims_total"] == 1.0
        assert totals['repro_breaker_trips_total{component="store"}'] == 1.0
        assert totals['repro_degraded_ops_total{component="store"}'] == 1.0
        assert totals["repro_gc_runs_total"] == 1.0
        assert totals['repro_campaign_rounds_total{stop="continue"}'] == 1.0
        assert totals['repro_campaign_rounds_total{stop="max-rounds"}'] == 1.0
        assert totals["repro_points_evaluated_total"] == 7.0


class TestFleetSample:
    def _sample(self):
        sample = FleetSample(sampled_at=1000.0)
        sample.queue_counts = {
            "pending": 3, "leased": 2, "done": 5, "failed": 1,
            "expired": 0, "invalid": 0, "total": 11, "outstanding": 5,
        }
        sample.queue_describe = {"kind": "sqlite"}
        sample.workers = {
            "w1": {"jobs_held": 2, "oldest_lease_age": 4.0,
                   "last_heartbeat_age": 1.0, "next_expiry_in": 56.0},
        }
        sample.event_counters = {"repro_cache_hits_total": 8.0}
        sample.rounds = [
            {"event": "round_complete", "round": 2, "simulated": 6,
             "cached": 3, "stop": None},
        ]
        return sample

    def test_samples_expose_gauges_and_counters(self):
        rows = {s.key: s.value for s in self._sample().samples()}
        assert rows['repro_queue_depth{status="pending"}'] == 3.0
        assert rows['repro_queue_depth{status="failed"}'] == 1.0
        assert "repro_queue_depth{status=\"total\"}" not in rows
        assert rows['repro_worker_jobs_held{worker="w1"}'] == 2.0
        assert rows['repro_worker_oldest_lease_age_seconds{worker="w1"}'] == 4.0
        assert rows['repro_worker_heartbeat_age_seconds{worker="w1"}'] == 1.0
        assert rows["repro_fleet_workers"] == 1.0
        assert rows["repro_cache_hits_total"] == 8.0

    def test_dashboard_renders_every_section(self):
        sample = self._sample()
        previous = FleetSample(sampled_at=990.0)
        previous.queue_counts = {"done": 1}
        text = "\n".join(render_dashboard(sample, previous))
        assert "fleet" in text
        assert "pending=3" in text
        assert "w1" in text
        assert "cache hits=8" in text
        assert "round=2" in text
        # Throughput from the done-delta: 4 jobs over 10 seconds.
        assert "0.4" in text

    def test_sample_fleet_tolerates_missing_substrate(self, tmp_path):
        sample = sample_fleet(str(tmp_path / "nowhere.sqlite"))
        assert sample.queue_counts == {}
        assert sample.workers == {}
        assert sample.rounds == []

    def test_sample_fleet_propagates_caller_queue_errors(self, tmp_path):
        class Broken:
            def stats(self):
                raise OSError("vanished")

        with pytest.raises(OSError):
            sample_fleet(str(tmp_path / "s.sqlite"), queue=Broken())
