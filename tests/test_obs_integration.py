"""The observability layer wired into the real platform.

End-to-end acceptance for the tentpole: live components (engine,
store, queue, resilience wrapper, worker) mirror onto the default
registry through pull-time collectors, the ``repro-metrics`` CLI
exports a scrape-able view of a study substrate, the queue-stats CLI
reports per-worker lease state, and the docs metric catalog stays in
lockstep with :mod:`repro.obs.catalog`.
"""

import json
import math
import re
import urllib.request
from pathlib import Path

import pytest

import repro.exec.cli as cache_cli
import repro.obs.cli as metrics_cli
from repro.exec import EvaluationEngine, Job
from repro.exec.queue import SQLiteWorkQueue, resolve_queue
from repro.exec.store import MemoryStore, resolve_store
from repro.exec.worker import Worker, main as worker_main
from repro.obs import catalog
from repro.obs.catalog import SPECS, ensure_registered, instrument
from repro.obs.events import read_events, set_event_log
from repro.obs.export import parse_prometheus, render_prometheus, serve_metrics
from repro.obs.metrics import MetricsRegistry, default_registry


@pytest.fixture(autouse=True)
def _unbound_event_log():
    set_event_log(None)
    yield
    set_event_log(None)


def _synthetic(point):
    return {"y": math.sin(point["a"]) + point["b"]}


def _registry_text():
    return render_prometheus(registry=default_registry())


class TestCatalogBridge:
    def test_engine_and_cache_counters_mirror_onto_registry(self):
        engine = EvaluationEngine(_synthetic, backend="serial", cache=True)
        before = parse_prometheus(_registry_text())
        points = [{"a": 0.1, "b": 1.0}, {"a": 0.2, "b": 2.0}]
        engine.map_points(points)
        engine.map_points(points)  # second pass: pure cache hits
        after = parse_prometheus(_registry_text())

        def delta(key):
            return after.get(key, 0.0) - before.get(key, 0.0)

        assert delta("repro_points_evaluated_total") == 2.0
        assert delta("repro_cache_hits_total") == 2.0
        assert delta("repro_cache_misses_total") == 2.0
        # Spans around evaluate/persist landed in the histogram.
        assert delta('repro_span_seconds_count{span="evaluate",status="ok"}') >= 1.0

    def test_dead_components_vanish_from_the_registry(self):
        engine = EvaluationEngine(_synthetic, backend="serial", cache=True)
        engine.map_points([{"a": 0.5, "b": 0.5}])
        del engine
        # The weakref bridge prunes: no stale engine contributes now,
        # so two registry pulls in a row agree (nothing double counts).
        assert parse_prometheus(_registry_text()) == parse_prometheus(
            _registry_text()
        )

    def test_queue_counters_and_events(self, tmp_path):
        events = tmp_path / "events.jsonl"
        set_event_log(events)
        queue = SQLiteWorkQueue(tmp_path / "q.sqlite")
        try:
            queue.submit([Job("ab" * 30, {"a": 1.0}), Job("cd" * 30, {"a": 2.0})])
            leased = queue.lease("w1", n=2, lease_seconds=0.01)
            assert len(leased) == 2
            import time as _time

            _time.sleep(0.05)
            reclaimed = queue.lease("w2", n=2, lease_seconds=60.0)
            assert len(reclaimed) == 2
            # Counters count *jobs*: 2 granted to w1, then the same 2
            # reclaimed from it and granted again to w2.
            assert queue.lease_grants == 4
            assert queue.lease_reclaims == 2
            snap = parse_prometheus(_registry_text())
            key = 'repro_lease_reclaims_total{queue="%s"}' % queue.name
            assert snap[key] >= 2.0
            grants = read_events(events, event="lease_grant")
            assert [g["worker"] for g in grants] == ["w1", "w2"]
            reclaim_events = read_events(events, event="lease_reclaim")
            assert len(reclaim_events) == 2
            assert {r["from_worker"] for r in reclaim_events} == {"w1"}
            assert {r["to_worker"] for r in reclaim_events} == {"w2"}
        finally:
            queue.close()

    def test_worker_report_mirrors_and_worker_events_flow(self, tmp_path):
        events = tmp_path / "events.jsonl"
        set_event_log(events)
        store = resolve_store(str(tmp_path / "s.sqlite"))
        queue = resolve_queue(str(tmp_path / "s.sqlite"))
        try:
            queue.submit([Job("ab" * 30, {"a": 0.3, "b": 1.0})])
            worker = Worker(
                store, queue, _synthetic, worker_id="wx", drain=True
            )
            report = worker.run()
            assert report.jobs_completed == 1
            snap = parse_prometheus(_registry_text())
            assert snap['repro_jobs_completed_total{worker="wx"}'] == 1.0
            kinds = [r["event"] for r in read_events(events)]
            assert "worker_start" in kinds
            assert "worker_exit" in kinds
            assert "metrics_flush" in kinds
            flush = read_events(events, event="metrics_flush")[-1]
            assert flush["source"] == "wx"
            assert any(
                "repro_jobs_completed_total" in key
                for key in flush["counters"]
            )
        finally:
            queue.close()
            store.close()

    def test_instrument_accessor_matches_catalog(self):
        gc_runs = instrument("repro_gc_runs_total")
        before = gc_runs.value()
        gc_runs.inc()
        assert gc_runs.value() == before + 1
        with pytest.raises(KeyError):
            instrument("repro_not_in_catalog_total")

    def test_ensure_registered_creates_every_instrument(self):
        reg = MetricsRegistry()
        ensure_registered(reg)
        for spec in SPECS:
            if spec.source == "instrument":
                assert reg.get(spec.name) is not None, spec.name


class TestDocsContract:
    """`docs/observability.md` is a contract over the catalog."""

    DOC = Path(__file__).resolve().parent.parent / "docs" / "observability.md"

    def test_every_spec_is_documented_with_kind_and_source(self):
        text = self.DOC.read_text(encoding="utf-8")
        rows = {}
        for line in text.splitlines():
            match = re.match(r"\| `([a-z_]+)` \| (\w+) \|.*\| (\w+) \|", line)
            if match:
                rows[match.group(1)] = (match.group(2), match.group(3))
        for spec in SPECS:
            assert spec.name in rows, f"{spec.name} missing from docs table"
            kind, source = rows[spec.name]
            assert kind == spec.kind, f"{spec.name} documented as {kind}"
            assert source == spec.source, f"{spec.name} documented as {source}"

    def test_docs_do_not_document_ghost_metrics(self):
        text = self.DOC.read_text(encoding="utf-8")
        known = {spec.name for spec in SPECS}
        for line in text.splitlines():
            match = re.match(r"\| `(repro_[a-z_]+)` \|", line)
            if match:
                assert match.group(1) in known, f"{match.group(1)} not in catalog"


def _seed_substrate(tmp_path, completed=1, pending=1):
    spec = str(tmp_path / "study.sqlite")
    store = resolve_store(spec)
    queue = resolve_queue(spec)
    jobs = [
        Job(f"{i:02d}" * 30, {"a": 0.1 * i, "b": 1.0})
        for i in range(completed + pending)
    ]
    queue.submit(jobs)
    if completed:
        worker = Worker(
            store, queue, _synthetic, worker_id="w-done", batch=1,
            max_jobs=completed, drain=False, idle_timeout=0.0,
        )
        worker.run()
    queue.lease("w-live", n=pending, lease_seconds=120.0)
    queue.close()
    store.close()
    return spec


class TestMetricsCli:
    def test_exposition_dump(self, tmp_path, capsys):
        spec = _seed_substrate(tmp_path)
        assert metrics_cli.main([spec]) == 0
        parsed = parse_prometheus(capsys.readouterr().out)
        assert parsed['repro_queue_depth{status="done"}'] == 1.0
        assert parsed['repro_queue_depth{status="leased"}'] == 1.0
        assert parsed['repro_worker_jobs_held{worker="w-live"}'] == 1.0
        assert parsed["repro_fleet_workers"] == 1.0

    def test_json_sample(self, tmp_path, capsys):
        spec = _seed_substrate(tmp_path)
        assert metrics_cli.main([spec, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queue"]["done"] == 1
        assert "w-live" in payload["workers"]
        assert payload["workers"]["w-live"]["jobs_held"] == 1

    def test_textfile_once(self, tmp_path):
        spec = _seed_substrate(tmp_path)
        out = tmp_path / "repro.prom"
        assert metrics_cli.main([spec, "--textfile", str(out), "--once"]) == 0
        parsed = parse_prometheus(out.read_text())
        assert parsed['repro_queue_depth{status="pending"}'] == 0.0

    def test_serve_scrapes_fresh_fleet_samples(self, tmp_path):
        from repro.obs.fleet import sample_fleet

        spec = _seed_substrate(tmp_path)
        server = serve_metrics(
            port=0,
            extra_samples=lambda: sample_fleet(spec).samples(),
        )
        try:
            body = urllib.request.urlopen(server.url, timeout=5).read().decode()
        finally:
            server.stop()
        parsed = parse_prometheus(body)
        assert parsed['repro_worker_jobs_held{worker="w-live"}'] == 1.0

    def test_watch_once_renders_dashboard(self, tmp_path, capsys):
        spec = _seed_substrate(tmp_path)
        assert metrics_cli.main([spec, "--watch", "--once"]) == 0
        out = capsys.readouterr().out
        assert "fleet" in out
        assert "w-live" in out


class TestQueueStatsWorkers:
    def test_json_includes_per_worker_lease_state(self, tmp_path, capsys):
        spec = _seed_substrate(tmp_path)
        assert cache_cli.main(["queue", "stats", spec, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        held = payload["workers"]["w-live"]
        assert held["jobs_held"] == 1
        assert held["oldest_lease_age"] >= 0.0
        assert held["last_heartbeat_age"] >= 0.0

    def test_text_lists_workers_holding_leases(self, tmp_path, capsys):
        spec = _seed_substrate(tmp_path)
        assert cache_cli.main(["queue", "stats", spec]) == 0
        out = capsys.readouterr().out
        assert "w-live" in out
        assert "holds 1" in out


class TestSupervisedJsonMetrics:
    def test_supervise_json_embeds_fleet_metrics(self, tmp_path, capsys):
        import os

        tests_dir = Path(__file__).resolve().parent
        src_dir = tests_dir.parent / "src"
        spec = str(tmp_path / "study.sqlite")
        queue = resolve_queue(spec)
        queue.submit(
            [Job(f"{i:02d}" * 30, {"a": float(i), "b": 1.0}) for i in range(4)]
        )
        queue.close()
        old = os.environ.get("PYTHONPATH")
        os.environ["PYTHONPATH"] = f"{src_dir}{os.pathsep}{tests_dir}"
        try:
            code = worker_main([
                spec,
                "--evaluator", "worker_eval_fixtures:make_synthetic",
                "--supervise", "2", "--drain", "--json",
            ])
        finally:
            if old is None:
                del os.environ["PYTHONPATH"]
            else:
                os.environ["PYTHONPATH"] = old
        assert code == 0
        payload = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        metrics = payload["metrics"]
        assert metrics["jobs_completed"] == 4
        assert metrics["restarts"] == 0
        assert metrics["uptime_seconds"] > 0.0
        assert sum(
            w["jobs_completed"] for w in metrics["workers"].values()
        ) == 4
