"""One parametrized contract, every store implementation.

The behavioural suite lives in :mod:`store_contract`; this module
binds it to the three shipped stores.  A new store earns the whole
contract — blob-map semantics, metadata, GC, verify/compact,
export/merge, corruption tolerance — by adding one subclass here.
"""

import json

from repro.exec import SCHEMA_VERSION, FileStore, MemoryStore, SQLiteStore

from store_contract import StoreContract


class TestMemoryStoreContract(StoreContract):
    supports_persistence = False
    supports_corruption = False
    counts_hits = True

    def make_store(self, tmp_path):
        return MemoryStore()


class TestFileStoreContract(StoreContract):
    supports_persistence = True
    supports_corruption = True
    counts_hits = False  # a hit counter would rewrite the blob per hit

    def make_store(self, tmp_path):
        return FileStore(tmp_path / "file-store")

    def reopen(self, tmp_path):
        return FileStore(tmp_path / "file-store")

    def corrupt_entry(self, store, tmp_path, fingerprint):
        (store.directory / f"{fingerprint}.json").write_text(
            "{not json", encoding="utf-8"
        )

    def write_version_mismatch(self, store, tmp_path, fingerprint):
        blob = {
            "schema": SCHEMA_VERSION + 1,
            "fingerprint": fingerprint,
            "responses": {"y": 1.0},
        }
        (store.directory / f"{fingerprint}.json").write_text(
            json.dumps(blob), encoding="utf-8"
        )


class TestSQLiteStoreContract(StoreContract):
    supports_persistence = True
    supports_corruption = True
    counts_hits = True

    def make_store(self, tmp_path):
        return SQLiteStore(tmp_path / "store.sqlite")

    def reopen(self, tmp_path):
        return SQLiteStore(tmp_path / "store.sqlite")

    def corrupt_entry(self, store, tmp_path, fingerprint):
        with store._conn:
            store._conn.execute(
                "UPDATE evaluations SET payload = '{oops'"
                " WHERE fingerprint = ?",
                (fingerprint,),
            )

    def write_version_mismatch(self, store, tmp_path, fingerprint):
        with store._conn:
            store._conn.execute(
                "UPDATE evaluations SET schema_version = ?"
                " WHERE fingerprint = ?",
                (SCHEMA_VERSION + 1, fingerprint),
            )
