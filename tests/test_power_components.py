"""Supercapacitor, regulator, rectifier builders, behavioural path."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ModelError
from repro.harvester.parameters import default_parameters
from repro.power.behavioral import BehavioralPowerPath
from repro.power.rectifier import (
    build_bridge_circuit,
    build_doubler_circuit,
    build_multiplier_circuit,
    build_resistive_load_circuit,
)
from repro.power.regulator import Regulator
from repro.power.supercap import Supercapacitor


class TestSupercapacitor:
    def setup_method(self):
        self.sc = Supercapacitor()

    def test_energy_quadratic(self):
        assert self.sc.energy(2.0) == pytest.approx(4 * self.sc.energy(1.0))

    def test_usable_energy(self):
        usable = self.sc.usable_energy(3.0, 2.2)
        assert usable == pytest.approx(self.sc.energy(3.0) - self.sc.energy(2.2))
        assert self.sc.usable_energy(2.0, 2.2) == 0.0

    def test_leakage_current(self):
        assert self.sc.leakage_current(2.5) == pytest.approx(
            2.5 / self.sc.leakage_resistance
        )

    def test_idle_decay_matches_rc(self):
        tau = self.sc.leakage_resistance * self.sc.capacitance
        v = self.sc.voltage_after_idle(3.0, tau)
        assert v == pytest.approx(3.0 / math.e, rel=1e-9)

    @given(st.floats(0.0, 5.0), st.floats(0.0, 1e5))
    def test_idle_never_increases(self, v0, dt):
        assert self.sc.voltage_after_idle(v0, dt) <= v0 + 1e-12

    def test_replace(self):
        bigger = self.sc.replace(capacitance=1.0)
        assert bigger.capacitance == 1.0
        assert bigger.esr == self.sc.esr

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacitance": 0.0},
            {"esr": -1.0},
            {"leakage_resistance": 0.0},
            {"v_rated": -5.0},
            {"v_initial": 9.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ModelError):
            Supercapacitor(**kwargs)


class TestRegulator:
    def setup_method(self):
        self.reg = Regulator()

    def test_constant_power_draw(self):
        i3 = self.reg.input_current(3e-3, 3.0)
        i4 = self.reg.input_current(3e-3, 4.0)
        assert i4 < i3  # higher bus voltage, less current

    def test_quiescent_floor(self):
        assert self.reg.input_current(0.0, 3.0) == pytest.approx(
            self.reg.quiescent_current
        )

    def test_efficiency_scales_current(self):
        lossy = Regulator(efficiency=0.5)
        perfect = Regulator(efficiency=1.0)
        assert lossy.input_current(1e-3, 3.0) > perfect.input_current(1e-3, 3.0)

    def test_hysteresis_state_machine(self):
        r = self.reg
        assert r.next_enabled(True, r.v_brownout + 0.1) is True
        assert r.next_enabled(True, r.v_brownout - 0.01) is False
        # Once off, needs to exceed restart, not just brownout.
        between = 0.5 * (r.v_brownout + r.v_restart)
        assert r.next_enabled(False, between) is False
        assert r.next_enabled(False, r.v_restart + 0.01) is True

    def test_validation(self):
        with pytest.raises(ModelError):
            Regulator(v_restart=2.0, v_brownout=2.2)
        with pytest.raises(ModelError):
            Regulator(efficiency=0.0)
        with pytest.raises(ModelError):
            self.reg.input_current(-1.0, 3.0)


class TestRectifierBuilders:
    def test_bridge_structure(self):
        pc = build_bridge_circuit(Supercapacitor())
        assert pc.topology == "bridge"
        assert pc.matrices.n_diodes == 4
        assert {"in_p", "in_n", "bus", "store"} <= set(pc.matrices.node_names)
        assert set(pc.matrices.input_names) == {"coil", "load"}

    def test_doubler_is_one_stage(self):
        pc = build_doubler_circuit(Supercapacitor())
        assert pc.n_stages == 1
        assert pc.matrices.n_diodes == 2

    def test_multiplier_scaling(self):
        for n in (1, 2, 3):
            pc = build_multiplier_circuit(Supercapacitor(), n_stages=n)
            assert pc.matrices.n_diodes == 2 * n

    def test_initial_voltages_puts_store_at_v_initial(self):
        sc = Supercapacitor(v_initial=2.5)
        pc = build_bridge_circuit(sc)
        v = pc.initial_voltages()
        assert pc.store_voltage(v) == pytest.approx(2.5)
        assert pc.bus_voltage(v) == pytest.approx(2.5)

    def test_resistive_circuit_has_no_store(self):
        pc = build_resistive_load_circuit(5000.0)
        assert pc.supercap is None
        with pytest.raises(ModelError):
            pc.store_voltage(np.zeros(pc.matrices.n_nodes))

    def test_coil_terminal_voltage_differential(self):
        pc = build_bridge_circuit(Supercapacitor())
        v = np.zeros(pc.matrices.n_nodes)
        names = pc.matrices.node_names
        v[names["in_p"] - 1] = 1.5
        v[names["in_n"] - 1] = 0.5
        assert pc.coil_terminal_voltage(v) == pytest.approx(1.0)

    def test_multiplier_validation(self):
        with pytest.raises(ModelError):
            build_multiplier_circuit(Supercapacitor(), n_stages=0)
        with pytest.raises(ModelError):
            build_resistive_load_circuit(0.0)


class TestBehavioralPath:
    def setup_method(self):
        self.path = BehavioralPowerPath()
        self.params = default_parameters()

    def test_tuned_beats_detuned(self):
        tuned = self.path.charging_power(self.params, 0.6, 67.0, 67.0, 2.5)
        detuned = self.path.charging_power(self.params, 0.6, 67.0, 64.0, 2.5)
        assert tuned > detuned

    def test_taper_to_zero_at_vmax(self):
        assert self.path.charging_power(
            self.params, 0.6, 67.0, 67.0, self.path.v_max
        ) == pytest.approx(0.0)

    def test_power_decreases_with_store_voltage(self):
        low = self.path.charging_power(self.params, 0.6, 67.0, 67.0, 1.0)
        high = self.path.charging_power(self.params, 0.6, 67.0, 67.0, 4.0)
        assert low > high

    def test_validation(self):
        with pytest.raises(ModelError):
            BehavioralPowerPath(efficiency=1.5)
        with pytest.raises(ModelError):
            BehavioralPowerPath(v_max=0.0, v_min_charge=1.0)
        with pytest.raises(ModelError):
            self.path.charging_power(self.params, 0.6, 67.0, 67.0, -1.0)
