"""The reusable behavioural contract every evaluation backend obeys.

One suite, every backend: :mod:`test_backend_contract` binds these
tests to serial (plain and batched), process, thread and distributed
backends, and any future implementation (an async remote fleet, say)
gets the whole contract — ordering, bit-identity against the serial
reference, the submit/drain life cycle, error propagation — by
subclassing :class:`BackendContract` and filling in the factory hook.

The synthetic evaluator is a module-level pure function so every
backend can run it: process pools pickle it, distributed workers
receive its points through a queue, and the results must be
bit-identical wherever it executed.
"""

import math

import pytest

from repro.errors import ReproError
from repro.exec import SerialBackend


def synthetic_evaluate(point):
    """Deterministic, picklable stand-in for a mission simulation."""
    a = point["a"]
    b = point["b"]
    return {
        "y1": math.sin(a) * b + a * a,
        "y2": math.exp(-abs(b)) + 3.0 * a,
    }


def broken_evaluate(point):
    raise ValueError("boom")


def make_points(n=10):
    return [
        {"a": math.sin(i * 0.7) * 0.9, "b": 0.5 + 0.35 * i}
        for i in range(n)
    ]


class BackendContract:
    """Subclass per backend kind; provide the hook, inherit the tests."""

    #: evaluator exceptions surface from result()/run().
    propagates_errors = True

    # -- hooks -----------------------------------------------------------------

    def make_backend(self, tmp_path):
        raise NotImplementedError

    @pytest.fixture
    def backend(self, tmp_path):
        built = self.make_backend(tmp_path)
        yield built
        built.close()

    # -- ordering and bit-identity ---------------------------------------------

    def test_matches_serial_reference_bitwise(self, backend):
        points = make_points()
        reference = SerialBackend().run(synthetic_evaluate, points)
        results = backend.run(synthetic_evaluate, points)
        assert len(results) == len(points)
        for (r_ref, _), (r_got, _) in zip(reference, results):
            assert r_got == r_ref  # exact float equality, order kept

    def test_empty_batch(self, backend):
        assert backend.run(synthetic_evaluate, []) == []

    def test_seconds_are_non_negative(self, backend):
        results = backend.run(synthetic_evaluate, make_points(4))
        for responses, seconds in results:
            assert seconds >= 0.0
            assert set(responses) == {"y1", "y2"}

    # -- the submit/drain life cycle -------------------------------------------

    def test_submit_returns_resolving_handle(self, backend):
        points = make_points(5)
        handle = backend.submit(synthetic_evaluate, points)
        first = handle.result()
        assert handle.done()
        # result() is idempotent: same list, not a re-evaluation.
        assert handle.result() is first
        reference = SerialBackend().run(synthetic_evaluate, points)
        assert [r for r, _ in first] == [r for r, _ in reference]

    def test_drain_resolves_outstanding_handles(self, backend):
        handles = [
            backend.submit(synthetic_evaluate, make_points(3)),
            backend.submit(synthetic_evaluate, make_points(4)),
        ]
        backend.drain()
        assert all(handle.done() for handle in handles)
        assert len(handles[0].result()) == 3
        assert len(handles[1].result()) == 4

    def test_fingerprint_count_mismatch_rejected(self, backend):
        with pytest.raises(ReproError):
            backend.submit(
                synthetic_evaluate, make_points(3), fingerprints=["only-one"]
            )

    # -- error propagation -----------------------------------------------------

    def test_evaluator_exception_propagates(self, backend):
        if not self.propagates_errors:
            pytest.skip("backend defers errors")
        with pytest.raises(Exception, match="boom"):
            backend.run(broken_evaluate, make_points(2))

    # -- reporting -------------------------------------------------------------

    def test_describe_names_the_backend(self, backend):
        assert backend.describe()["backend"] == backend.name

    def test_close_is_idempotent(self, backend):
        backend.close()
        backend.close()
