"""The persistent evaluation store and the exec-layer contracts around it.

Covers each store's durability specifics (the *shared* behavioural
contract lives in :mod:`store_contract`, bound to every store by
:mod:`test_store_contract`), schema migration of pre-lifecycle
databases, partial-file handling, auto-GC threading through
engine/explorer/toolkit, the type-tagged fingerprint
canonicalization, per-study statistics deltas, and the acceptance
properties: a study persisted through a store re-simulates nothing in
a fresh process, and serial / serial-batched / process / store-backed
engines return bit-identical response vectors.
"""

import json
import math
import os
import sqlite3
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.doe import latin_hypercube
from repro.core.explorer import DesignExplorer
from repro.core.factors import DesignSpace, Factor
from repro.core.toolkit import SensorNodeDesignToolkit
from repro.errors import DesignError, ReproError
from repro.exec import (
    SCHEMA_VERSION,
    EvalCache,
    EvaluationEngine,
    FileStore,
    GCBudget,
    MemoryStore,
    SQLiteStore,
    point_fingerprint,
    resolve_store,
)
from repro.sim.envelope import EnvelopeOptions, clear_charging_cache

FAST_ENVELOPE = EnvelopeOptions(
    map_v_points=4,
    map_nr_warmup_cycles=4,
    map_warmup_cycles=8,
    map_measure_cycles=6,
    map_max_blocks=3,
    map_steps_per_period=80,
)


def _synthetic(point):
    a = point["a"]
    b = point["b"]
    return {
        "y1": math.sin(a) * b + a * a,
        "y2": math.exp(-abs(b)) + 3.0 * a,
    }


def _space():
    return DesignSpace([Factor("a", -1.0, 1.0), Factor("b", 0.5, 4.0)])


class TestFileStore:
    def test_no_partial_files_left_behind(self, tmp_path):
        store = FileStore(tmp_path)
        for i in range(5):
            store.persist(f"fp{i}", {"y": float(i)})
        leftovers = [
            p for p in tmp_path.iterdir() if not p.name.endswith(".json")
        ]
        assert leftovers == []
        assert len(store) == 5

    def test_fingerprint_mismatch_is_invalidated(self, tmp_path):
        # A renamed/copied blob must not serve responses under the
        # wrong key.
        store = FileStore(tmp_path)
        store.persist("fp-original", {"y": 1.0})
        os.replace(tmp_path / "fp-original.json", tmp_path / "fp-other.json")
        assert store.load("fp-other") is None
        assert store.stats.invalidations == 1

    def test_blobs_are_not_mkstemp_private(self, tmp_path):
        # mkstemp creates 0600 files; persisted blobs must honour the
        # umask instead so other users of a shared mount can read them.
        store = FileStore(tmp_path)
        store.persist("fp", {"y": 1.0})
        umask = os.umask(0)
        os.umask(umask)
        mode = (tmp_path / "fp.json").stat().st_mode & 0o777
        assert mode == 0o666 & ~umask

    def test_two_stores_share_a_directory(self, tmp_path):
        writer = FileStore(tmp_path)
        reader = FileStore(tmp_path)
        writer.persist("fp", {"y": 4.25})
        assert reader.load("fp") == {"y": 4.25}


class TestFileStorePartials:
    """Temp/partial files from killed writers are never entries."""

    @staticmethod
    def _killed_writer_leftovers(tmp_path):
        # What a SIGKILLed persist() leaves behind: the mkstemp temp
        # file, plus a foreign .part from some other tool.
        (tmp_path / ".write-a1b2c3.part").write_text(
            '{"schema": 1, "fingerprint"', encoding="utf-8"
        )
        (tmp_path / "stray.part").write_text("x", encoding="utf-8")

    def test_len_and_items_skip_partials(self, tmp_path):
        store = FileStore(tmp_path)
        store.persist("fp", {"y": 1.0})
        self._killed_writer_leftovers(tmp_path)
        assert len(store) == 1
        assert dict(store.items()) == {"fp": {"y": 1.0}}
        assert [m.fingerprint for m in store.entries()] == ["fp"]

    def test_partials_are_counted_not_hidden(self, tmp_path):
        store = FileStore(tmp_path)
        store.persist("fp", {"y": 1.0})
        self._killed_writer_leftovers(tmp_path)
        assert len(store.partial_files()) == 2
        report = store.verify()
        assert report.partials == 2
        assert not report.clean  # an operator should see the debris
        assert report.valid == 1 and report.invalid == 0

    def test_compact_sweeps_stale_partials_only(self, tmp_path):
        store = FileStore(tmp_path)
        store.persist("fp", {"y": 1.0})
        self._killed_writer_leftovers(tmp_path)
        # A generous grace keeps the (brand-new) files: they could
        # belong to a live writer mid-persist.
        untouched = store.compact(grace_seconds=3600.0)
        assert untouched.partials_removed == 0
        assert len(store.partial_files()) == 2
        swept = store.compact(grace_seconds=0.0)
        assert swept.partials_removed == 2
        assert swept.bytes_reclaimed > 0
        assert store.partial_files() == []
        assert store.verify().clean
        assert store.load("fp") == {"y": 1.0}

    def test_compact_sweeps_zero_byte_orphans(self, tmp_path):
        store = FileStore(tmp_path)
        store.persist("fp", {"y": 1.0})
        (tmp_path / "orphan.json").touch()
        report = store.compact(grace_seconds=0.0)
        assert report.orphans_removed == 1
        assert len(store) == 1

    def test_foreign_files_are_never_touched(self, tmp_path):
        # A README or .gitignore in the store directory is neither an
        # entry, a "partial", nor sweepable debris: vacuum on a
        # mistyped path must not eat anybody's data.
        store = FileStore(tmp_path)
        store.persist("fp", {"y": 1.0})
        (tmp_path / "README").write_text("notes", encoding="utf-8")
        (tmp_path / ".gitignore").write_text("*", encoding="utf-8")
        assert len(store) == 1
        assert store.partial_files() == []
        assert store.verify().clean
        report = store.compact(grace_seconds=0.0)
        assert report.partials_removed == 0
        assert (tmp_path / "README").read_text() == "notes"
        assert (tmp_path / ".gitignore").exists()


class TestSQLiteMigration:
    def test_pre_lifecycle_database_is_migrated_in_place(self, tmp_path):
        # A database written before the lifecycle columns existed
        # (PR 2 layout) must keep serving its entries, with metadata
        # backfilled rather than invalidated.
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute(
            "CREATE TABLE evaluations ("
            " fingerprint TEXT PRIMARY KEY,"
            " schema_version INTEGER NOT NULL,"
            " payload TEXT NOT NULL)"
        )
        payload = json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "fingerprint": "fp",
                "responses": {"y": 1.5},
            }
        )
        conn.execute(
            "INSERT INTO evaluations VALUES (?, ?, ?)",
            ("fp", SCHEMA_VERSION, payload),
        )
        conn.commit()
        conn.close()

        store = SQLiteStore(path)
        assert store.load("fp") == {"y": 1.5}
        meta = store.entry_meta("fp")
        assert meta.created_at is not None
        assert meta.size_bytes == len(payload)
        assert store.total_bytes() > 0
        assert store.verify().clean
        store.close()


class TestSQLiteStore:
    def test_two_connections_share_the_file(self, tmp_path):
        path = tmp_path / "shared.sqlite"
        writer = SQLiteStore(path)
        reader = SQLiteStore(path)
        writer.persist("fp", {"y": 4.25})
        assert reader.load("fp") == {"y": 4.25}
        reader.persist("fp2", {"y": 1.0})
        assert writer.load("fp2") == {"y": 1.0}
        writer.close()
        reader.close()

    def test_corrupt_database_is_recreated(self, tmp_path):
        # A torn/corrupt database still carries the SQLite header;
        # that is a cache artefact and safe to rebuild from nothing.
        path = tmp_path / "broken.sqlite"
        path.write_bytes(b"SQLite format 3\x00" + b"\xff" * 4096)
        store = SQLiteStore(path)
        assert store.stats.invalidations == 1
        store.persist("fp", {"y": 1.0})
        assert store.load("fp") == {"y": 1.0}
        store.close()

    def test_foreign_file_is_refused_not_deleted(self, tmp_path):
        # A mistyped path pointing at somebody's data file must never
        # be deleted: no SQLite header means it was not ours.
        path = tmp_path / "precious.db"
        payload = b"definitely not a sqlite database" * 8
        path.write_bytes(payload)
        with pytest.raises(ReproError):
            SQLiteStore(path)
        assert path.read_bytes() == payload

    def test_empty_file_is_adopted(self, tmp_path):
        # sqlite itself treats an empty file as a fresh database.
        path = tmp_path / "empty.sqlite"
        path.touch()
        store = SQLiteStore(path)
        store.persist("fp", {"y": 1.0})
        assert store.load("fp") == {"y": 1.0}
        store.close()

    def test_close_is_idempotent(self, tmp_path):
        store = SQLiteStore(tmp_path / "store.sqlite")
        store.close()
        store.close()

    def test_store_pickles_for_spawn_workers(self, tmp_path):
        # Spawn-start-method process backends pickle the evaluator
        # graph (toolkit -> engine -> cache -> store) into workers;
        # the connection is re-opened on arrival.
        import pickle

        store = SQLiteStore(tmp_path / "store.sqlite")
        store.persist("fp", {"y": 1.0})
        clone = pickle.loads(pickle.dumps(EvalCache(store=store)))
        assert clone.get("fp") == {"y": 1.0}
        clone.put("fp2", {"y": 2.0})
        assert store.load("fp2") == {"y": 2.0}
        clone.close()
        store.close()


class TestResolveStore:
    def test_none_spec(self):
        assert isinstance(resolve_store(None), MemoryStore)
        assert resolve_store(None, max_entries=3).max_entries == 3

    def test_path_specs(self, tmp_path):
        assert isinstance(resolve_store(tmp_path / "dir"), FileStore)
        # No string sentinels: "memory" is a directory like any other.
        built = resolve_store(str(tmp_path / "memory"))
        assert isinstance(built, FileStore)
        for suffix in (".sqlite", ".sqlite3", ".db"):
            built = resolve_store(tmp_path / f"cache{suffix}")
            assert isinstance(built, SQLiteStore)
            built.close()

    def test_passthrough(self, tmp_path):
        store = FileStore(tmp_path)
        assert resolve_store(store) is store

    def test_max_entries_rejected_for_persistent_stores(self, tmp_path):
        with pytest.raises(ReproError):
            resolve_store(tmp_path / "dir", max_entries=4)
        with pytest.raises(ReproError):
            resolve_store(FileStore(tmp_path), max_entries=4)


class TestEvalCacheOverStores:
    def test_store_counters_merged_into_cache_stats(self, tmp_path):
        cache = EvalCache(store=FileStore(tmp_path))
        assert cache.get("fp") is None
        cache.put("fp", {"y": 1.0})
        assert cache.get("fp") == {"y": 1.0}
        stats = cache.stats.as_dict()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["persists"] == 1 and stats["loads"] == 1
        assert cache.discard("fp") is True
        assert cache.stats.invalidations == 1

    def test_string_spec_resolves_to_a_store(self, tmp_path):
        cache = EvalCache(store=str(tmp_path / "blobs"))
        cache.put("fp", {"y": 2.0})
        assert cache.store.name == "file"
        assert (tmp_path / "blobs" / "fp.json").exists()

    def test_max_entries_with_store_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            EvalCache(max_entries=5, store=FileStore(tmp_path))

    def test_shared_store_traffic_is_attributed_per_cache(self, tmp_path):
        # Two caches over one store: each CacheStats counts only its
        # own store operations, so per-study deltas stay clean; the
        # store's lifetime totals live on store.stats.
        store = SQLiteStore(tmp_path / "shared.sqlite")
        first = EvalCache(store=store)
        second = EvalCache(store=store)
        for i in range(5):
            first.put(f"fp{i}", {"y": float(i)})
        assert second.get("fp0") == {"y": 0.0}
        assert first.stats.persists == 5 and first.stats.loads == 0
        assert second.stats.persists == 0 and second.stats.loads == 1
        assert store.stats.persists == 5 and store.stats.loads == 1
        store.close()

    def test_engine_accepts_a_bare_store(self, tmp_path):
        engine = EvaluationEngine(
            _synthetic, cache=SQLiteStore(tmp_path / "c.sqlite")
        )
        point = {"a": 0.5, "b": 1.0}
        engine.map_points([point])
        engine.map_points([point])
        assert engine.points_evaluated == 1
        engine.close()  # engine owns the wrapped store
        # Entries survived on disk for the next process.
        fresh = SQLiteStore(tmp_path / "c.sqlite")
        assert len(fresh) == 1
        fresh.close()


class TestEngineAutoGC:
    """The cache_gc budget threaded through engine/explorer/toolkit."""

    def test_engine_enforces_budget_per_batch(self, tmp_path):
        engine = EvaluationEngine(
            _synthetic,
            cache=FileStore(tmp_path / "gc"),
            cache_gc=GCBudget(max_entries=3),
        )
        engine.map_points(
            [{"a": 0.1 * i, "b": 1.0} for i in range(8)]
        )
        assert len(engine.cache) == 3
        stats = engine.stats()
        assert stats["cache"]["gc_evictions"] == 5
        # Survivors still serve hits.
        second = engine.map_points(
            [{"a": 0.1 * i, "b": 1.0} for i in range(5, 8)]
        )
        assert all(e.cached for e in second)
        engine.close()

    def test_mapping_spec_and_delta_accounting(self, tmp_path):
        engine = EvaluationEngine(
            _synthetic,
            cache=SQLiteStore(tmp_path / "gc.sqlite"),
            cache_gc={"max_entries": 2, "policy": "oldest"},
        )
        snapshot = engine.stats_snapshot()
        engine.map_points([{"a": 0.1 * i, "b": 1.0} for i in range(6)])
        delta = engine.stats(since=snapshot)
        assert delta["cache"]["gc_evictions"] == 4
        # A second snapshot interval with no GC reports zero, not the
        # lifetime total.
        snapshot = engine.stats_snapshot()
        engine.map_points([{"a": 0.5, "b": 1.0}])
        assert engine.stats(since=snapshot)["cache"]["gc_evictions"] == 0
        engine.close()

    def test_budget_requires_a_cache(self):
        with pytest.raises(ReproError):
            EvaluationEngine(
                _synthetic, cache=False, cache_gc={"max_entries": 2}
            )

    def test_explorer_threads_cache_gc(self, tmp_path):
        explorer = DesignExplorer(
            _space(),
            _synthetic,
            ["y1", "y2"],
            cache_store=str(tmp_path / "evals"),
            cache_gc={"max_entries": 4},
        )
        explorer.run_design(latin_hypercube(10, 2, seed=7))
        assert len(explorer.engine.cache) == 4
        explorer.close()

    def test_explorer_cache_gc_requires_cache_store(self):
        with pytest.raises(DesignError):
            DesignExplorer(
                _space(),
                _synthetic,
                ["y1"],
                cache_gc={"max_entries": 4},
            )

    def test_toolkit_threads_cache_gc(self, tmp_path):
        clear_charging_cache()
        toolkit = _toolkit(
            cache_dir=tmp_path / "evals",
            cache_gc={"max_entries": 2},
        )
        toolkit.explorer.run_design(latin_hypercube(4, 2, seed=9))
        assert len(toolkit.exec_engine.cache) == 2
        lifetime = toolkit.exec_engine.stats()
        assert lifetime["cache"]["gc_evictions"] == 2
        toolkit.close()


class TestFingerprintKeyTagging:
    """Regression tests for the str(key) collision family."""

    def test_int_and_str_keys_differ(self):
        assert point_fingerprint({"a": 1.0}, {1: "x"}) != point_fingerprint(
            {"a": 1.0}, {"1": "x"}
        )

    def test_bool_int_and_str_keys_differ(self):
        fingerprints = {
            point_fingerprint({"a": 1.0}, context)
            for context in ({True: "x"}, {"True": "x"}, {1: "x"})
        }
        assert len(fingerprints) == 3

    def test_float_and_str_keys_differ(self):
        assert point_fingerprint({"a": 1.0}, {2.5: "x"}) != point_fingerprint(
            {"a": 1.0}, {"2.5": "x"}
        )

    def test_set_differs_from_list(self):
        assert point_fingerprint({"a": 1.0}, [1, 2]) != point_fingerprint(
            {"a": 1.0}, {1, 2}
        )

    def test_mixed_type_sets_are_order_stable_and_distinct(self):
        assert point_fingerprint({"a": 1.0}, {1, "1"}) == point_fingerprint(
            {"a": 1.0}, {"1", 1}
        )
        assert point_fingerprint({"a": 1.0}, {1, "1"}) != point_fingerprint(
            {"a": 1.0}, {1}
        )
        assert point_fingerprint({"a": 1.0}, {"1"}) != point_fingerprint(
            {"a": 1.0}, {1}
        )

    def test_numpy_scalars_normalize_to_python_scalars(self):
        # np.float64 subclasses float and its repr is numpy-version-
        # dependent ("np.float64(1.5)" on 2.x); persisted fingerprints
        # must match across hosts, so np scalars canonicalize as their
        # Python values — in keys, values and set elements alike.
        point = {"a": 1.0}
        assert point_fingerprint(
            point, {np.float64(2.5): "x"}
        ) == point_fingerprint(point, {2.5: "x"})
        assert point_fingerprint(
            point, {np.int64(2): "x"}
        ) == point_fingerprint(point, {2: "x"})
        assert point_fingerprint(
            point, {"v": np.float64(2.5)}
        ) == point_fingerprint(point, {"v": 2.5})
        assert point_fingerprint(
            point, {np.float64(2.5)}
        ) == point_fingerprint(point, {2.5})
        assert point_fingerprint(
            point, {"flag": np.bool_(True)}
        ) == point_fingerprint(point, {"flag": True})
        assert point_fingerprint(
            point, {np.bool_(True): "x"}
        ) == point_fingerprint(point, {True: "x"})
        assert point_fingerprint(
            point, {(1, np.float64(1.5)): "x"}
        ) == point_fingerprint(point, {(1, 1.5): "x"})

    def test_float_and_str_values_differ(self):
        point = {"a": 1.0}
        assert point_fingerprint(
            point, {"v": 1.5}
        ) != point_fingerprint(point, {"v": "1.5"})
        assert point_fingerprint(
            point, {"v": 1}
        ) != point_fingerprint(point, {"v": "1"})
        # A crafted string cannot forge a tagged float either.
        assert point_fingerprint(
            point, {"v": "f:1.5"}
        ) != point_fingerprint(point, {"v": 1.5})

    def test_tuple_key_elements_are_delimiter_safe(self):
        point = {"a": 1.0}
        assert point_fingerprint(
            point, {("a,s:b",): 1}
        ) != point_fingerprint(point, {("a", "b"): 1})

    def test_marker_keys_cannot_be_forged(self):
        # A real mapping key "__set__" canonicalizes tagged, so it can
        # never collide with the set marker.
        assert point_fingerprint(
            {"a": 1.0}, {"__set__": [1, 2]}
        ) != point_fingerprint({"a": 1.0}, {1, 2})


class TestPerStudyStatsDeltas:
    def test_second_run_reports_only_its_own_traffic(self):
        engine = EvaluationEngine(_synthetic, backend="serial", cache=True)
        explorer = DesignExplorer(
            _space(), _synthetic, ["y1", "y2"], engine=engine
        )
        design = latin_hypercube(8, 2, seed=3)
        first = explorer.run_design(design)
        second = explorer.run_design(design)
        assert first.exec_stats["points_evaluated"] == 8
        assert first.exec_stats["cache"]["misses"] == 8
        # The rerun is pure cache traffic — and reports exactly that,
        # not the cumulative totals of both runs.
        assert second.exec_stats["points_evaluated"] == 0
        assert second.exec_stats["batches_dispatched"] == 0
        assert second.exec_stats["cache"]["hits"] == 8
        assert second.exec_stats["cache"]["misses"] == 0
        assert second.exec_stats["cache"]["hit_rate"] == 1.0
        # Lifetime totals stay available on the engine itself.
        lifetime = engine.stats()
        assert lifetime["points_evaluated"] == 8
        assert lifetime["cache"]["hits"] == 8
        assert lifetime["cache"]["misses"] == 8

    def test_snapshot_delta_roundtrip(self):
        engine = EvaluationEngine(_synthetic, backend="serial", cache=True)
        engine.map_points([{"a": 0.1, "b": 1.0}])
        snapshot = engine.stats_snapshot()
        engine.map_points([{"a": 0.1, "b": 1.0}, {"a": 0.2, "b": 1.0}])
        delta = engine.stats(since=snapshot)
        assert delta["points_evaluated"] == 1
        assert delta["cache"]["hits"] == 1
        assert delta["cache"]["misses"] == 1
        assert delta["cache"]["hit_rate"] == pytest.approx(0.5)

    def test_uncached_engine_delta(self):
        engine = EvaluationEngine(_synthetic, backend="serial", cache=False)
        snapshot = engine.stats_snapshot()
        engine.map_points([{"a": 0.1, "b": 1.0}])
        delta = engine.stats(since=snapshot)
        assert delta["points_evaluated"] == 1
        assert delta["cache"] is None


SPACE_FACTORS = (
    ("capacitance", 0.10, 1.00),
    ("tx_interval", 2.0, 60.0),
)


def _toolkit_space():
    return DesignSpace(
        [
            Factor("capacitance", 0.10, 1.00, units="F"),
            Factor(
                "tx_interval", 2.0, 60.0, transform="log", units="s"
            ),
        ]
    )


def _toolkit(**kwargs) -> SensorNodeDesignToolkit:
    return SensorNodeDesignToolkit(
        space=_toolkit_space(),
        mission_time=120.0,
        envelope=FAST_ENVELOPE,
        **kwargs,
    )


class TestToolkitStoreWiring:
    def test_cache_dir_and_cache_store_are_exclusive(self, tmp_path):
        with pytest.raises(DesignError):
            _toolkit(
                cache_dir=tmp_path, cache_store=MemoryStore()
            )

    def test_store_with_cache_disabled_rejected(self, tmp_path):
        with pytest.raises(DesignError):
            _toolkit(cache=False, cache_dir=tmp_path)

    def test_two_toolkits_share_a_store_directory(self, tmp_path):
        clear_charging_cache()
        design = latin_hypercube(4, 2, seed=5)
        first = _toolkit(cache_dir=tmp_path / "evals")
        cold = first.explorer.run_design(design)
        assert cold.exec_stats["points_evaluated"] == design.n_runs
        # A different toolkit instance — fresh engine, fresh EvalCache,
        # same directory — answers the whole design from the store.
        second = _toolkit(cache_dir=tmp_path / "evals")
        warm = second.explorer.run_design(design)
        assert warm.exec_stats["points_evaluated"] == 0
        assert warm.exec_stats["cache"]["hit_rate"] == 1.0
        for name in first.responses:
            assert np.array_equal(
                cold.responses[name], warm.responses[name]
            ), name

    def test_close_ownership(self, tmp_path):
        # A store built from cache_dir belongs to the toolkit and is
        # closed with it; a ready cache_store instance stays open for
        # the other toolkits sharing it.
        owned = _toolkit(cache_dir=tmp_path / "owned.sqlite")
        owned_store = owned.exec_engine.cache.store
        owned.close()
        assert owned_store._closed is True
        shared_store = SQLiteStore(tmp_path / "shared.sqlite")
        sharer = _toolkit(cache_store=shared_store)
        sharer.close()
        assert shared_store._closed is False
        shared_store.close()

    def test_sqlite_cache_dir_spec(self, tmp_path):
        clear_charging_cache()
        design = latin_hypercube(3, 2, seed=6)
        path = tmp_path / "evals.sqlite"
        first = _toolkit(cache_dir=path)
        first.explorer.run_design(design)
        assert path.exists()
        second = _toolkit(cache_dir=path)
        warm = second.explorer.run_design(design)
        assert warm.exec_stats["points_evaluated"] == 0
        assert warm.exec_stats["store"]["store"] == "sqlite"


class TestCrossBackendBitIdentity:
    """Serial, serial-batched, process and store-backed engines must
    agree bit-for-bit on one design."""

    def test_all_engine_flavours_agree(self, tmp_path):
        clear_charging_cache()
        design = latin_hypercube(4, 2, seed=13)
        # Serial batched (the toolkit default: shared harvester in
        # evaluate_points_timed) — run first so every later
        # configuration interpolates the same warm charging maps.
        batched_toolkit = _toolkit(cache=False)
        batched = batched_toolkit.explorer.run_design(design)

        # The shared TunableHarvester must carry no mutable
        # cross-mission state: its canonical form (recursed __dict__)
        # is identical before and after another full design run.
        harvester = batched_toolkit._shared_harvester
        assert harvester is not None
        shape_before = point_fingerprint({}, harvester)
        batched_again = batched_toolkit.explorer.run_design(design)
        assert point_fingerprint({}, harvester) == shape_before
        for name in batched_toolkit.responses:
            assert np.array_equal(
                batched.responses[name], batched_again.responses[name]
            ), name

        # Serial per-point (no batch amortization, fresh harvester
        # per point).
        perpoint_toolkit = _toolkit(cache=False)
        perpoint = DesignExplorer(
            perpoint_toolkit.space,
            perpoint_toolkit.evaluate_point,
            perpoint_toolkit.responses,
            engine=EvaluationEngine(
                perpoint_toolkit.evaluate_point,
                backend="serial",
                cache=False,
            ),
        ).run_design(design)

        # Process fan-out.
        process_toolkit = _toolkit(
            backend="process", workers=2, cache=False
        )
        process = process_toolkit.explorer.run_design(design)

        # Store-backed: cold through a FileStore, then warm from a
        # fresh toolkit reading the same directory.
        store_toolkit = _toolkit(cache_dir=tmp_path / "evals")
        store_cold = store_toolkit.explorer.run_design(design)
        store_warm_toolkit = _toolkit(cache_dir=tmp_path / "evals")
        store_warm = store_warm_toolkit.explorer.run_design(design)
        assert store_warm.exec_stats["points_evaluated"] == 0

        for name in batched_toolkit.responses:
            reference = perpoint.responses[name]
            for label, result in (
                ("serial-batched", batched),
                ("process", process),
                ("store-cold", store_cold),
                ("store-warm", store_warm),
            ):
                assert np.array_equal(
                    reference, result.responses[name]
                ), f"{label} diverged on {name}"


WARM_START_SCRIPT = textwrap.dedent(
    """
    import json, math, sys

    from repro.exec import EvalCache, EvaluationEngine

    def evaluate(point):
        a = point["a"]
        b = point["b"]
        return {
            "y1": math.sin(a) * b + a * a,
            "y2": math.exp(-abs(b)) + 3.0 * a,
        }

    engine = EvaluationEngine(
        evaluate,
        cache=EvalCache(store=sys.argv[1]),
        context={"mission": 120.0, "schema": {1: "tagged"}},
    )
    points = [
        {"a": 0.1 * i, "b": 1.0 + 0.5 * i} for i in range(6)
    ]
    evaluations = engine.map_points(points)
    print(
        json.dumps(
            {
                "points_evaluated": engine.points_evaluated,
                "hit_rate": engine.cache.stats.hit_rate,
                "responses": [e.responses for e in evaluations],
            }
        )
    )
    engine.close()
    """
)


def _run_warm_start(store_spec, tmp_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    script = tmp_path / "warm_start_probe.py"
    script.write_text(WARM_START_SCRIPT, encoding="utf-8")
    out = subprocess.run(
        [sys.executable, str(script), str(store_spec)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


class TestFreshProcessWarmStart:
    """The acceptance property: persist in one process, re-run in
    another, simulate nothing."""

    @pytest.mark.parametrize("spec", ["blobs", "evals.sqlite"])
    def test_second_process_evaluates_zero_points(self, tmp_path, spec):
        store_spec = tmp_path / spec
        cold = _run_warm_start(store_spec, tmp_path)
        warm = _run_warm_start(store_spec, tmp_path)
        assert cold["points_evaluated"] == 6
        assert warm["points_evaluated"] == 0
        assert warm["hit_rate"] == 1.0
        assert warm["responses"] == cold["responses"]
