"""Fingerprint stability: frozen canonical hashes for real shapes.

Persistent stores index evaluations by ``point_fingerprint``.  An
accidental change to the canonicalization — a reordered tag, a float
repr tweak, a new field leaking into an attribute bag — would
silently *orphan every persisted cache in every deployment*: nothing
breaks, every lookup just misses, and whole study archives
re-simulate from scratch.  This suite freezes the fingerprints of a
representative case set in a checked-in fixture so that change fails
loudly instead.

If a failure here is *intentional* (the canonicalization or a
fingerprinted structure legitimately changed), bump
``repro.exec.store.SCHEMA_VERSION`` so old stores invalidate cleanly,
then regenerate the fixture::

    PYTHONPATH=src python tests/test_fingerprint_golden.py --regen
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.exec import point_fingerprint
from repro.sim.envelope import EnvelopeOptions

GOLDEN_PATH = Path(__file__).parent / "data" / "fingerprint_golden.json"


class GoldenOptions:
    """Stable attribute-bag stand-in for option objects (vibration
    sources, engine options) that canonicalize via ``__dict__``."""

    def __init__(self):
        self.alpha = 0.5
        self.mode = "fast"
        self.flags = (True, False)


def golden_cases() -> dict:
    """Name -> (point, context) pairs spanning the canonical forms."""
    return {
        "plain_point": ({"a": 1.0, "b": 2.5}, None),
        "float_bit_patterns": (
            {
                "tiny": 5e-324,
                "third": 1.0 / 3.0,
                "neg_zero": -0.0,
                "big": 1.7976931348623157e308,
            },
            None,
        ),
        "int_vs_str_keys": ({"a": 1.0}, {1: "x", "1": "y"}),
        "bool_key": ({"a": 1.0}, {True: "x"}),
        "float_key": ({"a": 1.0}, {2.5: "x"}),
        "tuple_key": ({"a": 1.0}, {(1, "b", 2.5): "x"}),
        "numpy_scalars": (
            {"a": 1.0},
            {
                "f": np.float64(2.5),
                "i": np.int64(3),
                "flag": np.bool_(True),
            },
        ),
        "numpy_array": ({"a": 1.0}, np.array([1.0, 2.5, -3.0])),
        "nested_containers": (
            {"a": 1.0},
            {"outer": [{"inner": (1, 2)}, [3.5, "s"]]},
        ),
        "set_vs_list": ({"a": 1.0}, {"s": {1, 2}, "l": [1, 2]}),
        "attribute_bag": ({"a": 1.0}, GoldenOptions()),
        "toolkit_like_context": (
            {"capacitance": 0.55, "tx_interval": 8.0},
            {
                "schema": "toolkit-eval-v1",
                "mission_time": 1800.0,
                "engine": "envelope",
                "envelope": None,
                "vibration": None,
                "system_kwargs": {},
                "responses": [
                    "average_harvested_power",
                    "effective_data_rate",
                ],
            },
        ),
        "envelope_options": (
            {"capacitance": 0.55},
            EnvelopeOptions(),
        ),
        "string_float_distinction": (
            {"a": 1.0},
            {"v": "1.5", "w": 1.5, "x": "f:1.5"},
        ),
    }


def compute_fingerprints() -> dict[str, str]:
    return {
        name: point_fingerprint(point, context)
        for name, (point, context) in golden_cases().items()
    }


def test_fixture_exists_and_covers_every_case():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert sorted(golden) == sorted(golden_cases())


@pytest.mark.parametrize("name", sorted(golden_cases()))
def test_fingerprint_matches_golden(name):
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    point, context = golden_cases()[name]
    actual = point_fingerprint(point, context)
    assert actual == golden[name], (
        f"canonical fingerprint for {name!r} changed — this silently "
        f"orphans every persisted evaluation cache.  If intentional, "
        f"bump SCHEMA_VERSION and regenerate the fixture (see module "
        f"docstring)."
    )


def test_fingerprints_are_distinct():
    values = list(compute_fingerprints().values())
    assert len(set(values)) == len(values)


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(compute_fingerprints(), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote {GOLDEN_PATH}")
    else:
        print("run with --regen to rewrite the fixture", file=sys.stderr)
        sys.exit(2)
