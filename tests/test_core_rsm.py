"""RSM: terms, fitting, ANOVA, surface analysis, stepwise, CV."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.doe import central_composite, latin_hypercube, two_level_factorial
from repro.core.rsm import (
    ModelSpec,
    Term,
    anova_table,
    backward_eliminate,
    fit_response_surface,
    kfold_rmse,
    loo_residuals,
    press,
)
from repro.errors import FitError


class TestTerm:
    def test_intercept(self):
        t = Term((0, 0))
        assert t.is_intercept and t.order == 0
        assert np.allclose(t.evaluate(np.zeros((3, 2))), 1.0)

    def test_evaluate_monomial(self):
        t = Term((1, 2))
        x = np.array([[2.0, 3.0]])
        assert t.evaluate(x)[0] == pytest.approx(2.0 * 9.0)

    def test_derivative(self):
        coef, reduced = Term((1, 2)).derivative(1)
        assert coef == 2.0
        assert reduced.powers == (1, 1)

    def test_derivative_of_absent_factor(self):
        coef, _ = Term((1, 0)).derivative(1)
        assert coef == 0.0

    def test_names(self):
        assert Term((1, 0, 2)).name() == "x1*x3^2"
        assert Term((0, 0, 0)).name() == "1"
        assert Term((1, 1, 0)).name(["A", "B", "C"]) == "A*B"

    def test_parents(self):
        parents = {p.powers for p in Term((1, 1)).parents()}
        assert parents == {(0, 1), (1, 0)}
        assert Term((2, 0)).parents()[0].powers == (1, 0)

    def test_validation(self):
        with pytest.raises(FitError):
            Term(())
        with pytest.raises(FitError):
            Term((-1, 0))


class TestModelSpec:
    def test_term_counts(self):
        assert ModelSpec.linear(4).p == 5
        assert ModelSpec.interaction(4).p == 5 + 6
        assert ModelSpec.quadratic(4).p == 5 + 6 + 4
        assert ModelSpec.cubic(3).p == 10 + 3

    def test_build_matrix_shape(self):
        spec = ModelSpec.quadratic(3)
        x = np.random.default_rng(0).uniform(-1, 1, (7, 3))
        assert spec.build_matrix(x).shape == (7, spec.p)

    def test_intercept_column_first(self):
        spec = ModelSpec.linear(2)
        x = np.array([[0.5, -0.5]])
        assert spec.build_matrix(x)[0, 0] == 1.0

    def test_without(self):
        spec = ModelSpec.linear(2)
        reduced = spec.without(spec.terms[1])
        assert reduced.p == 2

    def test_children_of(self):
        spec = ModelSpec.quadratic(2)
        main = spec.terms[1]  # x1
        children = {t.powers for t in spec.children_of(main)}
        assert (1, 1) in children and (2, 0) in children

    def test_duplicate_terms_rejected(self):
        with pytest.raises(FitError):
            ModelSpec([Term((0, 0)), Term((0, 0))])

    def test_mixed_k_rejected(self):
        with pytest.raises(FitError):
            ModelSpec([Term((0, 0)), Term((1,))])


class TestFitRecovery:
    """OLS must recover known polynomial coefficients."""

    def _make_data(self, noise=0.0, n=40, seed=0):
        rng = np.random.default_rng(seed)
        x = latin_hypercube(n, 2, seed=seed).matrix
        y = (
            1.0
            + 2.0 * x[:, 0]
            - 3.0 * x[:, 1]
            + 0.5 * x[:, 0] * x[:, 1]
            - 1.5 * x[:, 1] ** 2
        )
        return x, y + rng.normal(0.0, noise, n)

    def test_exact_recovery_noise_free(self):
        x, y = self._make_data()
        surf = fit_response_surface(x, y, ModelSpec.quadratic(2))
        expected = {
            "1": 1.0,
            "x1": 2.0,
            "x2": -3.0,
            "x1*x2": 0.5,
            "x1^2": 0.0,
            "x2^2": -1.5,
        }
        for name, coef, *_ in surf.coefficient_table():
            assert coef == pytest.approx(expected[name], abs=1e-9)
        assert surf.stats.r_squared == pytest.approx(1.0)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5))
    def test_linear_recovery_property(self, b0, b1, b2):
        x = latin_hypercube(20, 2, seed=7).matrix
        y = b0 + b1 * x[:, 0] + b2 * x[:, 1]
        surf = fit_response_surface(x, y, ModelSpec.linear(2))
        assert surf.coefficients == pytest.approx([b0, b1, b2], abs=1e-8)

    def test_noisy_fit_significant_terms(self):
        x, y = self._make_data(noise=0.05, n=60)
        surf = fit_response_surface(x, y, ModelSpec.quadratic(2))
        table = {row[0]: row for row in surf.coefficient_table()}
        # Strong terms highly significant, null term not.
        assert table["x1"][4] < 1e-6
        assert table["x1^2"][4] > 0.01

    def test_underdetermined_rejected(self):
        x = latin_hypercube(4, 2, seed=1).matrix
        with pytest.raises(FitError):
            fit_response_surface(x, np.zeros(4), ModelSpec.quadratic(2))

    def test_aliased_design_rejected(self):
        # A 2-level factorial cannot identify pure quadratics.
        x = two_level_factorial(2).replicated(3).matrix
        with pytest.raises(FitError, match="rank"):
            fit_response_surface(x, np.zeros(12), ModelSpec.quadratic(2))

    def test_nonfinite_rejected(self):
        x = latin_hypercube(10, 2, seed=2).matrix
        y = np.zeros(10)
        y[3] = np.nan
        with pytest.raises(FitError):
            fit_response_surface(x, y, ModelSpec.linear(2))

    def test_saturated_fit_has_nan_inference(self):
        x = latin_hypercube(3, 2, seed=3).matrix
        y = np.array([1.0, 2.0, 3.0])
        surf = fit_response_surface(x, y, ModelSpec.linear(2))
        assert np.all(np.isnan(surf.stats.p_values))


class TestAnova:
    def _fit(self, noise=0.02):
        rng = np.random.default_rng(5)
        design = central_composite(2, n_center=5)
        x = design.matrix
        y = 1 + 2 * x[:, 0] + x[:, 1] ** 2 + rng.normal(0, noise, x.shape[0])
        return fit_response_surface(x, y, ModelSpec.quadratic(2))

    def test_ss_identity(self):
        table = anova_table(self._fit())
        assert table.row("total").sum_squares == pytest.approx(
            table.row("model").sum_squares + table.row("residual").sum_squares
        )

    def test_lof_plus_pure_error(self):
        table = anova_table(self._fit())
        assert table.row("residual").sum_squares == pytest.approx(
            table.row("lack-of-fit").sum_squares
            + table.row("pure-error").sum_squares
        )

    def test_dof_identity(self):
        table = anova_table(self._fit())
        assert (
            table.row("model").dof + table.row("residual").dof
            == table.row("total").dof
        )

    def test_model_significant(self):
        table = anova_table(self._fit())
        assert table.row("model").p_value < 1e-6

    def test_adequate_model_lof_insignificant(self):
        # Quadratic data fitted with a quadratic model: LoF ~ noise.
        table = anova_table(self._fit())
        lof = table.row("lack-of-fit")
        assert lof.p_value > 0.01 or np.isnan(lof.p_value)

    def test_inadequate_model_flagged(self):
        rng = np.random.default_rng(6)
        design = central_composite(2, n_center=5)
        x = design.matrix
        # Strong pure cubic: a quadratic model must show lack of fit.
        y = 5 * x[:, 0] ** 3 + rng.normal(0, 0.01, x.shape[0])
        surf = fit_response_surface(x, y, ModelSpec.quadratic(2))
        table = anova_table(surf)
        assert table.row("lack-of-fit").p_value < 0.01

    def test_format_renders(self):
        text = anova_table(self._fit()).format()
        assert "lack-of-fit" in text and "pure-error" in text

    def test_unknown_row_rejected(self):
        with pytest.raises(FitError):
            anova_table(self._fit()).row("bogus")


class TestSurfaceAnalysis:
    def _paraboloid(self, sign=-1.0):
        # y = 3 + sign*(x1-0.2)^2 + sign*2*(x2+0.1)^2.
        x = latin_hypercube(30, 2, seed=8).matrix
        y = (
            3.0
            + sign * (x[:, 0] - 0.2) ** 2
            + sign * 2.0 * (x[:, 1] + 0.1) ** 2
        )
        return fit_response_surface(x, y, ModelSpec.quadratic(2))

    def test_gradient_matches_numeric(self):
        surf = self._paraboloid()
        x0 = np.array([0.3, -0.4])
        eps = 1e-6
        for j in range(2):
            dx = np.zeros(2)
            dx[j] = eps
            numeric = (
                surf.predict_one(x0 + dx) - surf.predict_one(x0 - dx)
            ) / (2 * eps)
            assert surf.gradient(x0)[j] == pytest.approx(numeric, abs=1e-5)

    def test_stationary_point_location(self):
        surf = self._paraboloid()
        xs = surf.stationary_point()
        assert xs == pytest.approx([0.2, -0.1], abs=1e-6)

    def test_maximum_classified(self):
        ca = self._paraboloid(sign=-1.0).canonical_analysis()
        assert ca.nature == "maximum"
        assert ca.inside_region
        assert ca.stationary_value == pytest.approx(3.0, abs=1e-9)

    def test_minimum_classified(self):
        assert self._paraboloid(sign=+1.0).canonical_analysis().nature == "minimum"

    def test_saddle_classified(self):
        x = latin_hypercube(30, 2, seed=9).matrix
        y = x[:, 0] ** 2 - x[:, 1] ** 2
        surf = fit_response_surface(x, y, ModelSpec.quadratic(2))
        assert surf.canonical_analysis().nature == "saddle"

    def test_steepest_ascent_improves(self):
        surf = self._paraboloid(sign=-1.0)
        path = surf.steepest_ascent_path(step=0.05, n_points=8)
        values = [surf.predict_one(p) for p in path]
        assert values[-1] > values[0]

    def test_cubic_rejects_canonical(self):
        x = latin_hypercube(30, 2, seed=10).matrix
        y = x[:, 0] ** 3
        surf = fit_response_surface(x, y, ModelSpec.cubic(2))
        with pytest.raises(FitError):
            surf.canonical_analysis()

    def test_summary_renders(self):
        assert "R2" in self._paraboloid().summary()


class TestStepwise:
    def test_drops_null_terms(self):
        rng = np.random.default_rng(11)
        x = latin_hypercube(50, 3, seed=11).matrix
        y = 2 + 3 * x[:, 0] + rng.normal(0, 0.05, 50)
        surf = backward_eliminate(x, y, ModelSpec.quadratic(3), alpha=0.05)
        names = surf.model.term_names()
        assert "x1" in names
        assert len(names) < ModelSpec.quadratic(3).p

    def test_hierarchy_keeps_parents(self):
        x = latin_hypercube(50, 2, seed=12).matrix
        # Pure interaction effect: x1, x2 mains are null but must be
        # kept while x1*x2 stays.
        y = 4.0 * x[:, 0] * x[:, 1]
        surf = backward_eliminate(x, y, ModelSpec.quadratic(2), alpha=0.05)
        names = surf.model.term_names()
        assert "x1*x2" in names
        assert "x1" in names and "x2" in names

    def test_alpha_validation(self):
        x = latin_hypercube(20, 2, seed=13).matrix
        with pytest.raises(FitError):
            backward_eliminate(x, np.zeros(20), ModelSpec.linear(2), alpha=1.5)


class TestCrossValidation:
    def _surface(self, noise=0.1):
        rng = np.random.default_rng(14)
        x = latin_hypercube(30, 2, seed=14).matrix
        y = 1 + x[:, 0] - 2 * x[:, 1] + rng.normal(0, noise, 30)
        return x, y, fit_response_surface(x, y, ModelSpec.linear(2))

    def test_press_at_least_sse(self):
        _, _, surf = self._surface()
        assert press(surf) >= surf.stats.sse

    def test_press_matches_stats(self):
        _, _, surf = self._surface()
        assert press(surf) == pytest.approx(surf.stats.press)

    def test_loo_residuals_exceed_plain(self):
        _, _, surf = self._surface()
        plain = surf.y_train - surf.predict(surf.x_train)
        loo = loo_residuals(surf)
        assert np.all(np.abs(loo) >= np.abs(plain) - 1e-12)

    def test_kfold_rmse_reasonable(self):
        x, y, surf = self._surface(noise=0.1)
        rmse = kfold_rmse(x, y, ModelSpec.linear(2), n_folds=5, seed=1)
        assert 0.03 < rmse < 0.4

    def test_kfold_validation(self):
        x, y, _ = self._surface()
        with pytest.raises(FitError):
            kfold_rmse(x, y, ModelSpec.linear(2), n_folds=1)
