"""Evaluator factories for ``repro-worker`` tests.

The worker CLI loads its evaluator from a ``module:factory`` spec, so
these live in an importable module (worker subprocesses get this
directory on ``PYTHONPATH``).  Factories take no arguments, mirroring
how a real deployment constructs a toolkit inside the worker process.
"""

import math
import time


def _synthetic(point):
    a = point["a"]
    b = point["b"]
    return {
        "y1": math.sin(a) * b + a * a,
        "y2": math.exp(-abs(b)) + 3.0 * a,
    }


def make_synthetic():
    """A plain point evaluator."""
    return _synthetic


def make_broken():
    """An evaluator that always fails."""

    def broken(point):
        raise ValueError("synthetic failure")

    return broken


def make_slow():
    """An evaluator slow enough to be killed mid-lease."""

    def slow(point):
        time.sleep(30.0)
        return _synthetic(point)

    return slow


class _BatchedEvaluator:
    """Toolkit-shaped object: exposes the batched serial path."""

    def evaluate_point(self, point):
        return _synthetic(point)

    def evaluate_points_timed(self, points):
        out = []
        for point in points:
            started = time.perf_counter()
            responses = self.evaluate_point(point)
            out.append((responses, time.perf_counter() - started))
        return out


def make_batched():
    """A toolkit-like object driving the batched serial path."""
    return _BatchedEvaluator()
