"""REP106 contract-coverage rule: the static/dynamic agreement test.

The meta-test the rule exists for: build a miniature project with a
store ABC, concrete implementations and a contract suite binding,
then *deliberately unregister* one binding and assert the rule fires
— proving the static cross-reference agrees with what the test tree
actually pins.
"""

import textwrap

import pytest

from repro.lint import lint_paths


STORE_MODULE = textwrap.dedent(
    """\
    from abc import ABC, abstractmethod


    class CacheStore(ABC):
        @abstractmethod
        def load(self, fingerprint):
            ...


    class MemoryStore(CacheStore):
        def load(self, fingerprint):
            return None


    class ShinyStore(MemoryStore):
        def load(self, fingerprint):
            return {}


    class _InternalStore(CacheStore):
        def load(self, fingerprint):
            return None
    """
)

CONTRACT_MODULE = textwrap.dedent(
    """\
    from repro.exec.store import MemoryStore, ShinyStore


    class TestMemoryStoreContract:
        def make_store(self):
            return MemoryStore()


    class TestShinyStoreContract:
        def make_store(self):
            return ShinyStore()
    """
)


def build_project(tmp_path, contract_text=CONTRACT_MODULE):
    src = tmp_path / "src" / "repro" / "exec"
    src.mkdir(parents=True)
    (src / "store.py").write_text(STORE_MODULE)
    tests = tmp_path / "tests"
    tests.mkdir()
    (tests / "test_store_contract.py").write_text(contract_text)
    return tmp_path


class TestContractCoverage:
    def test_bound_implementations_pass(self, tmp_path):
        project = build_project(tmp_path)
        result = lint_paths(
            [project / "src"],
            tests_dir=project / "tests",
            root=project,
        )
        assert result.clean, [f.render() for f in result.findings]

    def test_unregistered_binding_fires(self, tmp_path):
        # Deliberately unregister ShinyStore from the contract suite:
        # the rule must notice the coverage hole statically.
        severed = CONTRACT_MODULE.replace("ShinyStore", "MemoryStore")
        project = build_project(tmp_path, contract_text=severed)
        result = lint_paths(
            [project / "src"],
            tests_dir=project / "tests",
            root=project,
        )
        assert [f.rule for f in result.findings] == ["REP106"]
        finding = result.findings[0]
        assert "ShinyStore" in finding.message
        assert finding.path.endswith("repro/exec/store.py")

    def test_abstract_and_private_classes_exempt(self, tmp_path):
        # CacheStore (abstract) and _InternalStore (private) are never
        # required to appear in the suite: only ShinyStore/MemoryStore
        # are tracked, and both are bound.
        project = build_project(tmp_path)
        result = lint_paths(
            [project / "src"],
            tests_dir=project / "tests",
            root=project,
        )
        assert result.clean

    def test_missing_tests_dir_skips_rule(self, tmp_path):
        project = build_project(tmp_path)
        result = lint_paths(
            [project / "src"],
            tests_dir=project / "nonexistent-tests",
            root=project,
        )
        assert result.clean

    def test_missing_contract_module_is_named_in_finding(
        self, tmp_path
    ):
        project = build_project(tmp_path)
        (project / "tests" / "test_store_contract.py").unlink()
        result = lint_paths(
            [project / "src"],
            tests_dir=project / "tests",
            root=project,
        )
        rules = {f.rule for f in result.findings}
        assert rules == {"REP106"}
        assert any(
            "not found" in f.message for f in result.findings
        )

    def test_waiver_at_class_definition_honored(self, tmp_path):
        severed = CONTRACT_MODULE.replace("ShinyStore", "MemoryStore")
        project = build_project(tmp_path, contract_text=severed)
        store = project / "src" / "repro" / "exec" / "store.py"
        text = store.read_text().replace(
            "class ShinyStore(MemoryStore):",
            "# repro-lint: allow[REP106] experimental store, contract "
            "binding lands with the follow-up PR\n"
            "class ShinyStore(MemoryStore):",
        )
        store.write_text(text)
        result = lint_paths(
            [project / "src"],
            tests_dir=project / "tests",
            root=project,
        )
        assert result.clean
        assert result.waived == 1
