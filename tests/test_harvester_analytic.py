"""Closed-form steady-state solutions and their identities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.harvester import analytic
from repro.harvester.parameters import MicrogeneratorParameters, default_parameters


class TestPowerBalance:
    def test_identity_at_default(self):
        p = default_parameters()
        balance = analytic.power_balance(p, 0.6, 64.0, 5000.0)
        assert balance["input"] == pytest.approx(
            balance["load"] + balance["coil_loss"] + balance["parasitic"]
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(0.1, 2.0),
        st.floats(30.0, 120.0),
        st.floats(10.0, 1e6),
    )
    def test_identity_property(self, amp, freq, load):
        p = default_parameters()
        balance = analytic.power_balance(p, amp, freq, load)
        total = balance["load"] + balance["coil_loss"] + balance["parasitic"]
        assert balance["input"] == pytest.approx(total, rel=1e-9)
        assert all(v >= 0.0 for v in balance.values())


class TestResonance:
    def test_peak_power_near_resonance(self):
        p = default_parameters()
        freqs = np.linspace(55.0, 75.0, 400)
        powers = analytic.power_vs_frequency(p, 0.6, freqs, 5000.0)
        peak = freqs[np.argmax(powers)]
        assert peak == pytest.approx(p.natural_frequency, abs=0.5)

    def test_tuned_resonance_moves_peak(self):
        p = default_parameters()
        freqs = np.linspace(60.0, 85.0, 600)
        powers = analytic.power_vs_frequency(p, 0.6, freqs, 5000.0, resonance=75.0)
        peak = freqs[np.argmax(powers)]
        assert peak == pytest.approx(75.0, abs=0.5)

    def test_off_resonance_much_weaker_lightly_loaded(self):
        # With a light load the bandwidth is parasitic-limited (~1 Hz
        # at Q=62), so 6 Hz off resonance loses well over 10x.
        p = default_parameters()
        at_res = analytic.load_power(p, 0.6, 64.0, 1.0e6)
        off = analytic.load_power(p, 0.6, 70.0, 1.0e6)
        assert off < 0.1 * at_res

    def test_heavy_load_widens_response(self):
        # The corollary: a heavily loaded harvester keeps a larger
        # fraction of its power off resonance than a light one.
        p = default_parameters()
        heavy_ratio = analytic.load_power(p, 0.6, 70.0, 5.0e3) / (
            analytic.load_power(p, 0.6, 64.0, 5.0e3)
        )
        light_ratio = analytic.load_power(p, 0.6, 70.0, 1.0e6) / (
            analytic.load_power(p, 0.6, 64.0, 1.0e6)
        )
        assert heavy_ratio > light_ratio


class TestOptimalLoad:
    def test_optimum_beats_neighbors(self):
        p = default_parameters()
        r_opt = analytic.optimal_load_resistance(p, 0.6, 64.0)
        best = analytic.load_power(p, 0.6, 64.0, r_opt)
        assert best >= analytic.load_power(p, 0.6, 64.0, r_opt * 2)
        assert best >= analytic.load_power(p, 0.6, 64.0, r_opt / 2)

    def test_below_theoretical_bound(self):
        p = default_parameters()
        r_opt = analytic.optimal_load_resistance(p, 0.6, 64.0)
        best = analytic.load_power(p, 0.6, 64.0, r_opt)
        assert best <= analytic.max_power_bound(p, 0.6)

    def test_bound_scales_with_amplitude_squared(self):
        p = default_parameters()
        assert analytic.max_power_bound(p, 1.0) == pytest.approx(
            4 * analytic.max_power_bound(p, 0.5)
        )


class TestDisplacement:
    def test_open_circuit_amplitude(self):
        # At resonance with negligible electrical damping:
        # Z = A / (2 zeta w_n^2).
        p = default_parameters()
        z = analytic.displacement_amplitude(p, 0.6, 64.0, 1e9)
        expected = 0.6 / (2 * p.damping_ratio * p.angular_frequency**2)
        assert z == pytest.approx(expected, rel=0.01)

    def test_loaded_amplitude_smaller(self):
        p = default_parameters()
        open_c = analytic.displacement_amplitude(p, 0.6, 64.0, 1e9)
        loaded = analytic.displacement_amplitude(p, 0.6, 64.0, 1000.0)
        assert loaded < open_c

    def test_short_circuit_damps_most(self):
        p = default_parameters()
        short = analytic.displacement_amplitude(p, 0.6, 64.0, 0.0)
        loaded = analytic.displacement_amplitude(p, 0.6, 64.0, 10000.0)
        assert short < loaded


class TestBandwidth:
    def test_half_power_bandwidth_reasonable(self):
        # Parasitic-only bandwidth is f/Q; the loaded value must exceed it.
        p = default_parameters()
        bw = analytic.half_power_bandwidth(p, 0.6, 5000.0)
        assert bw >= p.natural_frequency / p.quality_factor * 0.9
        assert bw < 20.0

    def test_heavier_damping_widens(self):
        p = default_parameters()
        heavy = p.replace(damping_ratio=0.05)
        assert analytic.half_power_bandwidth(
            heavy, 0.6, 5000.0
        ) > analytic.half_power_bandwidth(p, 0.6, 5000.0)


class TestValidation:
    def test_rejects_negative_amplitude(self):
        with pytest.raises(ModelError):
            analytic.load_power(default_parameters(), -1.0, 64.0, 100.0)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ModelError):
            analytic.load_power(default_parameters(), 1.0, 0.0, 100.0)

    def test_rejects_negative_load(self):
        with pytest.raises(ModelError):
            analytic.load_power(default_parameters(), 1.0, 64.0, -5.0)

    def test_rejects_bad_resonance(self):
        with pytest.raises(ModelError):
            analytic.displacement_amplitude(
                default_parameters(), 1.0, 64.0, 100.0, resonance=-3.0
            )
