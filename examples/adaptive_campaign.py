"""Adaptive campaign vs one-shot study: same optimum, fewer missions.

The classic flow spends its whole simulation budget up front — a CCD,
a validation LHS, one fit, one grid optimization.  The adaptive
campaign spends *sequentially*: fit the current response surface,
cross-validate it, let an acquisition strategy pick the next batch
(zoom toward the optimum, infill where the model is weak, walk out of
the box when the optimum is outside), and stop as soon as the optimum
stabilises.  This example runs both flows over the supercapacitance x
reporting-interval plane of the canonical node, optimizing the
standard desirability (fast reporting, no downtime, healthy store),
and prints the budget comparison.

Point the campaign at a cache directory (``cache_dir=``) and its
state is journaled durably beside the evaluations: a killed run
resumes with ``toolkit.run_campaign(..., resume=True)`` — or, from
the shell, ``repro-campaign resume <store> --evaluator ...`` — with
zero evaluations lost or repeated.

Run:  python examples/adaptive_campaign.py
"""

from repro.core.factors import DesignSpace, Factor
from repro.core.toolkit import (
    SensorNodeDesignToolkit,
    standard_desirability,
)
from repro.sim.envelope import EnvelopeOptions

#: Reduced map budget so the example stays in minutes on a laptop.
FAST_ENVELOPE = EnvelopeOptions(
    map_v_points=4,
    map_nr_warmup_cycles=4,
    map_warmup_cycles=8,
    map_measure_cycles=6,
    map_max_blocks=3,
    map_steps_per_period=80,
)

MISSION_TIME = 300.0


def make_toolkit() -> SensorNodeDesignToolkit:
    space = DesignSpace(
        [
            Factor("capacitance", 0.10, 1.00, units="F"),
            Factor("tx_interval", 2.0, 60.0, transform="log", units="s"),
        ]
    )
    return SensorNodeDesignToolkit(
        space=space, mission_time=MISSION_TIME, envelope=FAST_ENVELOPE
    )


def main() -> None:
    desirability = standard_desirability()

    print("== one-shot flow: CCD + validation + grid optimum ==")
    oneshot = make_toolkit()
    study = oneshot.run_study(design="ccd", validate_points=10)
    outcome, point = study.optimize(desirability)
    oneshot_evals = study.meta["exec"]["points_evaluated"]
    print(f"simulated missions: {oneshot_evals}")
    print(f"optimum: {point}")
    print(f"desirability there (predicted): {outcome.value:.4f}")
    print()

    print("== adaptive campaign: fit -> diagnose -> acquire rounds ==")
    adaptive = make_toolkit()
    result = adaptive.run_campaign(
        objective=desirability,
        config={
            "max_rounds": 6,
            "batch": 4,
            "initial_design": "lhs",
            "initial_runs": 8,
            "seed": 17,
            "optimum_tol": 0.1,
            "cv_floor": 0.08,
        },
    )
    print(result.report())
    print()

    campaign_evals = result.evaluations["simulated"]
    saved = oneshot_evals - campaign_evals
    print("== comparison ==")
    print(
        f"one-shot: {oneshot_evals} missions; campaign: "
        f"{campaign_evals} missions ({saved} saved, "
        f"{campaign_evals / oneshot_evals:.0%} of the one-shot budget)"
    )
    print(
        f"one-shot optimum D={outcome.value:.4f} at {point}; campaign "
        f"optimum D={result.best['value']:.4f} at {result.best['point']}"
    )

    oneshot.close()
    adaptive.close()


if __name__ == "__main__":
    main()
