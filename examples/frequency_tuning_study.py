"""Why tune? Harvested power across the ambient-frequency band.

Sweeps the excitation frequency over 60-82 Hz and compares:

* the *untuned* harvester (resonance parked at 64 Hz),
* the *tuned* harvester (magnet gap re-set for each frequency), and
* the analytic theory curves for both.

Then simulates a drifting-machine mission with and without the tuning
controller to show the energy the controller actually recovers.

Run:  python examples/frequency_tuning_study.py
"""

import numpy as np

from repro import MissionConfig, default_system, simulate
from repro.analysis.ascii_plot import ascii_line_plot
from repro.harvester import analytic
from repro.sim.envelope import ChargingMap, EnvelopeOptions
from repro.vibration.profiles import machine_room_profile


def sweep_charging_current() -> None:
    """Average store-charging current vs excitation frequency."""
    config = default_system()
    cmap = ChargingMap(config, EnvelopeOptions())
    freqs = np.arange(60.0, 82.01, 1.0)
    v_store = 2.6
    untuned_gap = config.harvester.default_gap()  # resonance at ~64 Hz
    tuned, untuned = [], []
    for f in freqs:
        tuned_gap = config.harvester.gap_for_frequency(
            config.harvester.tuning.clamp_frequency(f)
        )
        tuned.append(cmap.current(v_store, f, 0.6, tuned_gap) * 1e6)
        untuned.append(cmap.current(v_store, f, 0.6, untuned_gap) * 1e6)
    print(
        ascii_line_plot(
            {
                "tuned (gap follows f)": (freqs, np.array(tuned)),
                "untuned (64 Hz device)": (freqs, np.array(untuned)),
            },
            title="average charging current vs ambient frequency (uA at 2.6 V)",
            x_label="frequency [Hz]",
            y_label="uA",
        )
    )
    band = config.harvester.tuning.achievable_band
    print(f"\ntuning band: {band[0]:.1f} .. {band[1]:.1f} Hz")
    theory = analytic.power_vs_frequency(
        config.harvester.params, 0.6, freqs, 8.0e4
    )
    print(
        "theory check (resistive-load power peaks at the untuned "
        f"resonance): argmax = {freqs[np.argmax(theory)]:.0f} Hz"
    )


def drifting_mission() -> None:
    """Mission value of the controller under a drifting machine tone."""
    results = {}
    for label, with_controller in (("with tuning", True), ("no tuning", False)):
        config = default_system(
            vibration=machine_room_profile(
                base_frequency=66.0, drift_hz=4.0, drift_rate=0.002
            ),
            tx_interval=15.0,
            dead_band=0.4,
            check_interval=60.0,
            with_controller=with_controller,
        )
        results[label] = simulate(
            config, MissionConfig(t_end=1800.0, engine="envelope")
        )
    print("\ndrifting machine tone, 30-minute mission:")
    for label, res in results.items():
        print(
            f"  {label:12s}: harvested {res.energy('harvested') * 1e3:7.2f} mJ, "
            f"tuning spend {res.energy('tuning') * 1e3:6.2f} mJ, "
            f"final store {res.final_store_voltage():.3f} V, "
            f"retunes {res.counter('retunes'):.0f}"
        )
    gain = results["with tuning"].energy("harvested") - results[
        "no tuning"
    ].energy("harvested")
    print(f"  harvest recovered by tuning: {gain * 1e3:.2f} mJ")


if __name__ == "__main__":
    sweep_charging_current()
    drifting_mission()
