"""Quickstart: simulate one harvester-powered node mission.

Builds the canonical system (tunable 64-78 Hz electromagnetic
harvester, bridge rectifier, 0.4 F supercapacitor store, duty-cycled
node reporting every 10 s, tuning controller checking every 2 minutes),
runs a 30-minute mission on the envelope engine, and prints the mission
summary, all performance indicators, and an ASCII store-voltage trace.

Run:  python examples/quickstart.py
"""

from repro import MissionConfig, default_system, evaluate_indicators, simulate
from repro.analysis.ascii_plot import ascii_line_plot


def main() -> None:
    config = default_system(
        capacitance=0.40,
        tx_interval=10.0,
        dead_band=1.0,
        check_interval=120.0,
    )
    print("system:")
    print(" ", config.harvester.params.summary())
    print(" ", config.node.describe())
    print(" ", config.controller.describe())
    print()

    result = simulate(config, MissionConfig(t_end=1800.0, engine="envelope"))

    print("mission summary:")
    print(result.summary())
    print()

    print("performance indicators:")
    for name, value in sorted(evaluate_indicators(result).items()):
        print(f"  {name:26s} = {value:.6g}")
    print()

    print(
        ascii_line_plot(
            {"V_store": (result.times, result.trace("v_store"))},
            title="supercapacitor voltage over the mission",
            x_label="time [s]",
            y_label="V",
            height=14,
        )
    )


if __name__ == "__main__":
    main()
