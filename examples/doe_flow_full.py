"""The paper's headline demo: the full 5-factor DoE design flow.

Runs the canonical study end to end:

1. the 5-factor space (storage, reporting period, tuning dead band,
   controller check interval, payload size),
2. a face-centred CCD with a resolution-V fractional core (29 + centre
   runs — the "moderate number of simulations"),
3. quadratic response surfaces for six performance indicators,
4. validation at held-out LHS points ("high accuracy"),
5. instant exploration: point queries, ANOVA, a desirability optimum
   ("evaluate the effect almost instantly").

This is the most expensive example (a few minutes on first run while
the charging-current map is built; re-runs inside one process are
seconds).

Run:  python examples/doe_flow_full.py
"""

from repro.core.toolkit import (
    SensorNodeDesignToolkit,
    standard_desirability,
)


def main() -> None:
    toolkit = SensorNodeDesignToolkit(mission_time=1800.0)
    print("factors:")
    print(toolkit.space.describe())
    design = toolkit.build_design("ccd")
    print(f"\ndesign: {design.describe()}")
    print("running the designed simulations (the one-off cost)...")
    study = toolkit.run_study(design=design, validate_points=8)
    print()
    print(study.report())

    # -- ANOVA for the headline response --------------------------------------
    print("\nANOVA — effective_data_rate:")
    print(study.anova["effective_data_rate"].format())

    # -- instant what-if queries ----------------------------------------------
    print("\nwhat-if queries (instant):")
    for point in (
        dict(capacitance=0.25, tx_interval=5.0, payload_bits=256),
        dict(capacitance=0.80, tx_interval=5.0, payload_bits=256),
        dict(capacitance=0.80, tx_interval=30.0, payload_bits=1024),
    ):
        out = study.predict(**point)
        print(
            f"  C={point['capacitance']:.2f} F, T={point['tx_interval']:4.0f} s, "
            f"{point['payload_bits']:4d} b -> rate {out['effective_data_rate']:6.1f} bit/s, "
            f"downtime {100 * out['downtime_fraction']:5.2f}%, "
            f"final V {out['final_store_voltage']:.2f}"
        )

    # -- multi-response optimum -------------------------------------------------
    outcome, physical = study.optimize(standard_desirability())
    print(f"\ndesirability optimum (D = {outcome.value:.3f}):")
    for name, value in physical.items():
        print(f"  {name:16s} = {value:.4g}")
    for name, value in outcome.responses.items():
        print(f"  -> {name:26s} = {value:.4g}")


if __name__ == "__main__":
    main()
