"""Storage vs reporting-rate trade-off via the DoE flow.

The question a deployment engineer actually asks: *how small a
supercapacitor can I ship, and how fast can the node report, before it
starts browning out?*  Answering it by brute-force simulation would
take a grid of missions; the paper's flow answers it from one small
CCD study:

1. run a central composite design over (capacitance, tx_interval),
2. fit quadratic response surfaces,
3. read the trade-off instantly: a response-surface contour and the
   Pareto front of data rate vs brownout margin.

Run:  python examples/duty_cycle_tradeoff.py
"""

import numpy as np

from repro.analysis.ascii_plot import ascii_contour
from repro.analysis.tables import format_table
from repro.core.factors import DesignSpace, Factor
from repro.core.toolkit import SensorNodeDesignToolkit


def main() -> None:
    space = DesignSpace(
        [
            Factor("capacitance", 0.10, 1.00, units="F"),
            Factor("tx_interval", 2.0, 60.0, transform="log", units="s"),
        ]
    )
    toolkit = SensorNodeDesignToolkit(space=space, mission_time=1800.0)
    study = toolkit.run_study(design="ccd", validate_points=6)
    print(study.report())

    # -- response-surface slice: min store voltage ---------------------------
    x, y, grid = study.surface_slice(
        "min_store_voltage", "capacitance", "tx_interval", n=41
    )
    print()
    print(
        ascii_contour(
            grid,
            (x[0], x[-1]),
            (y[0], y[-1]),
            title=(
                "min store voltage over (capacitance -> , tx_interval ^) — "
                "dark = brownout territory"
            ),
        )
    )

    # -- Pareto front: data rate vs brownout margin --------------------------
    points, values = study.trade_off(
        ["effective_data_rate", "min_store_voltage"],
        maximize=[True, True],
        points_per_axis=13,
    )
    rows = []
    order = np.argsort(-values[:, 0])
    for idx in order[:10]:
        physical = study.space.point_to_dict(points[idx])
        rows.append(
            [
                physical["capacitance"],
                physical["tx_interval"],
                values[idx, 0],
                values[idx, 1],
            ]
        )
    print()
    print(
        format_table(
            ["C [F]", "T_tx [s]", "rate [bit/s]", "min V [V]"],
            rows,
            title="Pareto-optimal designs (top 10 by data rate)",
        )
    )


if __name__ == "__main__":
    main()
