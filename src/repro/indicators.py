"""Performance-indicator registry.

The DoE flow treats a mission simulation as a black box mapping design
parameters to scalar *responses*; this module defines those responses
as named functions of a :class:`~repro.sim.results.SimulationResult`.

Registry entries are plain callables so users can register their own
(:func:`register_indicator`); the names double as response labels in
the RSM reports and benchmark tables.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.sim.results import SimulationResult

IndicatorFn = Callable[[SimulationResult], float]

_REGISTRY: dict[str, IndicatorFn] = {}


def register_indicator(name: str, fn: IndicatorFn, overwrite: bool = False) -> None:
    """Add a named indicator to the registry.

    Args:
        name: indicator key (used in response tables).
        fn: maps a :class:`SimulationResult` to a float.
        overwrite: allow replacing an existing entry.
    """
    if not overwrite and name in _REGISTRY:
        raise ReproError(f"indicator {name!r} already registered")
    _REGISTRY[name] = fn


def get_indicator(name: str) -> IndicatorFn:
    """Look up an indicator by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown indicator {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def indicator_names() -> tuple[str, ...]:
    """All registered indicator names, sorted."""
    return tuple(sorted(_REGISTRY))


def evaluate_indicators(
    result: SimulationResult, names: tuple[str, ...] | list[str] | None = None
) -> dict[str, float]:
    """Evaluate several indicators on one result."""
    selected = names if names is not None else indicator_names()
    return {name: float(get_indicator(name)(result)) for name in selected}


# -- built-in indicators ----------------------------------------------------------


def average_harvested_power(result: SimulationResult) -> float:
    """Mean power delivered into the store over the mission, W."""
    return result.energy("harvested") / result.t_end


def average_load_power(result: SimulationResult) -> float:
    """Mean store-side power consumed by the node application, W."""
    return result.energy("node") / result.t_end


def downtime_fraction(result: SimulationResult) -> float:
    """Fraction of the mission spent browned out (0..1)."""
    return result.downtime_fraction()


def uptime_fraction(result: SimulationResult) -> float:
    """Complement of :func:`downtime_fraction` (nicer to maximize)."""
    return 1.0 - result.downtime_fraction()


def packets_delivered(result: SimulationResult) -> float:
    """Measurement reports successfully completed."""
    return result.counter("packets_delivered")


def effective_data_rate(result: SimulationResult) -> float:
    """Application payload throughput, bit/s."""
    payload = float(result.meta.get("payload_bits", 0))
    return result.counter("packets_delivered") * payload / result.t_end


def final_store_voltage(result: SimulationResult) -> float:
    """Store voltage at mission end, V (energy-neutrality proxy)."""
    return result.final_store_voltage()


def min_store_voltage(result: SimulationResult) -> float:
    """Lowest store voltage seen, V (brownout margin)."""
    return result.min_store_voltage()


def charge_time_to_restart(result: SimulationResult) -> float:
    """Time for the store to first reach 3.0 V, s.

    3.0 V sits above the canonical regulator restart threshold, making
    this the cold-start readiness time; missions that never get there
    report the mission length (a finite worst case).
    """
    return result.charge_time(3.0)


def tuning_energy(result: SimulationResult) -> float:
    """Store-side energy spent on frequency tuning, J."""
    return result.energy("tuning")


def retune_count(result: SimulationResult) -> float:
    """Number of actuator moves commanded."""
    return result.counter("retunes")


def tuning_error_rms(result: SimulationResult) -> float:
    """RMS mismatch between ambient and resonant frequency, Hz."""
    return result.tuning_error_rms()


def energy_efficiency(result: SimulationResult) -> float:
    """Useful (node) energy over harvested energy (0 when idle)."""
    harvested = result.energy("harvested")
    if harvested <= 0.0:
        return 0.0
    return result.energy("node") / harvested


def brownout_events(result: SimulationResult) -> float:
    """Number of brownout episodes."""
    return result.counter("brownout_events")


for _name, _fn in [
    ("average_harvested_power", average_harvested_power),
    ("average_load_power", average_load_power),
    ("downtime_fraction", downtime_fraction),
    ("uptime_fraction", uptime_fraction),
    ("packets_delivered", packets_delivered),
    ("effective_data_rate", effective_data_rate),
    ("final_store_voltage", final_store_voltage),
    ("min_store_voltage", min_store_voltage),
    ("charge_time_to_restart", charge_time_to_restart),
    ("tuning_energy", tuning_energy),
    ("retune_count", retune_count),
    ("tuning_error_rms", tuning_error_rms),
    ("energy_efficiency", energy_efficiency),
    ("brownout_events", brownout_events),
]:
    register_indicator(_name, _fn)
