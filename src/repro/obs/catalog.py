"""Metric catalog and the bridge from component stats to the registry.

Two jobs live here:

* :data:`SPECS` — the authoritative catalog of every metric the
  platform exports (name, kind, labels, meaning).  The docs contract
  test pins ``docs/observability.md`` against this list, and the
  exporter uses it for ``# HELP`` / ``# TYPE`` metadata.

* ``track_*`` functions — the counter *migration* path.  Existing
  per-layer stats dataclasses (``StoreStats``, ``QueueStats``,
  ``ResilienceStats``, engine counters, worker reports) stay
  authoritative — ``study.report()`` and ``stats()/stats_snapshot()``
  outputs are untouched — while weakref-tracked **pull-time
  collectors** mirror them onto the default registry.  Hot paths pay
  nothing; translation happens only when someone scrapes.

Wrapper components (``ResilientStore``) share their inner component's
stats object, so the store collector dedupes by ``id(stats)`` — the
first-registered owner (the inner store) wins the ``store`` label.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs.events import emit_event
from repro.obs.metrics import (
    MetricsRegistry,
    Sample,
    default_registry,
)

__all__ = [
    "MetricSpec",
    "SPECS",
    "ensure_registered",
    "flush_metrics",
    "spec_names",
    "track_engine",
    "track_queue",
    "track_resilience",
    "track_store",
    "track_worker",
]


@dataclass(frozen=True)
class MetricSpec:
    """One cataloged metric: identity, shape, and meaning."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: Tuple[str, ...]
    help: str
    source: str  # "instrument" | "collector" | "sampled"


SPECS: Tuple[MetricSpec, ...] = (
    # -- engine (collector over EvaluationEngine counters) -----------
    MetricSpec("repro_points_evaluated_total", "counter", (), "Design points evaluated by the backend (cache misses actually simulated).", "collector"),
    MetricSpec("repro_batches_dispatched_total", "counter", (), "Backend batch dispatches issued by the evaluation engine.", "collector"),
    MetricSpec("repro_replicate_hits_total", "counter", (), "Duplicate points inside one batch served from the first replicate.", "collector"),
    MetricSpec("repro_eval_seconds_total", "counter", (), "Simulated seconds actually spent evaluating points (backend wall time).", "collector"),
    MetricSpec("repro_degraded_evaluations_total", "counter", (), "Points evaluated via the distributed backend's in-process fallback.", "collector"),
    MetricSpec("repro_poll_sleeps_total", "counter", (), "Distributed-backend poll sleeps while draining remote results.", "collector"),
    # -- cache (collector over CacheStats) ---------------------------
    MetricSpec("repro_cache_hits_total", "counter", (), "Evaluation-cache hits (memoized points not re-simulated).", "collector"),
    MetricSpec("repro_cache_misses_total", "counter", (), "Evaluation-cache misses (points handed to the backend).", "collector"),
    MetricSpec("repro_cache_evictions_total", "counter", (), "In-memory evaluation-cache evictions.", "collector"),
    # -- store (collector over StoreStats, labeled by store kind) ----
    MetricSpec("repro_store_loads_total", "counter", ("store",), "Cache-store entry loads.", "collector"),
    MetricSpec("repro_store_persists_total", "counter", ("store",), "Cache-store entry persists.", "collector"),
    MetricSpec("repro_store_invalidations_total", "counter", ("store",), "Cache-store invalidations.", "collector"),
    MetricSpec("repro_store_evictions_total", "counter", ("store",), "Cache-store evictions (capacity policy).", "collector"),
    MetricSpec("repro_store_gc_evictions_total", "counter", ("store",), "Entries evicted by lifecycle GC.", "collector"),
    MetricSpec("repro_store_bytes_reclaimed_total", "counter", ("store",), "Approximate bytes reclaimed by GC/compaction.", "collector"),
    MetricSpec("repro_store_compactions_total", "counter", ("store",), "Store compaction passes.", "collector"),
    MetricSpec("repro_store_round_trips_total", "counter", ("store",), "Physical store round trips (batched I/O transactions).", "collector"),
    # -- queue (collector over WorkQueue counters) -------------------
    MetricSpec("repro_queue_transactions_total", "counter", ("queue",), "Durable work-queue transactions (batched lease/complete/heartbeat).", "collector"),
    MetricSpec("repro_lease_grants_total", "counter", ("queue",), "Lease grants handed to workers.", "collector"),
    MetricSpec("repro_lease_reclaims_total", "counter", ("queue",), "Expired leases reclaimed from dead or wedged workers.", "collector"),
    # -- resilience (collector over ResilienceStats + breaker) -------
    MetricSpec("repro_retried_total", "counter", ("component",), "Substrate calls that needed at least one retry.", "collector"),
    MetricSpec("repro_degraded_ops_total", "counter", ("component",), "Operations served degraded (overlay/fallback) instead of failing.", "collector"),
    MetricSpec("repro_recoveries_total", "counter", ("component",), "Recoveries from degraded mode back to the real substrate.", "collector"),
    MetricSpec("repro_breaker_trips_total", "counter", ("component",), "Circuit-breaker open transitions.", "collector"),
    MetricSpec("repro_breaker_open", "gauge", ("component",), "Circuit-breaker state (1 = open, 0 = closed/half-open).", "collector"),
    # -- worker fleet (collector over WorkerReport) ------------------
    MetricSpec("repro_jobs_completed_total", "counter", ("worker",), "Jobs completed by a worker process.", "collector"),
    MetricSpec("repro_jobs_failed_total", "counter", ("worker",), "Jobs failed by a worker process.", "collector"),
    MetricSpec("repro_jobs_skipped_total", "counter", ("worker",), "Leased jobs skipped because the store already held the result.", "collector"),
    MetricSpec("repro_leases_total", "counter", ("worker",), "Lease acquisitions by a worker process.", "collector"),
    # -- campaign (instruments) --------------------------------------
    MetricSpec("repro_campaign_rounds_total", "counter", ("stop",), "Campaign rounds completed, labeled by the round's stop disposition.", "instrument"),
    MetricSpec("repro_campaign_points_total", "counter", ("source",), "Campaign points per round, split by source (simulated|cached).", "instrument"),
    # -- lifecycle (instruments) -------------------------------------
    MetricSpec("repro_gc_runs_total", "counter", (), "Lifecycle GC passes executed.", "instrument"),
    # -- cost accounting (gauges) ------------------------------------
    MetricSpec("repro_cost_saved_simulated_seconds", "gauge", ("source",), "Estimated simulated seconds avoided, by source (cache | campaign early stop).", "collector"),
    # -- spans (histogram via the tracer) ----------------------------
    MetricSpec("repro_span_seconds", "histogram", ("span", "status"), "Duration of instrumented spans (lease, evaluate, persist, complete, fit, acquire, round, batch transactions).", "instrument"),
    # -- fleet sampling (gauges produced by repro-metrics / dashboard)
    MetricSpec("repro_queue_depth", "gauge", ("status",), "Sampled queue depth by job status.", "sampled"),
    MetricSpec("repro_worker_jobs_held", "gauge", ("worker",), "Sampled leased jobs currently held per worker.", "sampled"),
    MetricSpec("repro_worker_oldest_lease_age_seconds", "gauge", ("worker",), "Sampled age of the oldest lease held per worker.", "sampled"),
    MetricSpec("repro_worker_heartbeat_age_seconds", "gauge", ("worker",), "Sampled seconds since a worker's most recent heartbeat.", "sampled"),
    MetricSpec("repro_fleet_workers", "gauge", (), "Sampled count of workers currently holding leases.", "sampled"),
)


def spec_names() -> List[str]:
    return [spec.name for spec in SPECS]


_BY_NAME: Dict[str, MetricSpec] = {spec.name: spec for spec in SPECS}


def spec_for(name: str) -> Optional[MetricSpec]:
    return _BY_NAME.get(name)


def instrument(name: str, registry: Optional[MetricsRegistry] = None) -> Any:
    """The live instrument for a cataloged metric (created on demand).

    The single blessed way for platform code to tick an
    instrument-sourced catalog metric — name, kind, labels and help
    text all come from the spec, so call sites cannot fork a series.
    """

    spec = _BY_NAME[name]
    reg = registry if registry is not None else default_registry()
    if spec.kind == "counter":
        return reg.counter(spec.name, spec.help, spec.labels)
    if spec.kind == "gauge":
        return reg.gauge(spec.name, spec.help, spec.labels)
    return reg.histogram(spec.name, spec.help, spec.labels)


def ensure_registered(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Create every instrument-sourced metric on ``registry``.

    Collector/sampled metrics appear when their component is tracked or
    sampled; instruments exist from the moment the catalog loads so the
    exporter can emit metadata for them even before first increment.
    """

    reg = registry if registry is not None else default_registry()
    for spec in SPECS:
        if spec.source != "instrument":
            continue
        if spec.kind == "counter":
            reg.counter(spec.name, spec.help, spec.labels)
        elif spec.kind == "gauge":
            reg.gauge(spec.name, spec.help, spec.labels)
        elif spec.kind == "histogram":
            reg.histogram(spec.name, spec.help, spec.labels)
    return reg


# ---------------------------------------------------------------------------
# bridge: weakref-tracked component collectors
# ---------------------------------------------------------------------------

_tracked_engines: "weakref.WeakSet[Any]" = weakref.WeakSet()
_tracked_stores: "weakref.WeakSet[Any]" = weakref.WeakSet()
_tracked_queues: "weakref.WeakSet[Any]" = weakref.WeakSet()
_tracked_resilience: "weakref.WeakSet[Any]" = weakref.WeakSet()
# WorkerReport is an eq-dataclass (unhashable), so it cannot live in
# a WeakSet; a plain list of weakrefs pruned at collect time does the
# same job.
_tracked_workers: "list[weakref.ref[Any]]" = []
_bridge_installed = False


def _counter_sample(name: str, value: float, **labels: object) -> Sample:
    spec = _BY_NAME.get(name)
    help_text = spec.help if spec else ""
    kind = spec.kind if spec else "counter"
    pairs = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    return Sample(name, kind, help_text, pairs, float(value))


def _engine_samples() -> Iterator[Sample]:
    total_hits = 0.0
    total_eval_seconds = 0.0
    total_points = 0.0
    for engine in list(_tracked_engines):
        yield _counter_sample("repro_points_evaluated_total", engine.points_evaluated)
        yield _counter_sample("repro_batches_dispatched_total", engine.batches_dispatched)
        yield _counter_sample("repro_replicate_hits_total", engine.replicate_hits)
        eval_seconds = float(getattr(engine, "eval_seconds", 0.0))
        yield _counter_sample("repro_eval_seconds_total", eval_seconds)
        backend = getattr(engine, "backend", None)
        if backend is not None:
            yield _counter_sample(
                "repro_degraded_evaluations_total",
                getattr(backend, "degraded_evaluations", 0),
            )
            yield _counter_sample(
                "repro_poll_sleeps_total", getattr(backend, "poll_sleeps", 0)
            )
        cache = getattr(engine, "cache", None)
        hits = float(cache.stats.hits) if cache is not None else 0.0
        total_hits += hits + float(engine.replicate_hits)
        total_eval_seconds += eval_seconds
        total_points += float(engine.points_evaluated)
    # Cost accounting: seconds saved by cache = avoided evaluations ×
    # the observed mean cost of one real evaluation.
    if total_points > 0:
        saved = total_hits * (total_eval_seconds / total_points)
        yield _counter_sample(
            "repro_cost_saved_simulated_seconds", saved, source="cache"
        )


def _cache_samples() -> Iterator[Sample]:
    for engine in list(_tracked_engines):
        cache = getattr(engine, "cache", None)
        if cache is None:
            continue
        yield _counter_sample("repro_cache_hits_total", cache.stats.hits)
        yield _counter_sample("repro_cache_misses_total", cache.stats.misses)
        yield _counter_sample("repro_cache_evictions_total", cache.stats.evictions)


def _store_label(store: Any) -> str:
    return type(store).__name__


def _store_samples() -> Iterator[Sample]:
    seen_stats: set[int] = set()
    for store in list(_tracked_stores):
        stats = getattr(store, "stats", None)
        if stats is None or id(stats) in seen_stats:
            continue  # wrappers share the inner store's stats object
        seen_stats.add(id(stats))
        label = _store_label(store)
        yield _counter_sample("repro_store_loads_total", stats.loads, store=label)
        yield _counter_sample("repro_store_persists_total", stats.persists, store=label)
        yield _counter_sample("repro_store_invalidations_total", stats.invalidations, store=label)
        yield _counter_sample("repro_store_evictions_total", stats.evictions, store=label)
        yield _counter_sample("repro_store_gc_evictions_total", stats.gc_evictions, store=label)
        yield _counter_sample("repro_store_bytes_reclaimed_total", stats.bytes_reclaimed, store=label)
        yield _counter_sample("repro_store_compactions_total", stats.compactions, store=label)
        yield _counter_sample("repro_store_round_trips_total", stats.round_trips, store=label)


def _queue_samples() -> Iterator[Sample]:
    for queue in list(_tracked_queues):
        # Same label the queue's own events carry, so scrape series
        # and event-derived series line up.
        label = getattr(queue, "name", None) or type(queue).__name__
        yield _counter_sample(
            "repro_queue_transactions_total", getattr(queue, "transactions", 0), queue=label
        )
        yield _counter_sample(
            "repro_lease_grants_total", getattr(queue, "lease_grants", 0), queue=label
        )
        yield _counter_sample(
            "repro_lease_reclaims_total", getattr(queue, "lease_reclaims", 0), queue=label
        )


def _resilience_samples() -> Iterator[Sample]:
    for wrapper in list(_tracked_resilience):
        component = getattr(wrapper, "component", type(wrapper).__name__)
        stats = getattr(wrapper, "resilience", None)
        if stats is not None:
            yield _counter_sample("repro_retried_total", stats.retried, component=component)
            yield _counter_sample("repro_degraded_ops_total", stats.degraded_ops, component=component)
            yield _counter_sample("repro_recoveries_total", stats.recoveries, component=component)
        breaker = getattr(wrapper, "breaker", None)
        if breaker is not None:
            yield _counter_sample(
                "repro_breaker_trips_total", getattr(breaker, "trips", 0), component=component
            )
            state = getattr(breaker, "state", "closed")
            yield _counter_sample(
                "repro_breaker_open", 1.0 if state == "open" else 0.0, component=component
            )


def _worker_samples() -> Iterator[Sample]:
    _tracked_workers[:] = [ref for ref in _tracked_workers if ref() is not None]
    for ref in list(_tracked_workers):
        report = ref()
        if report is None:
            continue
        worker = getattr(report, "worker_id", "?")
        yield _counter_sample("repro_jobs_completed_total", report.jobs_completed, worker=worker)
        yield _counter_sample("repro_jobs_failed_total", report.jobs_failed, worker=worker)
        yield _counter_sample("repro_jobs_skipped_total", report.jobs_skipped, worker=worker)
        yield _counter_sample("repro_leases_total", report.leases, worker=worker)


def _install_bridge(registry: Optional[MetricsRegistry] = None) -> None:
    global _bridge_installed
    if _bridge_installed and registry is None:
        return
    reg = registry if registry is not None else default_registry()
    for fn in (
        _engine_samples,
        _cache_samples,
        _store_samples,
        _queue_samples,
        _resilience_samples,
        _worker_samples,
    ):
        reg.register_collector(fn)
    if registry is None:
        _bridge_installed = True


def track_engine(engine: Any) -> None:
    """Mirror an :class:`EvaluationEngine`'s counters onto the registry."""

    _install_bridge()
    _tracked_engines.add(engine)


def track_store(store: Any) -> None:
    """Mirror a :class:`CacheStore`'s ``StoreStats`` onto the registry."""

    _install_bridge()
    _tracked_stores.add(store)


def track_queue(queue: Any) -> None:
    """Mirror a :class:`WorkQueue`'s transaction/lease counters."""

    _install_bridge()
    _tracked_queues.add(queue)


def track_resilience(wrapper: Any) -> None:
    """Mirror a resilient wrapper's retry/degraded/breaker telemetry."""

    _install_bridge()
    _tracked_resilience.add(wrapper)


def track_worker(report: Any) -> None:
    """Mirror a live :class:`WorkerReport` onto the registry."""

    _install_bridge()
    _tracked_workers.append(weakref.ref(report))


def flush_metrics(source: str, registry: Optional[MetricsRegistry] = None) -> None:
    """Publish this process's counter state to the event log.

    The event log is the cross-process transport: each process emits a
    ``metrics_flush`` carrying its registry snapshot; the exporter
    keeps the *latest* flush per pid (counters are process-lifetime
    monotonic) and sums across pids.
    """

    reg = registry if registry is not None else default_registry()
    counters = {
        key: value
        for key, value in reg.snapshot().items()
        if "_total" in key or key.startswith("repro_cost_saved")
    }
    emit_event("metrics_flush", source=source, counters=counters)
