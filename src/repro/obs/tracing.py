"""Lightweight span tracer with an injectable clock.

A *span* is one timed region — ``lease``, ``evaluate``, ``persist``,
``complete`` in the worker loop; ``fit`` / ``diagnose`` / ``acquire``
and whole rounds in a campaign; batch transactions in the store and
queue.  Each finished span feeds one observation into the
``repro_span_seconds`` histogram on the metrics registry, labeled by
span name, so percentile-ish latency (bucket counts, sum, count) is
scrape-able without any log processing.

The clock is injectable (``Tracer(clock=fake)``) so tests assert exact
durations; the default is ``time.perf_counter`` — monotonic, and
deliberately *not* wall-clock, so tracing never smuggles
``time.time()`` into fingerprint-adjacent code paths (REP102).

Usage::

    from repro.obs.tracing import span

    with span("persist", queue="sqlite"):
        store.put_many(entries)

Spans never raise past the workload: a failing body propagates its own
exception, but the timing record is still made (``status="error"``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry, default_registry

__all__ = ["SpanRecord", "Tracer", "default_tracer", "span"]


class SpanRecord:
    """Finished span: name, labels, duration, ok/error status."""

    __slots__ = ("name", "labels", "seconds", "status")

    def __init__(
        self, name: str, labels: Tuple[Tuple[str, str], ...], seconds: float, status: str
    ) -> None:
        self.name = name
        self.labels = labels
        self.seconds = seconds
        self.status = status

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanRecord({self.name!r}, {self.seconds:.6f}s, {self.status})"


class Tracer:
    """Records spans into a duration histogram on a metrics registry."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
        sink: Optional[Callable[[SpanRecord], None]] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.clock = clock
        self.sink = sink
        self._histogram: Optional[Histogram] = None

    def _duration_histogram(self) -> Histogram:
        if self._histogram is None:
            self._histogram = self.registry.histogram(
                "repro_span_seconds",
                "Duration of instrumented platform spans.",
                labelnames=("span", "status"),
            )
        return self._histogram

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[Dict[str, object]]:
        """Time a region; yields a dict whose entries become extra context.

        Extra labels beyond ``span``/``status`` are not exported to the
        histogram (unbounded cardinality), but they are passed through
        to the ``sink`` for tests and the event log bridge.
        """

        start = self.clock()
        status = "ok"
        ctx: Dict[str, object] = dict(labels)
        try:
            yield ctx
        except BaseException:
            status = "error"
            raise
        finally:
            seconds = self.clock() - start
            self._duration_histogram().observe(seconds, span=name, status=status)
            if self.sink is not None:
                pairs = tuple(sorted((str(k), str(v)) for k, v in ctx.items()))
                self.sink(SpanRecord(name, pairs, seconds, status))


_DEFAULT = Tracer()


def default_tracer() -> Tracer:
    """Process-wide tracer bound to the default metrics registry."""

    return _DEFAULT


@contextmanager
def span(name: str, **labels: object) -> Iterator[Dict[str, object]]:
    """Module-level shorthand for ``default_tracer().span(...)``."""

    with _DEFAULT.span(name, **labels) as ctx:
        yield ctx
