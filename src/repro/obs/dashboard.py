"""Render a :class:`~repro.obs.fleet.FleetSample` as a live dashboard.

Pure presentation: :func:`render_dashboard` turns one (or two
consecutive) fleet samples into a list of terminal lines.  The watch
loop in ``repro-cache queue stats --watch`` and the ``repro-metrics``
CLI both call it; keeping it free of I/O makes the layout testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.fleet import FleetSample

__all__ = ["render_dashboard"]

_BAR_WIDTH = 30
_STATUS_ORDER = ("pending", "leased", "done", "failed", "expired", "invalid")


def _fmt_age(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 0:
        seconds = 0.0
    if seconds < 120:
        return f"{seconds:.1f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def _depth_bar(counts: Dict[str, int]) -> str:
    total = sum(counts.get(s, 0) for s in _STATUS_ORDER)
    if total <= 0:
        return "[" + " " * _BAR_WIDTH + "]"
    glyphs = {"pending": ".", "leased": "=", "done": "#", "failed": "!", "expired": "x", "invalid": "?"}
    bar = ""
    for status in _STATUS_ORDER:
        width = round(counts.get(status, 0) / total * _BAR_WIDTH)
        bar += glyphs[status] * width
    bar = (bar + " " * _BAR_WIDTH)[:_BAR_WIDTH]
    return f"[{bar}]"


def _counter(sample: FleetSample, prefix: str) -> float:
    return sum(
        value
        for key, value in sample.event_counters.items()
        if key == prefix or key.startswith(prefix + "{")
    )


def render_dashboard(
    sample: FleetSample, previous: Optional[FleetSample] = None
) -> List[str]:
    """Terminal lines for one fleet observation.

    With ``previous`` given, completion throughput is derived from the
    done-count delta between the two samples.
    """

    counts = sample.queue_counts
    lines: List[str] = []
    queue_name = sample.queue_describe.get("queue", "queue")
    lines.append(f"fleet · {queue_name} · {len(sample.workers)} worker(s) holding leases")

    depth = "  ".join(
        f"{status}={counts.get(status, 0)}" for status in _STATUS_ORDER
    )
    lines.append(f"queue {_depth_bar(counts)} {depth}")

    throughput = ""
    if previous is not None and sample.sampled_at > previous.sampled_at:
        dt = sample.sampled_at - previous.sampled_at
        rate = (sample.done - previous.done) / dt
        throughput = f"  throughput={rate:.2f} jobs/s"
    done = counts.get("done", 0)
    total = counts.get("total", 0)
    lines.append(f"progress {done}/{total} done{throughput}")

    if sample.workers:
        lines.append("workers:")
        header = f"  {'worker':<24} {'held':>4} {'oldest lease':>12} {'heartbeat':>10}"
        lines.append(header)
        for worker_id, info in sorted(sample.workers.items()):
            lines.append(
                f"  {worker_id:<24} {int(info.get('jobs_held') or 0):>4} "
                f"{_fmt_age(info.get('oldest_lease_age')):>12} "
                f"{_fmt_age(info.get('last_heartbeat_age')):>10}"
            )
    else:
        lines.append("workers: none holding leases")

    reclaims = _counter(sample, "repro_lease_reclaims_total")
    retried = _counter(sample, "repro_retried_total")
    degraded = _counter(sample, "repro_degraded_ops_total") + _counter(
        sample, "repro_degraded_evaluations_total"
    )
    trips = _counter(sample, "repro_breaker_trips_total")
    lines.append(
        "resilience "
        f"reclaims={reclaims:g} retried={retried:g} "
        f"degraded={degraded:g} breaker_trips={trips:g}"
    )

    hits = _counter(sample, "repro_cache_hits_total")
    saved = _counter(sample, "repro_cost_saved_simulated_seconds")
    if hits or saved:
        lines.append(f"cache hits={hits:g} est_sim_seconds_saved={saved:.1f}")

    if sample.rounds:
        last = sample.rounds[-1]
        stop = last.get("stop") or "running"
        lines.append(
            "campaign "
            f"round={last.get('round', '?')} simulated={last.get('simulated', '?')} "
            f"cached={last.get('cached', '?')} status={stop}"
        )
    return lines
