"""Thread-safe metrics registry: labeled counters, gauges, histograms.

The registry is the in-process aggregation point for every counter the
platform already keeps in per-component stats dataclasses
(:class:`repro.exec.store.StoreStats`, ``QueueStats``,
``ResilienceStats``, engine counters, …).  It mirrors the repo's
``stats_snapshot()`` / ``stats(since=)`` idiom: :meth:`MetricsRegistry.snapshot`
captures the current value of every series, and
:meth:`MetricsRegistry.delta` subtracts an earlier snapshot so callers
can attribute activity to a window of work.

Two ways to get samples in:

* **Instruments** — ``registry.counter(...)``, ``.gauge(...)``,
  ``.histogram(...)`` hand back live handles that components tick
  directly.  Increments are a dict update under one lock; cheap enough
  for batch-boundary call sites (never per-point hot loops).
* **Collectors** — ``registry.register_collector(fn)`` registers a
  zero-argument callable invoked at *pull* time (``collect()`` /
  ``snapshot()``).  Collectors let existing stats dataclasses stay
  authoritative (so ``study.report()`` output is untouched) while still
  appearing in the exported series, at zero hot-path cost.  Collector
  registrations that hold object references use weakrefs and
  self-prune when the subject is garbage collected.

Series identity is ``name`` + a sorted tuple of ``(label, value)``
pairs.  :func:`series_key` renders the canonical
``name{label="v",...}`` string used in snapshots and tests.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "default_registry",
    "series_key",
]

LabelPairs = Tuple[Tuple[str, str], ...]

#: Default histogram bucket boundaries (seconds-oriented, matching the
#: span durations the platform records: sub-millisecond store ops up to
#: multi-minute campaign rounds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.025,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
    120.0,
    float("inf"),
)


def _label_pairs(labels: Mapping[str, object]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_key(name: str, labels: Mapping[str, object] | LabelPairs = ()) -> str:
    """Canonical ``name{k="v",...}`` string for one series."""

    pairs = labels if isinstance(labels, tuple) else _label_pairs(labels)
    if not pairs:
        return name
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return f"{name}{{{body}}}"


@dataclass(frozen=True)
class Sample:
    """One exported time-series point.

    Histograms expand into several samples (``*_bucket`` with an ``le``
    label, ``*_sum``, ``*_count``); counters and gauges yield one each.
    """

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    labels: LabelPairs
    value: float

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)


class _Metric:
    """Base for the three instrument kinds; owns the per-series values."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._values: Dict[LabelPairs, float] = {}

    def _resolve(self, labels: Mapping[str, object]) -> LabelPairs:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return _label_pairs(labels)

    def samples(self) -> Iterator[Sample]:
        with self._lock:
            items = list(self._values.items())
        for pairs, value in items:
            yield Sample(self.name, self.kind, self.help, pairs, value)


class Counter(_Metric):
    """Monotonically increasing value; ``inc`` with optional labels."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        pairs = self._resolve(labels)
        with self._lock:
            self._values[pairs] = self._values.get(pairs, 0.0) + amount

    def value(self, **labels: object) -> float:
        pairs = self._resolve(labels)
        with self._lock:
            return self._values.get(pairs, 0.0)


class Gauge(_Metric):
    """Point-in-time value; ``set``/``inc``/``dec`` with optional labels."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        pairs = self._resolve(labels)
        with self._lock:
            self._values[pairs] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pairs = self._resolve(labels)
        with self._lock:
            self._values[pairs] = self._values.get(pairs, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        pairs = self._resolve(labels)
        with self._lock:
            return self._values.get(pairs, 0.0)


@dataclass
class _HistogramState:
    counts: List[int]
    total: float = 0.0
    count: int = 0


class Histogram(_Metric):
    """Cumulative-bucket histogram; ``observe`` records one value."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets: Tuple[float, ...] = tuple(bounds)
        self._states: Dict[LabelPairs, _HistogramState] = {}

    def observe(self, value: float, **labels: object) -> None:
        pairs = self._resolve(labels)
        with self._lock:
            state = self._states.get(pairs)
            if state is None:
                state = _HistogramState(counts=[0] * len(self.buckets))
                self._states[pairs] = state
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    state.counts[i] += 1
                    break
            state.total += value
            state.count += 1

    def state(self, **labels: object) -> Tuple[int, float]:
        """``(count, sum)`` for one series — convenience for tests."""

        pairs = self._resolve(labels)
        with self._lock:
            st = self._states.get(pairs)
            return (st.count, st.total) if st else (0, 0.0)

    def samples(self) -> Iterator[Sample]:
        with self._lock:
            states = {k: (list(v.counts), v.total, v.count) for k, v in self._states.items()}
        for pairs, (counts, total, count) in states.items():
            cumulative = 0
            for bound, n in zip(self.buckets, counts):
                cumulative += n
                le = "+Inf" if bound == float("inf") else format(bound, "g")
                yield Sample(
                    f"{self.name}_bucket",
                    self.kind,
                    self.help,
                    pairs + (("le", le),),
                    float(cumulative),
                )
            yield Sample(f"{self.name}_sum", self.kind, self.help, pairs, total)
            yield Sample(f"{self.name}_count", self.kind, self.help, pairs, float(count))


Collector = Callable[[], Iterable[Sample]]


class MetricsRegistry:
    """Registry of instruments plus pull-time collectors.

    Instrument creation is idempotent: asking twice for the same name
    returns the same handle, and a kind/label mismatch raises — two
    components cannot silently fork a series.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Collector] = []

    # -- instruments -------------------------------------------------

    def _get_or_create(
        self, cls: type, name: str, help_text: str, labelnames: Sequence[str], **kwargs: object
    ) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help_text, labelnames, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Counter:
        metric = self._get_or_create(Counter, name, help_text, labelnames)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        metric = self._get_or_create(Gauge, name, help_text, labelnames)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(Histogram, name, help_text, labelnames, buckets=buckets)
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- collectors --------------------------------------------------

    def register_collector(self, fn: Collector) -> Callable[[], None]:
        """Register a pull-time sample source; returns an unregister hook."""

        with self._lock:
            self._collectors.append(fn)

        def unregister() -> None:
            with self._lock:
                try:
                    self._collectors.remove(fn)
                except ValueError:
                    pass

        return unregister

    def register_object_collector(
        self, obj: object, fn: Callable[[object], Iterable[Sample]]
    ) -> Callable[[], None]:
        """Collector bound to ``obj`` via weakref; self-prunes when dead."""

        ref = weakref.ref(obj)

        def collector() -> Iterable[Sample]:
            target = ref()
            if target is None:
                unregister()
                return ()
            return fn(target)

        unregister = self.register_collector(collector)
        return unregister

    # -- export ------------------------------------------------------

    def collect(self) -> List[Sample]:
        """All samples: instruments first, then collectors.

        A collector that raises is dropped from the output for this
        pull only — one misbehaving component must not take down the
        scrape endpoint.
        """

        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        out: List[Sample] = []
        for metric in metrics:
            out.extend(metric.samples())
        for fn in collectors:
            try:
                out.extend(fn())
            except Exception:  # pragma: no cover - defensive; exporter must survive
                continue
        return out

    def snapshot(self) -> Dict[str, float]:
        """``{series_key: value}`` for every current sample.

        Duplicate keys (two collectors mirroring the same series) are
        summed, which is also the cross-instance aggregation rule.
        """

        snap: Dict[str, float] = {}
        for sample in self.collect():
            snap[sample.key] = snap.get(sample.key, 0.0) + sample.value
        return snap

    def delta(self, since: Mapping[str, float]) -> Dict[str, float]:
        """Difference vs an earlier :meth:`snapshot` (gauges included as-is).

        Mirrors the engine's ``stats(since=...)`` idiom: series absent
        from ``since`` are reported at full value; series that vanished
        are omitted.
        """

        now = self.snapshot()
        return {key: value - since.get(key, 0.0) for key, value in now.items()}


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry all platform instruments attach to."""

    return _DEFAULT
