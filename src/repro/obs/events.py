"""Schema-versioned JSONL event log, written via ``O_APPEND``.

Every platform process (submitter, campaign driver, each worker) can
append structured events — lease grants and reclaims, breaker trips,
degraded operations, GC passes, campaign round boundaries, final
metrics flushes — to one shared file.  Appends are a single
``os.write`` of one ``\\n``-terminated JSON line through a file
descriptor opened with ``O_APPEND``, which POSIX keeps atomic for
small writes, so concurrent writers interleave whole lines rather
than tearing each other.  The reader tolerates a torn or trailing
partial line anyway (a crashed writer must not poison the log).

Configuration is ambient so deep call sites stay decoupled: set a path
explicitly with :func:`set_event_log`, or export ``REPRO_EVENT_LOG``
before the process starts (how ``repro-worker`` children inherit the
log).  When no log is configured, :func:`emit_event` is a cheap no-op.

Each record carries ``schema`` (:data:`EVENT_SCHEMA_VERSION`), ``ts``
(wall-clock seconds), ``pid``, and ``event`` (the type tag), plus
event-specific fields.  The catalog of event types lives in
``docs/observability.md`` and :mod:`repro.obs.catalog`.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "configured_event_log",
    "default_events_path",
    "emit_event",
    "read_events",
    "set_event_log",
]

EVENT_SCHEMA_VERSION = 1

_ENV_VAR = "REPRO_EVENT_LOG"


class EventLog:
    """Append-only JSONL sink bound to one path.

    The fd is opened lazily on first emit and kept for the process
    lifetime.  A failing filesystem disables the log after one warning
    (telemetry must never take down the workload it observes).
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._fd: Optional[int] = None
        self._lock = threading.Lock()
        self._broken = False

    def emit(self, event: str, **fields: Any) -> None:
        if self._broken:
            return
        record: Dict[str, Any] = {
            "schema": EVENT_SCHEMA_VERSION,
            "ts": time.time(),
            "pid": os.getpid(),
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        try:
            with self._lock:
                if self._fd is None:
                    parent = os.path.dirname(self.path)
                    if parent:
                        os.makedirs(parent, exist_ok=True)
                    self._fd = os.open(
                        self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
                    )
                os.write(self._fd, line.encode("utf-8"))
        except OSError as exc:
            self._broken = True
            print(
                f"repro.obs: event log {self.path!r} disabled: {exc}",
                file=sys.stderr,
            )

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None


_lock = threading.Lock()
_log: Optional[EventLog] = None
_env_checked = False


def set_event_log(path: str | os.PathLike[str] | None) -> Optional[EventLog]:
    """Bind (or, with ``None``, unbind) the process-wide event log."""

    global _log, _env_checked
    with _lock:
        if _log is not None:
            _log.close()
        _log = EventLog(path) if path is not None else None
        _env_checked = True  # explicit call overrides the env default
        return _log


def configured_event_log() -> Optional[EventLog]:
    """The active log: explicit binding first, else ``REPRO_EVENT_LOG``."""

    global _log, _env_checked
    with _lock:
        if _log is None and not _env_checked:
            _env_checked = True
            env_path = os.environ.get(_ENV_VAR)
            if env_path:
                _log = EventLog(env_path)
        return _log


def emit_event(event: str, **fields: Any) -> None:
    """Append one event to the configured log; no-op when unconfigured."""

    log = configured_event_log()
    if log is not None:
        log.emit(event, **fields)


def read_events(
    path: str | os.PathLike[str], event: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Parse an event log, skipping torn/partial lines.

    Optionally filters to one ``event`` type.  A missing file reads as
    an empty log (the observer may start before the first writer).
    """

    return list(iter_events(path, event=event))


def iter_events(
    path: str | os.PathLike[str], event: Optional[str] = None
) -> Iterator[Dict[str, Any]]:
    try:
        fh = open(path, "r", encoding="utf-8", errors="replace")
    except FileNotFoundError:
        return
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn line from a crashed writer
            if not isinstance(record, dict) or "event" not in record:
                continue
            if event is not None and record.get("event") != event:
                continue
            yield record


def default_events_path(store_spec: str) -> str:
    """Conventional event-log location co-located with a store spec.

    ``results.sqlite`` → ``results.events.jsonl`` (sibling file);
    a directory store → ``<dir>/.events.jsonl`` inside it.  Keeping the
    log beside the substrate means every process pointed at the store
    finds the same log without extra plumbing.
    """

    spec = os.fspath(store_spec)
    if os.path.isdir(spec) or spec.endswith(os.sep):
        return os.path.join(spec, ".events.jsonl")
    root, ext = os.path.splitext(spec)
    if ext in (".sqlite", ".db", ".sqlite3"):
        return root + ".events.jsonl"
    return spec + ".events.jsonl"
