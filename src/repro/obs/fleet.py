"""Fleet-wide sampling: queue + event log → one coherent metric set.

An exporter or dashboard process is *not* the process doing the work,
so its in-process registry is empty.  What it can see is the shared
substrate: the durable work queue (live gauges — depth, per-worker
lease ages) and the JSONL event log (counters — each worker/submitter
periodically flushes its registry as a ``metrics_flush`` event, and
discrete events record lease grants/reclaims, breaker trips, degraded
ops, GC passes and campaign rounds).

:func:`sample_fleet` folds both sources into a :class:`FleetSample`;
``FleetSample.samples()`` renders it as registry-compatible
:class:`~repro.obs.metrics.Sample` rows so the same data feeds the
Prometheus exposition, the ``repro-metrics`` CLI and the
``repro-cache queue stats --watch`` dashboard.

Aggregation rules:

* ``metrics_flush`` — keep the **latest** flush per pid (counters are
  process-lifetime monotonic), then sum across pids.
* discrete events — counted directly; these override any same-named
  series in the flushes (they are authoritative and live even for
  processes that died before flushing, e.g. a SIGKILLed worker whose
  lease the survivor reclaimed).
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.events import default_events_path, iter_events
from repro.obs.metrics import Sample
from repro.obs.catalog import spec_for

__all__ = ["FleetSample", "aggregate_event_counters", "sample_fleet"]

#: Series derived from discrete events; same-named series inside
#: ``metrics_flush`` payloads are dropped to avoid double counting.
_EVENT_DERIVED = (
    "repro_lease_grants_total",
    "repro_lease_reclaims_total",
    "repro_breaker_trips_total",
    "repro_degraded_ops_total",
    "repro_gc_runs_total",
    "repro_campaign_rounds_total",
)

_SERIES_NAME = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)")


def _base_name(series_key: str) -> str:
    match = _SERIES_NAME.match(series_key)
    return match.group(1) if match else series_key


def aggregate_event_counters(events_path: str | os.PathLike[str]) -> Dict[str, float]:
    """Fold an event log into ``{series_key: value}`` counter totals."""

    flushes: Dict[Tuple[int, str], Mapping[str, float]] = {}
    derived: Dict[str, float] = {}

    def bump(name: str, amount: float = 1.0, **labels: object) -> None:
        from repro.obs.metrics import series_key as _sk

        key = _sk(name, labels)
        derived[key] = derived.get(key, 0.0) + amount

    for record in iter_events(events_path):
        kind = record.get("event")
        if kind == "metrics_flush":
            counters = record.get("counters")
            if isinstance(counters, dict):
                ident = (int(record.get("pid", 0)), str(record.get("source", "")))
                flushes[ident] = counters  # later records overwrite: latest wins
        elif kind == "lease_grant":
            bump("repro_lease_grants_total", float(record.get("jobs", 1)))
        elif kind == "lease_reclaim":
            bump("repro_lease_reclaims_total", float(record.get("jobs", 1)))
        elif kind == "breaker_trip":
            bump("repro_breaker_trips_total", component=record.get("component", "?"))
        elif kind == "degraded_op":
            bump("repro_degraded_ops_total", component=record.get("component", "?"))
        elif kind == "gc":
            bump("repro_gc_runs_total")
        elif kind == "round_complete":
            # Continuing rounds journal ``stop: null`` explicitly.
            bump(
                "repro_campaign_rounds_total",
                stop=record.get("stop") or "continue",
            )

    totals: Dict[str, float] = {}
    for counters in flushes.values():
        for key, value in counters.items():
            if _base_name(key) in _EVENT_DERIVED:
                continue
            try:
                totals[key] = totals.get(key, 0.0) + float(value)
            except (TypeError, ValueError):
                continue
    totals.update(derived)
    return totals


@dataclass
class FleetSample:
    """One observation of the whole fleet at ``sampled_at``."""

    sampled_at: float
    queue_counts: Dict[str, int] = field(default_factory=dict)
    queue_describe: Dict[str, Any] = field(default_factory=dict)
    workers: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    event_counters: Dict[str, float] = field(default_factory=dict)
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    events_path: Optional[str] = None

    @property
    def done(self) -> int:
        return int(self.queue_counts.get("done", 0))

    def samples(self) -> List[Sample]:
        """Registry-compatible rows for exposition/merging."""

        def mk(name: str, value: float, **labels: object) -> Sample:
            spec = spec_for(name)
            pairs = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
            return Sample(
                name,
                spec.kind if spec else "gauge",
                spec.help if spec else "",
                pairs,
                float(value),
            )

        out: List[Sample] = []
        for status, count in sorted(self.queue_counts.items()):
            if status in ("total", "outstanding"):
                continue
            out.append(mk("repro_queue_depth", count, status=status))
        for worker_id, info in sorted(self.workers.items()):
            out.append(mk("repro_worker_jobs_held", info.get("jobs_held") or 0, worker=worker_id))
            lease_age = info.get("oldest_lease_age")
            if lease_age is not None:
                out.append(
                    mk("repro_worker_oldest_lease_age_seconds", lease_age, worker=worker_id)
                )
            hb_age = info.get("last_heartbeat_age")
            if hb_age is not None:
                out.append(
                    mk("repro_worker_heartbeat_age_seconds", hb_age, worker=worker_id)
                )
        out.append(mk("repro_fleet_workers", len(self.workers)))
        for key, value in sorted(self.event_counters.items()):
            name = _base_name(key)
            spec = spec_for(name)
            labels = _parse_key_labels(key)
            pairs = tuple(sorted(labels.items()))
            out.append(
                Sample(
                    name,
                    spec.kind if spec else "counter",
                    spec.help if spec else "",
                    pairs,
                    value,
                )
            )
        return out


def _parse_key_labels(series: str) -> Dict[str, str]:
    if "{" not in series:
        return {}
    body = series[series.index("{") + 1 : series.rindex("}")]
    labels: Dict[str, str] = {}
    for part in body.split(","):
        if "=" not in part:
            continue
        key, value = part.split("=", 1)
        labels[key.strip()] = value.strip().strip('"')
    return labels


def sample_fleet(
    store_spec: str,
    events_path: Optional[str] = None,
    now: Optional[float] = None,
    queue: Optional[Any] = None,
) -> FleetSample:
    """Observe the fleet behind one store spec.

    ``queue`` may be passed pre-resolved (the watch dashboard reuses
    one connection); otherwise the spec is resolved per call.  A
    missing/empty substrate yields an empty sample rather than raising:
    observers routinely start before the first worker.
    """

    from repro.exec.queue import resolve_queue

    sampled_at = time.time() if now is None else now
    sample = FleetSample(sampled_at=sampled_at)
    sample.events_path = (
        os.fspath(events_path) if events_path else default_events_path(store_spec)
    )

    owned = queue is None
    q = queue
    try:
        if q is None:
            # Observe only what exists: resolving a queue for a spec
            # that is not there yet would *create* the substrate as a
            # side effect of looking at it.
            if not os.path.exists(os.fspath(store_spec)):
                raise FileNotFoundError(store_spec)
            q = resolve_queue(store_spec)
        stats = q.stats()
        sample.queue_counts = {
            k: int(v) for k, v in stats.as_dict().items() if isinstance(v, (int, float))
        }
        sample.queue_describe = dict(q.describe())
        sample.workers = {
            worker_id: dict(info)
            for worker_id, info in q.worker_stats(now=sampled_at).items()
        }
    except Exception:
        # A queue we resolved ourselves may simply not exist yet —
        # observers routinely start before the substrate.  A queue the
        # caller handed us is theirs: recovery (re-resolve, report) is
        # their policy, so the failure propagates.
        if not owned:
            raise
    finally:
        if owned and q is not None:
            try:
                q.close()
            except Exception:
                pass

    try:
        sample.event_counters = aggregate_event_counters(sample.events_path)
        sample.rounds = [
            record
            for record in iter_events(sample.events_path, event="round_complete")
        ]
    except Exception:
        pass
    return sample
