"""Unified observability layer: metrics, spans, events, export.

One package gives the platform its operational senses:

* :mod:`repro.obs.metrics` — thread-safe registry of labeled
  counters/gauges/histograms with ``snapshot()``/``delta(since=)``
  semantics mirroring the engine's stats idiom.
* :mod:`repro.obs.tracing` — span tracer (injectable clock) feeding a
  duration histogram: lease → evaluate → persist → complete, campaign
  fit/acquire rounds, store/queue batch transactions.
* :mod:`repro.obs.events` — schema-versioned JSONL event log written
  via ``O_APPEND``: lease grants/reclaims, breaker trips, degraded
  ops, GC passes, campaign round boundaries, metrics flushes.
* :mod:`repro.obs.catalog` — the authoritative metric catalog plus the
  ``track_*`` bridge that mirrors existing per-layer stats objects
  onto the registry via weakref pull-time collectors (hot paths pay
  nothing; ``study.report()`` output is unchanged).
* :mod:`repro.obs.export` — Prometheus text exposition: atomic
  textfile writes and a stdlib HTTP scrape endpoint.
* :mod:`repro.obs.fleet` / :mod:`repro.obs.dashboard` — cross-process
  fleet sampling (queue + event log) and the live terminal dashboard
  behind ``repro-cache queue stats --watch`` and ``repro-metrics``.

The heavyweight pieces (fleet sampling pulls in :mod:`repro.exec`) are
imported lazily by their CLIs; importing :mod:`repro.obs` itself stays
dependency-free so substrate modules can use it unconditionally.
"""

from repro.obs.catalog import (
    SPECS,
    MetricSpec,
    ensure_registered,
    flush_metrics,
    spec_names,
    track_engine,
    track_queue,
    track_resilience,
    track_store,
    track_worker,
)
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    default_events_path,
    emit_event,
    read_events,
    set_event_log,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    default_registry,
    series_key,
)
from repro.obs.tracing import Tracer, default_tracer, span

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "Sample",
    "SPECS",
    "Tracer",
    "default_events_path",
    "default_registry",
    "default_tracer",
    "emit_event",
    "ensure_registered",
    "flush_metrics",
    "read_events",
    "series_key",
    "set_event_log",
    "spec_names",
    "span",
    "track_engine",
    "track_queue",
    "track_resilience",
    "track_store",
    "track_worker",
]
