"""``repro-metrics`` — scrape-able exporter for a study substrate.

Point it at the same store spec every other tool takes (a ``.sqlite``
file or store directory) and it samples the co-located work queue plus
the event log into Prometheus text exposition:

* default: one exposition dump to stdout (or ``--json`` for the raw
  fleet sample);
* ``--textfile OUT``: atomically (re)write a textfile-collector file
  every ``--interval`` seconds (``--once`` for a single write);
* ``--serve PORT``: stdlib HTTP scrape endpoint at ``/metrics``,
  sampling the fleet freshly on every scrape;
* ``--watch``: live dashboard in the terminal (same renderer as
  ``repro-cache queue stats --watch``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro.obs.dashboard import render_dashboard
from repro.obs.events import default_events_path
from repro.obs.export import render_prometheus, serve_metrics, write_textfile
from repro.obs.fleet import FleetSample, sample_fleet

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-metrics",
        description="Export fleet metrics for a repro study substrate.",
    )
    parser.add_argument(
        "store",
        help="substrate spec: .sqlite store file or store directory "
        "(same spec repro-cache/repro-worker take)",
    )
    parser.add_argument(
        "--events",
        default=None,
        help="event log path (default: co-located with the store, "
        "e.g. results.events.jsonl beside results.sqlite)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--serve",
        type=int,
        metavar="PORT",
        default=None,
        help="run an HTTP scrape endpoint on PORT (0 picks a free port)",
    )
    mode.add_argument(
        "--textfile",
        metavar="OUT",
        default=None,
        help="atomically write text exposition to OUT every --interval",
    )
    mode.add_argument(
        "--watch",
        action="store_true",
        help="live terminal dashboard instead of exposition output",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="sampling interval in seconds for --textfile/--watch (default 2)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="sample once and exit (applies to --textfile/--watch too)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw fleet sample as JSON instead of exposition",
    )
    return parser


def _sample(args: argparse.Namespace) -> FleetSample:
    return sample_fleet(args.store, events_path=args.events)


def _emit_once(args: argparse.Namespace) -> int:
    sample = _sample(args)
    if args.json:
        payload = {
            "sampled_at": sample.sampled_at,
            "queue": sample.queue_counts,
            "workers": sample.workers,
            "counters": sample.event_counters,
            "events_path": sample.events_path,
            "rounds": len(sample.rounds),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_prometheus(samples=sample.samples()))
    return 0


def _run_textfile(args: argparse.Namespace) -> int:
    while True:
        sample = _sample(args)
        write_textfile(args.textfile, samples=sample.samples())
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _run_serve(args: argparse.Namespace) -> int:
    server = serve_metrics(
        port=args.serve,
        extra_samples=lambda: _sample(args).samples(),
    )
    print(f"serving metrics at {server.url}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        return 0
    finally:
        server.stop()


def _run_watch(args: argparse.Namespace) -> int:
    previous: Optional[FleetSample] = None
    try:
        while True:
            sample = _sample(args)
            lines = render_dashboard(sample, previous)
            sys.stdout.write("\x1b[2J\x1b[H" if not args.once else "")
            print("\n".join(lines), flush=True)
            if args.once:
                return 0
            previous = sample
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.events is None:
        args.events = default_events_path(args.store)
    if args.serve is not None:
        return _run_serve(args)
    if args.textfile is not None:
        return _run_textfile(args)
    if args.watch:
        return _run_watch(args)
    return _emit_once(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
