"""Prometheus text-exposition: render, parse, textfile, scrape server.

Two export paths, both stdlib-only:

* **Textfile collector** — :func:`write_textfile` renders the registry
  and atomically replaces the output file (write-temp + ``os.replace``
  via :mod:`repro.fsutil`), so a node-exporter style collector never
  reads a half-written exposition.
* **Scrape endpoint** — :func:`serve_metrics` runs a
  ``ThreadingHTTPServer`` answering ``GET /metrics`` with a fresh
  render per scrape.

:func:`parse_prometheus` is the inverse of :func:`render_prometheus`
and exists so the round-trip is testable (and so the metrics-smoke CI
job can assert series without external tooling).
"""

from __future__ import annotations

import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.fsutil import atomic_write_text
from repro.obs.metrics import (
    MetricsRegistry,
    Sample,
    default_registry,
    series_key,
)

__all__ = [
    "CONTENT_TYPE",
    "MetricsServer",
    "parse_prometheus",
    "render_prometheus",
    "serve_metrics",
    "write_textfile",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _family_name(sample: Sample) -> str:
    """Metric-family name: histogram samples share one family."""

    if sample.kind == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if sample.name.endswith(suffix):
                return sample.name[: -len(suffix)]
    return sample.name


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    samples: Optional[Iterable[Sample]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Render samples in Prometheus text-exposition format 0.0.4.

    Samples with the same series key are summed (that is the registry's
    cross-instance aggregation rule); families are emitted sorted with
    one ``# HELP`` / ``# TYPE`` header each.
    """

    if samples is None:
        reg = registry if registry is not None else default_registry()
        samples = reg.collect()

    families: Dict[str, Tuple[str, str]] = {}  # family -> (kind, help)
    values: Dict[str, Dict[Tuple[str, ...], Tuple[str, float]]] = {}
    order: Dict[str, None] = {}
    for sample in samples:
        family = _family_name(sample)
        if family not in families:
            families[family] = (sample.kind, sample.help)
            order[family] = None
        key = (sample.name,) + tuple(f"{k}\x00{v}" for k, v in sample.labels)
        fam_values = values.setdefault(family, {})
        prior = fam_values.get(key)
        rendered = _render_series(sample)
        fam_values[key] = (rendered, (prior[1] if prior else 0.0) + sample.value)

    lines: List[str] = []
    for family in sorted(order):
        kind, help_text = families[family]
        if help_text:
            lines.append(f"# HELP {family} {_escape_help(help_text)}")
        lines.append(f"# TYPE {family} {kind}")
        # Insertion order preserves ascending histogram buckets.
        for series, value in values.get(family, {}).values():
            lines.append(f"{series} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def _render_series(sample: Sample) -> str:
    if not sample.labels:
        return sample.name
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in sample.labels)
    return f"{sample.name}{{{body}}}"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse text exposition back into ``{series_key: value}``.

    Inverse of :func:`render_prometheus` for the label dialects this
    module emits; used by the round-trip tests and the metrics-smoke
    assertions.
    """

    out: Dict[str, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, value = _parse_sample_line(line)
        out[series_key(name, labels)] = value
    return out


def _parse_sample_line(line: str) -> Tuple[str, Dict[str, str], float]:
    if "{" in line:
        name, rest = line.split("{", 1)
        label_body, tail = rest.rsplit("}", 1)
        labels = _parse_labels(label_body)
        value_text = tail.strip()
    else:
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed exposition line: {line!r}")
        name, value_text = parts[0], parts[1]
        labels = {}
    return name.strip(), labels, _parse_value(value_text.split()[0])


def _parse_labels(body: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq].strip().lstrip(",").strip()
        if body[eq + 1] != '"':
            raise ValueError(f"malformed label in {body!r}")
        j = eq + 2
        value_chars: List[str] = []
        while j < len(body):
            ch = body[j]
            if ch == "\\" and j + 1 < len(body):
                nxt = body[j + 1]
                value_chars.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        labels[key] = "".join(value_chars)
        i = j + 1
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def write_textfile(
    path: str | os.PathLike[str],
    samples: Optional[Iterable[Sample]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Atomically write the exposition to ``path`` (textfile collector)."""

    text = render_prometheus(samples=samples, registry=registry)
    target = os.fspath(path)
    parent = os.path.dirname(target)
    if parent:
        os.makedirs(parent, exist_ok=True)
    atomic_write_text(target, text)
    return text


class MetricsServer:
    """Background ``/metrics`` scrape endpoint over stdlib http.server."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
        extra_samples: Optional[object] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        # ``extra_samples``: zero-arg callable returning extra Sample
        # rows folded into each scrape (the fleet sampler hooks in here).
        self._extra = extra_samples
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                body = server.render().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # scrapes must not spam the worker's stderr

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def render(self) -> str:
        samples = list(self.registry.collect())
        if self._extra is not None:
            try:
                samples.extend(self._extra())  # type: ignore[operator]
            except Exception:
                pass  # sampling failure must not break the scrape
        return render_prometheus(samples=samples)

    def start(self) -> "MetricsServer":
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def serve_metrics(
    port: int = 0,
    host: str = "127.0.0.1",
    registry: Optional[MetricsRegistry] = None,
    extra_samples: Optional[object] = None,
) -> MetricsServer:
    """Start (and return) a background scrape endpoint."""

    return MetricsServer(
        port=port, host=host, registry=registry, extra_samples=extra_samples
    ).start()
