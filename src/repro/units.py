"""Unit constants and small conversion helpers.

The toolkit works internally in strict SI units (metres, kilograms,
seconds, volts, amperes, farads, henries, watts, joules, hertz).  The
constants below exist so that model parameter tables can be written the
way datasheets write them (``4.7 * MILLI`` metres, ``220 * MICRO`` watts)
without sprinkling bare ``1e-3`` literals through the code.

A handful of conversion helpers cover the quantities that appear in the
energy-harvesting literature with non-SI habits: acceleration in "g",
frequency/angular-frequency, and dB ratios used in reporting.
"""

from __future__ import annotations

import math

#: Standard gravity, m/s^2.  Vibration amplitudes are often quoted in
#: milli-g in the harvester literature.
GRAVITY = 9.80665

#: SI prefixes -------------------------------------------------------------
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6

#: Two-pi, for readable frequency <-> angular-frequency conversions.
TWO_PI = 2.0 * math.pi


def hz_to_rad(frequency_hz: float) -> float:
    """Convert a frequency in hertz to angular frequency in rad/s."""
    return TWO_PI * frequency_hz


def rad_to_hz(omega: float) -> float:
    """Convert an angular frequency in rad/s to hertz."""
    return omega / TWO_PI


def g_to_ms2(acceleration_g: float) -> float:
    """Convert an acceleration expressed in "g" to m/s^2."""
    return acceleration_g * GRAVITY


def ms2_to_g(acceleration: float) -> float:
    """Convert an acceleration in m/s^2 to "g"."""
    return acceleration / GRAVITY


def db(ratio: float) -> float:
    """Express a power ratio in decibels (10*log10).

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"dB of non-positive ratio {ratio!r}")
    return 10.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Invert :func:`db`: return the power ratio for a dB value."""
    return 10.0 ** (decibels / 10.0)


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert Celsius to Kelvin (used by the diode thermal voltage)."""
    return temp_c + 273.15


def thermal_voltage(temp_c: float = 27.0) -> float:
    """Diode thermal voltage kT/q at the given temperature in Celsius.

    Defaults to the customary SPICE temperature of 27 C (300.15 K),
    giving approximately 25.9 mV.
    """
    boltzmann = 1.380649e-23
    electron_charge = 1.602176634e-19
    return boltzmann * celsius_to_kelvin(temp_c) / electron_charge
