"""Mission runner: one entry point over all three engines.

:func:`simulate` builds the :class:`~repro.sim.system.SystemModel`,
instantiates the requested engine, and — for the full-fidelity engines
— drives the mission layer (node task cycles as piecewise-constant
loads, controller wake-ups, actuation ramps, brownout bookkeeping,
trace recording).  The envelope engine implements its own mission loop
(events collapse to energy withdrawals at its time scale) and is simply
dispatched to.

Full-fidelity missions are intended for seconds-scale studies (engine
validation, the R-T3 CPU-time table, the R-F1 frequency sweeps); the
envelope engine covers the minutes-to-hours missions the DoE flow
sweeps over.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.base import TransientEngine
from repro.sim.envelope import EnvelopeEngine, EnvelopeOptions
from repro.sim.events import EventQueue
from repro.sim.newton import NewtonRaphsonEngine
from repro.sim.results import SimulationResult
from repro.sim.state_space import LinearizedStateSpaceEngine
from repro.sim.system import SystemConfig, SystemModel
from repro.sim.traces import TraceRecorder

#: Engine registry used by :func:`simulate`.
ENGINE_NAMES = ("newton", "linearized", "envelope")


@dataclass
class MissionConfig:
    """How to run a mission.

    Attributes:
        t_end: mission length, s.
        engine: one of :data:`ENGINE_NAMES`.
        record_dt: trace decimation, s (defaults: 1 ms full-fidelity,
            1 s envelope).
        steps_per_period: full-fidelity micro steps per excitation
            period (sets dt when ``dt`` is None).
        dt: explicit micro step, s (overrides ``steps_per_period``).
        gap_ramp_updates: how many stiffness updates approximate the
            gap ramp during an actuation (full-fidelity engines).
        envelope: envelope-engine options.
    """

    t_end: float
    engine: str = "envelope"
    record_dt: float | None = None
    steps_per_period: int = 200
    dt: float | None = None
    gap_ramp_updates: int = 16
    envelope: EnvelopeOptions | None = None

    def __post_init__(self) -> None:
        if self.t_end <= 0.0:
            raise SimulationError(f"t_end must be > 0, got {self.t_end}")
        if self.engine not in ENGINE_NAMES:
            raise SimulationError(
                f"unknown engine {self.engine!r}; pick one of {ENGINE_NAMES}"
            )
        if self.steps_per_period < 8:
            raise SimulationError(
                f"steps_per_period must be >= 8, got {self.steps_per_period}"
            )
        if self.dt is not None and self.dt <= 0.0:
            raise SimulationError(f"dt must be > 0, got {self.dt}")
        if self.gap_ramp_updates < 1:
            raise SimulationError(
                f"gap_ramp_updates must be >= 1, got {self.gap_ramp_updates}"
            )

    def resolve_record_dt(self) -> float:
        if self.record_dt is not None:
            if self.record_dt <= 0.0:
                raise SimulationError(
                    f"record_dt must be > 0, got {self.record_dt}"
                )
            return self.record_dt
        return 1.0 if self.engine == "envelope" else 1.0e-3


def simulate(config: SystemConfig, mission: MissionConfig) -> SimulationResult:
    """Run one mission and return its :class:`SimulationResult`."""
    if mission.engine == "envelope":
        engine = EnvelopeEngine(config, mission.envelope)
        return engine.run(mission.t_end, record_dt=mission.resolve_record_dt())
    return _FullFidelityMission(config, mission).run()


def _make_engine(
    config: SystemConfig, mission: MissionConfig
) -> TransientEngine:
    system = SystemModel(config)
    if mission.dt is not None:
        dt = mission.dt
    else:
        f0 = max(config.vibration.dominant_frequency(0.0), 1.0)
        dt = 1.0 / (mission.steps_per_period * f0)
    if mission.engine == "newton":
        return NewtonRaphsonEngine(system, dt)
    return LinearizedStateSpaceEngine(system, dt)


class _FullFidelityMission:
    """Event-driven mission layer over a full-fidelity engine."""

    _EPS = 1e-12

    def __init__(self, config: SystemConfig, mission: MissionConfig):
        self.config = config
        self.mission = mission
        self.engine = _make_engine(config, mission)
        self.system = self.engine.system
        self.reg = config.regulator
        self.node = config.node
        self.controller = config.controller
        self.harvester = config.harvester
        self.source = config.vibration
        self.record_dt = mission.resolve_record_dt()
        self.has_store = self.system.power.store_node is not None
        self.recorder = TraceRecorder(
            [
                "v_store",
                "v_bus",
                "z",
                "i_coil",
                "p_transduced",
                "gap",
                "f_dom",
                "f_res",
                "i_load",
                "enabled",
                "packets",
                "downtime",
            ],
            record_dt=0.0,
        )
        self.counters = {
            "packets_delivered": 0.0,
            "retunes": 0.0,
            "controller_checks": 0.0,
            "brownout_events": 0.0,
        }
        self.energies = {"harvested": 0.0, "node": 0.0, "tuning": 0.0}
        self.downtime = 0.0
        self.queue = EventQueue()
        self.epoch = 0
        self.rail_power = 0.0
        v0 = self.engine.bus_voltage()
        self.enabled = (v0 >= self.reg.v_restart) if self.has_store else True
        self.next_record = 0.0

    # -- small helpers -----------------------------------------------------------

    def _sleep_power(self) -> float:
        return self.node.sleep_power if self.node is not None else 0.0

    def _set_rail_power(self, power: float) -> None:
        """Set the rail-side demand; refreshes the bus current draw."""
        self.rail_power = power
        if not self.enabled or not self.has_store:
            self.engine.set_load_current(0.0)
            return
        self.engine.set_load_current(
            self.reg.input_current(power, self.engine.bus_voltage())
        )

    def _record_row(self) -> None:
        # Hot path: called every record tick of missions stepping at
        # tens of microseconds.  Positional row (declared channel
        # order) plus hoisted lookups instead of a rebuilt dict.
        engine = self.engine
        system = self.system
        t = engine.time
        x = engine.state_view
        gap = engine.gap
        self.recorder.offer_row(
            t,
            (
                system.store_voltage(x) if self.has_store else 0.0,
                system.bus_voltage(x),
                system.proof_mass_displacement(x),
                system.coil_current(x),
                system.transduced_power(x),
                gap,
                self.source.dominant_frequency(t),
                self.harvester.resonant_frequency(gap),
                engine.load_current,
                1.0 if self.enabled else 0.0,
                self.counters["packets_delivered"],
                self.downtime,
            ),
            force=True,
        )

    def _update_regulator_state(self) -> None:
        if not self.has_store:
            return
        v_bus = self.engine.bus_voltage()
        new_state = self.reg.next_enabled(self.enabled, v_bus)
        if new_state == self.enabled:
            return
        self.enabled = new_state
        if not new_state:
            self.counters["brownout_events"] += 1.0
            self.epoch += 1
            self.recorder.log_event(
                self.engine.time, "brownout", f"v={v_bus:.3f}"
            )
            self.engine.set_load_current(0.0)
        else:
            self.recorder.log_event(
                self.engine.time, "restart", f"v={v_bus:.3f}"
            )
            if self.node is not None:
                self.node.policy.reset()
                self.queue.push(self.engine.time, "measure", self.epoch)
            self._set_rail_power(self._sleep_power())

    def _advance_to(self, t_target: float) -> None:
        """Advance the engine, recording and checking brownout en route."""
        while self.engine.time < t_target - self._EPS:
            t_stop = min(self.next_record, t_target)
            was_enabled = self.enabled
            span_start = self.engine.time
            self.engine.step_to(t_stop)
            if not was_enabled:
                self.downtime += self.engine.time - span_start
            self._update_regulator_state()
            if self.engine.time >= self.next_record - self._EPS:
                self._record_row()
                self.next_record += self.record_dt
                # Refresh the constant-power draw against the moving bus
                # voltage without disturbing the commanded rail power.
                self._set_rail_power(self.rail_power)

    # -- event handlers --------------------------------------------------------------

    def _handle_measure(self, payload: object, t_end: float) -> None:
        node = self.node
        if node is None or payload != self.epoch or not self.enabled:
            return
        for phase in node.phases:
            self._set_rail_power(phase.power)
            self._advance_to(min(self.engine.time + phase.duration, t_end))
            if not self.enabled:
                break  # browned out mid-cycle: packet lost
        self._set_rail_power(self._sleep_power())
        if self.enabled:
            self.counters["packets_delivered"] += 1.0
            v_for_policy = (
                self.system.store_voltage(self.engine.state)
                if self.has_store
                else self.engine.bus_voltage()
            )
            period = node.policy.next_period(v_for_policy, self.engine.time)
            self.queue.push(self.engine.time + period, "measure", self.epoch)

    def _handle_check(self, t_end: float) -> None:
        controller = self.controller
        if controller is None:
            return
        self.queue.push(
            self.engine.time + controller.check_interval, "check", None
        )
        if not self.enabled:
            return
        self.counters["controller_checks"] += 1.0
        e_mark = self.engine.energy_load_bus
        self._set_rail_power(self._sleep_power() + controller.measurement_power)
        self._advance_to(min(self.engine.time + controller.capture_time, t_end))
        self._set_rail_power(self._sleep_power())
        decision = controller.decide(
            self.engine.time, self.source, self.harvester, self.engine.gap
        )
        self.recorder.log_event(
            self.engine.time,
            "check",
            f"f_est={decision.f_estimate:.2f} retune={decision.retune}",
        )
        if decision.retune and self.enabled:
            self.counters["retunes"] += 1.0
            duration, _energy = self.harvester.retune_cost(
                self.engine.gap, decision.target_gap
            )
            gap_from = self.engine.gap
            t0 = self.engine.time
            n_updates = self.mission.gap_ramp_updates
            self._set_rail_power(
                self._sleep_power() + self.harvester.actuator.moving_power
            )
            for k in range(1, n_updates + 1):
                t_k = min(t0 + duration * k / n_updates, t_end)
                self._advance_to(t_k)
                self.engine.set_gap(
                    self.harvester.actuator.gap_trajectory(
                        gap_from, decision.target_gap, self.engine.time - t0
                    )
                )
                if not self.enabled or self.engine.time >= t_end - self._EPS:
                    break
            self._set_rail_power(self._sleep_power())
            self.recorder.log_event(
                self.engine.time,
                "retune_done",
                f"gap={self.engine.gap * 1e3:.2f}mm",
            )
        self.energies["tuning"] += self.engine.energy_load_bus - e_mark

    # -- main loop ----------------------------------------------------------------------

    def run(self) -> SimulationResult:
        started = time.perf_counter()
        t_end = self.mission.t_end
        if self.node is not None:
            self.node.policy.reset()
        if self.node is not None and self.enabled:
            self.queue.push(0.0, "measure", self.epoch)
        if self.controller is not None:
            self.queue.push(
                min(self.controller.first_check, t_end), "check", None
            )
        self._record_row()
        self.next_record = self.record_dt
        self._set_rail_power(self._sleep_power())

        while self.engine.time < t_end - self._EPS:
            t_event = self.queue.peek_time()
            t_next = min(t_event if t_event is not None else math.inf, t_end)
            self._advance_to(t_next)
            while True:
                t_peek = self.queue.peek_time()
                if t_peek is None or t_peek > self.engine.time + 1e-9:
                    break
                event = self.queue.pop()
                if event.kind == "measure":
                    self._handle_measure(event.payload, t_end)
                elif event.kind == "check":
                    self._handle_check(t_end)
        self._record_row()

        self.energies["harvested"] = self.engine.energy_transduced
        self.energies["node"] = (
            self.engine.energy_load_bus - self.energies["tuning"]
        )
        wall = time.perf_counter() - started
        node = self.node
        return SimulationResult(
            engine=self.mission.engine,
            t_end=t_end,
            traces=self.recorder.as_arrays(),
            events=self.recorder.events(),
            counters=self.counters,
            energies=self.energies,
            downtime=self.downtime,
            wall_time=wall,
            meta={
                "payload_bits": node.payload_bits if node is not None else 0,
                "dt": self.engine.dt,
                "stats": self.engine.stats,
                "policy": node.policy.describe() if node is not None else "none",
            },
        )
