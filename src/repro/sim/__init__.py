"""Simulation engines substrate.

Three engines integrate the same :class:`~repro.sim.system.SystemModel`:

* :class:`~repro.sim.newton.NewtonRaphsonEngine` — classical implicit
  transient analysis with per-step Newton-Raphson on the smooth diode
  models.  The CPU-time baseline the paper's reference [4] argues
  against.
* :class:`~repro.sim.state_space.LinearizedStateSpaceEngine` — the
  explicit linearized state-space technique of reference [4]: diodes as
  piecewise-linear resistors, one cached discrete-time update per
  conduction mode, no iteration.
* :class:`~repro.sim.envelope.EnvelopeEngine` — a multi-rate envelope
  engine for mission-scale (minutes-hours) runs: the fast electrical
  dynamics are compressed into an average-charging-current map built
  with the linearized engine, and only the slow store dynamics plus the
  discrete node/controller events are integrated.

:func:`repro.sim.runner.simulate` is the single entry point the rest of
the toolkit uses.
"""

from repro.sim.system import SystemConfig, SystemModel
from repro.sim.results import SimulationResult
from repro.sim.runner import simulate, MissionConfig
from repro.sim.newton import NewtonRaphsonEngine
from repro.sim.state_space import LinearizedStateSpaceEngine
from repro.sim.envelope import EnvelopeEngine, ChargingMap
from repro.sim.batch import EnvelopeBatchEngine, simulate_batch

__all__ = [
    "SystemConfig",
    "SystemModel",
    "SimulationResult",
    "simulate",
    "MissionConfig",
    "NewtonRaphsonEngine",
    "LinearizedStateSpaceEngine",
    "EnvelopeEngine",
    "EnvelopeBatchEngine",
    "simulate_batch",
    "ChargingMap",
]
