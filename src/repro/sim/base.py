"""Common machinery for the full-fidelity transient engines.

Both transient engines step the same :class:`~repro.sim.system.SystemModel`
with a fixed micro step, hold the regulator's load current and the
magnet gap piecewise-constant between mission events, and accumulate
the same energy bookkeeping — all of that lives here so the engines
differ only in *how one micro step is taken*.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.sim.system import SystemModel


@dataclass
class EngineStats:
    """Counters exposed for the CPU-time experiments.

    Attributes:
        n_steps: micro steps taken.
        n_newton_iterations: total NR iterations (NR engine only).
        n_mode_switches: PWL mode changes handled (linearized engine).
        n_matrix_builds: discrete-update or Jacobian factorizations.
    """

    n_steps: int = 0
    n_newton_iterations: int = 0
    n_mode_switches: int = 0
    n_matrix_builds: int = 0
    extra: dict = field(default_factory=dict)


class TransientEngine(ABC):
    """Fixed-step transient integrator over a :class:`SystemModel`.

    Args:
        system: the assembled plant.
        dt: micro time step, s.  The runner picks ``1 / (steps_per_period
            * dominant_frequency)`` by default.
    """

    def __init__(self, system: SystemModel, dt: float):
        if dt <= 0.0:
            raise SimulationError(f"dt must be > 0, got {dt}")
        self.system = system
        self.dt = float(dt)
        self.stats = EngineStats()
        self._t = 0.0
        self._x = system.initial_state()
        self._i_load = 0.0
        gap0 = system.config.resolve_initial_gap()
        self._gap = gap0
        self._k_eff = system.k_eff(gap0)
        self._accel = system.config.vibration.acceleration
        # Energy accumulators (joules).
        self.energy_transduced = 0.0
        self.energy_load_bus = 0.0

    # -- configuration between events -------------------------------------------

    def reset(self, t0: float = 0.0, x0: np.ndarray | None = None) -> None:
        """Rewind to a start time/state (mission start or map builds)."""
        self._t = float(t0)
        self._x = (
            self.system.initial_state() if x0 is None else np.array(x0, dtype=float)
        )
        if self._x.shape != (self.system.state_size,):
            raise SimulationError(
                f"state size {self._x.shape} != {(self.system.state_size,)}"
            )
        self.stats = EngineStats()
        self.energy_transduced = 0.0
        self.energy_load_bus = 0.0
        self._on_state_replaced()

    def set_load_current(self, i_load: float) -> None:
        """Bus current drawn by the regulator until the next change, A."""
        if i_load < 0.0:
            raise SimulationError(f"i_load must be >= 0, got {i_load}")
        self._i_load = float(i_load)

    def set_gap(self, gap: float) -> None:
        """Move the tuning magnet (updates the effective stiffness)."""
        law = self.system.harvester.tuning
        clamped = min(max(gap, law.gap_min), law.gap_max)
        if clamped != self._gap:
            self._gap = clamped
            self._k_eff = self.system.k_eff(clamped)
            self._on_k_eff_changed()

    # -- observation --------------------------------------------------------------

    @property
    def time(self) -> float:
        return self._t

    @property
    def state(self) -> np.ndarray:
        return self._x.copy()

    @property
    def state_view(self) -> np.ndarray:
        """The live state vector, without the defensive copy.

        For read-only observation on hot paths (trace recording reads
        the state every record tick); callers must not mutate it.
        """
        return self._x

    @property
    def gap(self) -> float:
        return self._gap

    @property
    def load_current(self) -> float:
        return self._i_load

    def store_voltage(self) -> float:
        return self.system.store_voltage(self._x)

    def bus_voltage(self) -> float:
        return self.system.bus_voltage(self._x)

    # -- integration -----------------------------------------------------------------

    def step_to(self, t_target: float) -> None:
        """Advance with fixed micro steps until ``t_target``.

        The final step is shortened to land exactly on the target so
        event times are honoured to machine precision.
        """
        if t_target < self._t - 1e-12:
            raise SimulationError(
                f"cannot step backwards: {t_target} < {self._t}"
            )
        while self._t < t_target - 1e-12:
            h = min(self.dt, t_target - self._t)
            p_before = self.system.transduced_power(self._x)
            i_before = self._i_load * self.system.bus_voltage(self._x)
            self._advance(h)
            p_after = self.system.transduced_power(self._x)
            i_after = self._i_load * self.system.bus_voltage(self._x)
            self.energy_transduced += 0.5 * h * (p_before + p_after)
            self.energy_load_bus += 0.5 * h * (i_before + i_after)
            self.stats.n_steps += 1

    @abstractmethod
    def _advance(self, h: float) -> None:
        """Take one micro step of size ``h`` (updates ``_t`` and ``_x``)."""

    def _on_k_eff_changed(self) -> None:
        """Hook for engines that cache stiffness-dependent matrices."""

    def _on_state_replaced(self) -> None:
        """Hook called after :meth:`reset` replaces the state."""
