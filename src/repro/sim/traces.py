"""Simulation trace recording.

A :class:`TraceRecorder` collects named scalar channels at a decimated
cadence (full-fidelity engines step at tens of microseconds; recording
every step would swamp memory for no analytical gain) plus a free-form
event log.  Channels are declared up front so a typo'd channel name is
an immediate error rather than a silently separate series.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SimulationError


class TraceRecorder:
    """Decimated multi-channel scalar recorder.

    Args:
        channels: channel names (recorded together, one row per tick).
        record_dt: minimum spacing between recorded rows, s; 0 records
            every offered sample.
    """

    def __init__(self, channels: Iterable[str], record_dt: float = 0.0):
        names = list(channels)
        if not names:
            raise SimulationError("TraceRecorder needs at least one channel")
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate channel names in {names}")
        if record_dt < 0.0:
            raise SimulationError(f"record_dt must be >= 0, got {record_dt}")
        self._channels = names
        self._record_dt = record_dt
        self._time: list[float] = []
        self._data: dict[str, list[float]] = {name: [] for name in names}
        # Column views in declaration order for the tuple fast path
        # (same list objects as ``_data`` — one storage, two indexes).
        self._columns: list[list[float]] = [self._data[name] for name in names]
        self._events: list[tuple[float, str, str]] = []
        self._next_time = 0.0

    @property
    def channels(self) -> tuple[str, ...]:
        return tuple(self._channels)

    def offer(self, t: float, values: Mapping[str, float], force: bool = False) -> bool:
        """Record a row if the decimation window has elapsed.

        Args:
            t: sample time, s (must not decrease).
            values: one value per declared channel.
            force: record regardless of decimation (used at events and
                at the final instant so features are never missed).

        Returns:
            True if the row was recorded.
        """
        if self._time and t < self._time[-1]:
            raise SimulationError(
                f"trace time went backwards: {t} after {self._time[-1]}"
            )
        if not force and t < self._next_time:
            return False
        missing = [name for name in self._channels if name not in values]
        if missing:
            raise SimulationError(f"missing channels in trace row: {missing}")
        self._time.append(t)
        for name in self._channels:
            self._data[name].append(float(values[name]))
        self._next_time = t + self._record_dt
        return True

    def offer_row(
        self, t: float, values: Sequence[float], force: bool = False
    ) -> bool:
        """Positional fast path of :meth:`offer`.

        ``values`` must follow the declared channel order; skipping the
        per-channel dict construction and membership checks matters on
        per-step record paths (see
        :meth:`repro.sim.runner._FullFidelityMission._record_row`).
        """
        time_axis = self._time
        if time_axis and t < time_axis[-1]:
            raise SimulationError(
                f"trace time went backwards: {t} after {time_axis[-1]}"
            )
        if not force and t < self._next_time:
            return False
        if len(values) != len(self._columns):
            raise SimulationError(
                f"row has {len(values)} values for {len(self._columns)} "
                "channels"
            )
        time_axis.append(t)
        for column, value in zip(self._columns, values):
            column.append(value)
        self._next_time = t + self._record_dt
        return True

    def row_appenders(self):
        """C-level append hooks for trusted per-step record paths.

        Returns ``(time_append, [channel_appends...])`` (channel order
        as declared).  Callers take over :meth:`offer_row`'s contract:
        monotonic times, one float per channel, every channel appended
        per row.  The batched envelope engine records ~1e5 rows per
        batch; skipping the per-row validation is worth it there.
        """
        return self._time.append, [col.append for col in self._columns]

    def log_event(self, t: float, kind: str, info: str = "") -> None:
        """Append to the free-form event log."""
        self._events.append((t, kind, info))

    # -- retrieval -------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return len(self._time)

    def times(self) -> np.ndarray:
        return np.asarray(self._time, dtype=float)

    def channel(self, name: str) -> np.ndarray:
        try:
            return np.asarray(self._data[name], dtype=float)
        except KeyError:
            raise SimulationError(f"unknown trace channel {name!r}") from None

    def as_arrays(self) -> dict[str, np.ndarray]:
        """All channels (plus ``'t'``) as numpy arrays."""
        out = {"t": self.times()}
        for name in self._channels:
            out[name] = self.channel(name)
        return out

    def events(self) -> list[tuple[float, str, str]]:
        return list(self._events)
