"""Multi-rate envelope engine for mission-scale simulation.

The electrical subsystem (67 Hz mechanics, kilohertz rectifier
switching) reaches periodic steady state within tens of milliseconds,
while the supercapacitor voltage evolves over minutes.  The envelope
engine exploits that separation:

1. A :class:`ChargingMap` measures, with the linearized state-space
   engine, the *cycle-averaged* current the rectifier delivers into the
   store as a function of store voltage, excitation frequency and
   amplitude, and magnet gap.  Map points are cached globally — an
   entire DoE study in which only storage size, duty cycling and
   controller settings vary shares one map.
2. The mission is then integrated on the slow axis only:
   ``C dv/dt = I_chg(v; f, a, gap) - v/R_leak - i_regulator`` with the
   node's measurement cycles collapsed to energy withdrawals and the
   controller/actuation logic run as discrete events.

A full mission hour costs milliseconds this way, which is what makes
the "moderate number of simulations" of the DoE flow moderate in
practice.  Benchmark R-A3 quantifies the fidelity given up relative to
the full-fidelity engines on overlapping horizons.
"""

from __future__ import annotations

import hashlib
import math
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.results import SimulationResult
from repro.sim.newton import NewtonRaphsonEngine
from repro.sim.state_space import LinearizedStateSpaceEngine
from repro.sim.system import SystemConfig, SystemModel
from repro.sim.traces import TraceRecorder
from repro.vibration.sources import SineVibration

#: Global cross-mission cache of charging-current grids.  Keyed by a
#: deterministic fingerprint of the full physical identity of the
#: electrical path *except* the bulk storage capacitance (the store
#: behaves as a voltage source on the fast time scale, so C_store does
#: not influence the average charging current — property-tested).
#: Grid contents are measured on a circuit rebuilt around
#: :data:`MAP_CANONICAL_CAPACITANCE`, so each grid is a pure function
#: of its key — independent processes (distributed workers, spawn
#: pools) build bit-identical grids no matter which design point
#: misses the cache first.  Ordered for LRU eviction: the cache is
#: bounded (:func:`set_charging_cache_limit`) so long-lived warm
#: workers sweeping many scenarios cannot leak grids without bound.
_GLOBAL_MAP_CACHE: OrderedDict[str, tuple[np.ndarray, np.ndarray]] = (
    OrderedDict()
)

#: Storage capacitance every charging-map measurement runs with,
#: farads (the canonical supercap's nominal value).  Any fixed value
#: works — the map is C-independent by design — but it must be *one*
#: value, or grids become history-dependent.
MAP_CANONICAL_CAPACITANCE = 0.40

#: Default LRU bound on :data:`_GLOBAL_MAP_CACHE` entries.  Each grid
#: is two small arrays (~hundreds of bytes), so this is generous for
#: any single study while keeping a worker that sweeps scenarios for
#: days at a bounded footprint.
MAP_CACHE_MAX_ENTRIES = 256

#: Store fingerprints of persisted charging maps carry this prefix so
#: they are recognizable next to evaluation-result entries.
MAP_STORE_PREFIX = "charging-map:"

_map_cache_limit = MAP_CACHE_MAX_ENTRIES

#: Lookup accounting for the global grid cache (benchmarks and the
#: study reports surface these; forked workers inherit the parent's
#: counters but their increments stay in the child).  ``hits`` /
#: ``misses`` count global-cache lookups (per-map memoization answers
#: repeated operating points before they reach the global cache);
#: a miss is then satisfied either by ``loaded`` (fetched from the
#: attached map store) or ``built`` (measured locally, and
#: ``published`` to the store when one is attached); ``evictions``
#: counts LRU drops.
_GLOBAL_MAP_STATS = {
    "hits": 0,
    "misses": 0,
    "built": 0,
    "loaded": 0,
    "published": 0,
    "evictions": 0,
}

#: Optional persistence provider for charging-map grids: any object
#: with ``peek(fingerprint) -> dict | None`` and
#: ``persist(fingerprint, dict)`` (the
#: :class:`repro.exec.store.CacheStore` surface, held structurally so
#: the sim layer stays import-free of the exec layer).
_MAP_STORE = None


def clear_charging_cache() -> None:
    """Drop all cached charging-current grids (tests use this)."""
    _GLOBAL_MAP_CACHE.clear()
    for name in _GLOBAL_MAP_STATS:
        _GLOBAL_MAP_STATS[name] = 0


def charging_cache_size() -> int:
    """Number of cached (frequency, amplitude, gap) grid entries."""
    return len(_GLOBAL_MAP_CACHE)


def charging_cache_stats() -> dict[str, int]:
    """Grid-cache counters (hits/misses/built/loaded/published/
    evictions) plus the current ``size``."""
    stats = dict(_GLOBAL_MAP_STATS)
    stats["size"] = len(_GLOBAL_MAP_CACHE)
    return stats


def set_charging_cache_limit(limit: int) -> int:
    """Set the LRU bound on cached grids; returns the previous bound.

    Lowering the bound evicts immediately (oldest first)."""
    if limit < 1:
        raise SimulationError(
            f"charging-cache limit must be >= 1, got {limit}"
        )
    global _map_cache_limit
    previous = _map_cache_limit
    _map_cache_limit = int(limit)
    while len(_GLOBAL_MAP_CACHE) > _map_cache_limit:
        _GLOBAL_MAP_CACHE.popitem(last=False)
        _GLOBAL_MAP_STATS["evictions"] += 1
    return previous


def _cache_insert(
    fingerprint: str, entry: tuple[np.ndarray, np.ndarray]
) -> None:
    _GLOBAL_MAP_CACHE[fingerprint] = entry
    _GLOBAL_MAP_CACHE.move_to_end(fingerprint)
    while len(_GLOBAL_MAP_CACHE) > _map_cache_limit:
        _GLOBAL_MAP_CACHE.popitem(last=False)
        _GLOBAL_MAP_STATS["evictions"] += 1


def map_store_fingerprint(key: tuple) -> str:
    """Deterministic store fingerprint of a grid's structured key.

    The key is primitives only (floats, ints, strings, None, nested
    tuples), and ``repr`` of a float is its shortest round-tripping
    form, so the digest is stable across processes and sessions for
    bit-identical keys — the property the whole fleet-shared map
    store rests on."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return MAP_STORE_PREFIX + digest


def attach_map_store(store) -> None:
    """Persist charging-map grids through ``store`` from now on.

    Grids measured after this call are published to the store, and
    global-cache misses consult the store before re-measuring — a
    fleet sharing one store pays each grid's ~seconds measurement
    once, ever, instead of once per process.  Safe because grids are
    pure functions of their fingerprinted key (see
    :data:`_GLOBAL_MAP_CACHE`).  ``store`` needs only
    ``peek``/``persist`` of ``dict[str, float]`` blobs.  One provider
    is active at a time; the last attach wins."""
    global _MAP_STORE
    _MAP_STORE = store


def detach_map_store() -> None:
    """Stop persisting charging maps (tests and shutdown paths)."""
    global _MAP_STORE
    _MAP_STORE = None


def preload_charging_maps(store) -> int:
    """Load every persisted grid from ``store`` into the global cache.

    Returns the number of grids loaded.  A warm-worker parent calls
    this once before forking so every child is born with the fleet's
    full map inventory in inherited memory."""
    loaded = 0
    for fingerprint, blob in store.items():
        if not str(fingerprint).startswith(MAP_STORE_PREFIX):
            continue
        entry = _decode_grid(blob)
        if entry is None or fingerprint in _GLOBAL_MAP_CACHE:
            continue
        _cache_insert(fingerprint, entry)
        _GLOBAL_MAP_STATS["loaded"] += 1
        loaded += 1
    return loaded


def _encode_grid(entry: tuple[np.ndarray, np.ndarray]) -> dict[str, float]:
    """A grid as the store's ``dict[str, float]`` blob shape.

    JSON's shortest float repr round-trips ``float64`` bit-exactly,
    so a grid fetched back from any store is the grid that was
    published."""
    v_grid, i_grid = entry
    blob: dict[str, float] = {"n": float(len(v_grid))}
    for index in range(len(v_grid)):
        blob[f"v{index}"] = float(v_grid[index])
        blob[f"i{index}"] = float(i_grid[index])
    return blob


def _decode_grid(blob) -> tuple[np.ndarray, np.ndarray] | None:
    """Inverse of :func:`_encode_grid`; None when malformed (a
    corrupt or foreign entry must fall back to measuring, never
    crash the mission)."""
    try:
        n = int(blob["n"])
        if n < 2:
            return None
        v_grid = np.array([float(blob[f"v{k}"]) for k in range(n)])
        i_grid = np.array([float(blob[f"i{k}"]) for k in range(n)])
    except (KeyError, TypeError, ValueError):
        return None
    return (v_grid, i_grid)


def _store_fetch(fingerprint: str) -> tuple[np.ndarray, np.ndarray] | None:
    if _MAP_STORE is None:
        return None
    try:
        blob = _MAP_STORE.peek(fingerprint)
    # Best-effort fetch: an unreadable store means the grid is simply
    # measured locally, exactly as with no store attached.
    except Exception:
        return None
    if blob is None:
        return None
    return _decode_grid(blob)


def _store_publish(
    fingerprint: str, entry: tuple[np.ndarray, np.ndarray]
) -> None:
    if _MAP_STORE is None:
        return
    try:
        _MAP_STORE.persist(fingerprint, _encode_grid(entry))
        _GLOBAL_MAP_STATS["published"] += 1
    # Best-effort publish: a failed persist only costs the fleet a
    # re-measurement elsewhere, never the mission.
    except Exception:
        pass


@dataclass
class EnvelopeOptions:
    """Tuning knobs of the envelope engine.

    Attributes:
        dt_max: largest slow-axis integration chunk, s.
        map_v_points: store voltages per charging-current grid.
        map_nr_warmup_cycles: Newton-Raphson cycles traversing the
            nonlinear startup transient before the linearized engine
            takes over (the PWL model alone can fall into a
            non-pumping equilibrium from cold starts — see the
            fidelity finding in DESIGN.md).
        map_warmup_cycles: further linearized-engine cycles discarded
            before measuring.
        map_measure_cycles: cycles per measurement block.
        map_max_blocks: measurement blocks before accepting the
            estimate unconverged.
        map_steps_per_period: engine resolution for map runs.
        map_engine: ``"hybrid"`` (NR warmup, linearized averaging —
            the default) or ``"newton"`` (NR throughout; required for
            the voltage-multiplier topologies and selected
            automatically for them).
        map_key_mode: ``"mismatch"`` keys grids by (resonance bin,
            frequency-mismatch bin) — the charging current depends
            mainly on how far the excitation sits from resonance, and
            only weakly on the absolute frequency across the 64-78 Hz
            band, so this collapses drifting-source missions onto a
            handful of grids.  ``"absolute"`` keys by (frequency, gap)
            exactly.
        freq_quantum: frequency / mismatch cache bin, Hz.
        resonance_quantum: resonance bin in mismatch mode, Hz.
        amp_quantum: amplitude cache bin, m/s^2.
        gap_quantum: gap cache bin at rest, m.
        gap_motion_quantum: coarser gap bin used while the actuator is
            moving (motion is brief; fine bins would thrash the cache).
    """

    dt_max: float = 0.5
    map_v_points: int = 5
    map_nr_warmup_cycles: int = 6
    map_warmup_cycles: int = 16
    map_measure_cycles: int = 10
    map_max_blocks: int = 6
    map_steps_per_period: int = 100
    map_engine: str = "hybrid"
    map_key_mode: str = "mismatch"
    freq_quantum: float = 0.25
    resonance_quantum: float = 2.0
    amp_quantum: float = 0.02
    gap_quantum: float = 0.25e-3
    gap_motion_quantum: float = 1.0e-3

    def __post_init__(self) -> None:
        if self.dt_max <= 0.0:
            raise SimulationError(f"dt_max must be > 0, got {self.dt_max}")
        if self.map_v_points < 2:
            raise SimulationError("map_v_points must be >= 2")
        for name in (
            "map_warmup_cycles",
            "map_measure_cycles",
            "map_max_blocks",
            "map_steps_per_period",
        ):
            if getattr(self, name) < 1:
                raise SimulationError(f"{name} must be >= 1")


class ChargingMap:
    """Cycle-averaged store-charging current, measured and cached."""

    def __init__(self, config: SystemConfig, options: EnvelopeOptions):
        self.config = config
        self.options = options
        supercap = config.power.supercap
        if supercap is None:
            raise SimulationError(
                "envelope engine requires a storage element in the circuit"
            )
        self.supercap = supercap
        self._v_grid = np.linspace(0.0, supercap.v_rated, options.map_v_points)
        self._map_power, self._map_supercap = self._canonical_power()
        self._physics_key = self._make_physics_key()
        # Operating-point memoization: a mission mostly queries the
        # map at a handful of exact (frequency, amplitude, gap)
        # triples (constant-tone sources: exactly one), yet each
        # ``current`` call used to re-run the binning and the
        # resonance/gap root-finds — ~75% of a warm mission's wall
        # time.  Both memos hold references into the global grid
        # cache, so repeated triples resolve in one dict lookup.
        self._resolve_memo: dict[
            tuple[float, float, float], tuple[np.ndarray, np.ndarray]
        ] = {}
        self._tail_memo: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

    def _canonical_power(self):
        """The circuit map points are measured on: the mission's
        topology rebuilt around a *canonical* storage capacitance.

        The cache key deliberately omits ``C_store`` (on the fast time
        scale the store is a voltage source), so the measurement must
        not depend on it either — otherwise the grid's contents would
        be those of whichever design point happened to miss the cache
        first, and independent processes (distributed workers, spawn
        pools) evaluating different subsets would disagree in the last
        bits.  Pinning the measured circuit's capacitance makes every
        grid a pure function of its key: any process, any evaluation
        order, same bits.  A topology this module cannot rebuild falls
        back to the mission's own circuit, and :meth:`_make_physics_key`
        then keys the grid by the true capacitance instead.
        """
        from repro.power.rectifier import (
            build_bridge_circuit,
            build_multiplier_circuit,
        )
        from repro.power.supercap import Supercapacitor

        power = self.config.power
        sc = self.supercap
        if abs(sc.capacitance - MAP_CANONICAL_CAPACITANCE) < 1e-15:
            return power, sc
        diodes = getattr(power.matrices, "_diodes", ())
        diode = diodes[0].model if diodes else None
        canonical = Supercapacitor(
            capacitance=MAP_CANONICAL_CAPACITANCE,
            esr=sc.esr,
            leakage_resistance=sc.leakage_resistance,
            v_rated=sc.v_rated,
            v_initial=sc.v_initial,
        )
        if power.n_stages >= 1:
            stage = power.extra.get("stage_capacitance")
            if stage is not None:
                return (
                    build_multiplier_circuit(
                        canonical,
                        power.n_stages,
                        diode=diode,
                        stage_capacitance=stage,
                    ),
                    canonical,
                )
        elif power.topology == "bridge":
            return build_bridge_circuit(canonical, diode=diode), canonical
        return power, sc

    def _make_physics_key(self) -> tuple:
        p = self.config.harvester.params
        law = self.config.harvester.tuning
        power = self.config.power
        diode_keys: tuple = ()
        diodes = getattr(power.matrices, "_diodes", ())
        if diodes:
            d0 = diodes[0].model
            diode_keys = (d0.v_on, d0.r_on, d0.g_off)
        return (
            p.mass,
            p.natural_frequency,
            p.damping_ratio,
            p.transduction_factor,
            p.coil_resistance,
            p.coil_inductance,
            p.max_displacement,
            law.f_min,
            law.f_max,
            law.gap_half,
            law.exponent,
            power.topology,
            power.n_stages,
            power.extra.get("stage_capacitance"),
            # Only when the measurement could not be made canonical
            # does the true capacitance partition the cache.
            None
            if self._map_supercap is not self.supercap
            or abs(self.supercap.capacitance - MAP_CANONICAL_CAPACITANCE)
            < 1e-15
            else self.supercap.capacitance,
            diode_keys,
            self.supercap.esr,
            self.supercap.leakage_resistance,
            self.supercap.v_rated,
            self.options.map_v_points,
            self.options.map_warmup_cycles,
            self.options.map_measure_cycles,
            self.options.map_steps_per_period,
            self.options.map_nr_warmup_cycles,
            self.options.map_engine,
            self.options.map_key_mode,
            self.options.resonance_quantum,
        )

    def current(
        self, v_store: float, frequency: float, amplitude: float, gap: float
    ) -> float:
        """Interpolated average charging current at this operating point, A."""
        v_grid, i_grid = self.resolve(frequency, amplitude, gap)
        v = min(max(v_store, v_grid[0]), v_grid[-1])
        return float(np.interp(v, v_grid, i_grid))

    def resolve(
        self, frequency: float, amplitude: float, gap: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """The (v_grid, i_grid) arrays governing this operating point.

        Pure and memoized on the exact argument triple: repeated
        queries (every step of a constant-tone mission) cost one dict
        lookup instead of re-running the binning and the resonance /
        gap root-finds.  The batched engine groups lanes by the
        *identity* of the returned arrays, so lanes sharing a grid
        share one vectorized interpolation."""
        memo_key = (frequency, amplitude, gap)
        entry = self._resolve_memo.get(memo_key)
        if entry is not None:
            return entry
        opt = self.options
        a_bin = round(amplitude / opt.amp_quantum) * opt.amp_quantum
        if opt.map_key_mode == "mismatch":
            harvester = self.config.harvester
            f_res = harvester.resonant_frequency(gap)
            delta = frequency - f_res
            delta_bin = round(delta / opt.freq_quantum) * opt.freq_quantum
            fr_bin = (
                round(f_res / opt.resonance_quantum) * opt.resonance_quantum
            )
            lo, hi = harvester.tuning.achievable_band
            fr_rep = min(max(fr_bin, lo), hi)
            key_tail = ("mismatch", fr_bin, delta_bin, a_bin)
            f_rep = max(fr_rep + delta_bin, opt.freq_quantum)
            gap_rep = harvester.gap_for_frequency(fr_rep)
        else:
            f_bin = max(
                round(frequency / opt.freq_quantum) * opt.freq_quantum,
                opt.freq_quantum,
            )
            g_bin = round(gap / opt.gap_quantum) * opt.gap_quantum
            key_tail = ("absolute", f_bin, a_bin, g_bin)
            f_rep = f_bin
            gap_rep = g_bin
        entry = self._tail_memo.get(key_tail)
        if entry is None:
            entry = self._grid_for(key_tail, f_rep, a_bin, gap_rep)
            self._tail_memo[key_tail] = entry
        if len(self._resolve_memo) >= 8192:
            # Drift missions produce a fresh triple per step; the memo
            # must not outgrow the mission it serves.
            self._resolve_memo.clear()
        self._resolve_memo[memo_key] = entry
        return entry

    def _grid_for(
        self, key_tail: tuple, f_rep: float, a_bin: float, gap_rep: float
    ) -> tuple[np.ndarray, np.ndarray]:
        fingerprint = map_store_fingerprint((self._physics_key, key_tail))
        hit = _GLOBAL_MAP_CACHE.get(fingerprint)
        if hit is not None:
            _GLOBAL_MAP_STATS["hits"] += 1
            _GLOBAL_MAP_CACHE.move_to_end(fingerprint)
            return hit
        _GLOBAL_MAP_STATS["misses"] += 1
        entry = _store_fetch(fingerprint)
        if entry is not None:
            _GLOBAL_MAP_STATS["loaded"] += 1
        else:
            currents = np.array(
                [
                    self._measure(float(v), f_rep, a_bin, gap_rep)
                    for v in self._v_grid
                ]
            )
            entry = (self._v_grid.copy(), currents)
            _GLOBAL_MAP_STATS["built"] += 1
            _store_publish(fingerprint, entry)
        _cache_insert(fingerprint, entry)
        return entry

    def _measure(
        self, v_store: float, frequency: float, amplitude: float, gap: float
    ) -> float:
        """One map point: warm-started transient run, averaged current.

        A short Newton-Raphson segment carries the system through the
        nonlinear startup transient (diode biasing, resonance build-up),
        then the linearized engine performs the long periodic averaging
        — unless the topology demands Newton throughout (multiplier
        ladders; see DESIGN.md).
        """
        opt = self.options
        if amplitude <= 0.0:
            # No excitation: only leakage acts; the charging current as
            # defined (rectifier current into the store) is zero.
            return 0.0
        bare = SystemConfig(
            harvester=self.config.harvester,
            power=self._map_power,
            regulator=self.config.regulator,
            node=None,
            controller=None,
            vibration=SineVibration(amplitude=amplitude, frequency=frequency),
            initial_gap=gap,
        )
        system = SystemModel(bare)
        period = 1.0 / frequency
        dt = period / opt.map_steps_per_period
        newton_only = (
            opt.map_engine == "newton" or self._map_power.n_stages >= 1
        )
        x0 = self._warm_initial_state(system, v_store)
        nr = NewtonRaphsonEngine(system, dt)
        nr.reset(0.0, x0)
        nr.set_load_current(0.0)
        nr_cycles = (
            opt.map_nr_warmup_cycles + opt.map_warmup_cycles
            if newton_only
            else opt.map_nr_warmup_cycles
        )
        nr.step_to(nr_cycles * period)
        if newton_only:
            engine: NewtonRaphsonEngine | LinearizedStateSpaceEngine = nr
        else:
            engine = LinearizedStateSpaceEngine(system, dt)
            engine.reset(nr.time, nr.state)
            engine.set_load_current(0.0)
            engine.step_to(nr.time + opt.map_warmup_cycles * period)
        cap = self._map_supercap.capacitance
        r_leak = self._map_supercap.leakage_resistance
        estimate = 0.0
        previous: float | None = None
        for _ in range(opt.map_max_blocks):
            t1 = engine.time
            v1 = engine.store_voltage()
            engine.step_to(t1 + opt.map_measure_cycles * period)
            v2 = engine.store_voltage()
            span = engine.time - t1
            estimate = cap * (v2 - v1) / span + 0.5 * (v1 + v2) / r_leak
            if previous is not None and abs(estimate - previous) <= max(
                0.02 * abs(estimate), 1e-9
            ):
                break
            previous = estimate
        return estimate

    def _warm_initial_state(
        self, system: SystemModel, v_store: float
    ) -> np.ndarray:
        """Initial state pre-biased near periodic steady state.

        Two slow transients dominate a cold start and are seeded away:

        * the Cockcroft-Walton pump capacitors bias up through the
          coil's kilohm source impedance over seconds — the ladder
          nodes are set on their steady DC profile (even node ``2j`` at
          ``j/n`` of the store voltage, each odd push node riding at
          its lower even neighbour's DC);
        * the high-Q resonator takes ~3Q cycles to build amplitude —
          the mechanical state is seeded with the open-circuit phasor
          solution at the excitation frequency.
        """
        x = system.initial_state()
        names = system.matrices.node_names
        n_stages = system.power.n_stages
        x[3 + names[system.power.bus_node] - 1] = v_store
        if system.power.store_node is not None:
            x[3 + names[system.power.store_node] - 1] = v_store
        if n_stages >= 1:
            for k in range(1, 2 * n_stages):
                name = f"x{k}"
                if name in names:
                    stage_dc = v_store * (k // 2) / n_stages
                    x[3 + names[name] - 1] = stage_dc
        # Mechanical phasor seed (open-circuit approximation):
        # z'' + 2 zeta w_n z' + w_n^2 z = -A sin(w t).
        source = system.config.vibration
        w = 2.0 * math.pi * max(source.dominant_frequency(0.0), 1e-3)
        amp = source.amplitude(0.0)
        p = system.harvester.params
        gap = system.config.resolve_initial_gap()
        w_n = math.sqrt(system.k_eff(gap) / p.mass)
        zeta = p.parasitic_damping / (2.0 * p.mass * w_n)
        denom = complex(w_n**2 - w**2, 2.0 * zeta * w_n * w)
        z_hat = -amp / denom
        x[0] = z_hat.imag
        x[1] = w * z_hat.real
        return x


@dataclass
class _Actuation:
    """An in-flight magnet move."""

    t_start: float
    t_done: float
    gap_from: float
    gap_to: float


class EnvelopeEngine:
    """Mission-scale engine driving the slow store dynamics and events.

    Args:
        config: the complete system (node and controller optional).
        options: envelope tuning knobs.
    """

    def __init__(self, config: SystemConfig, options: EnvelopeOptions | None = None):
        self.config = config
        self.options = options if options is not None else EnvelopeOptions()
        if config.power.supercap is None:
            raise SimulationError(
                "envelope engine requires a storage element in the circuit"
            )
        self.map = ChargingMap(config, self.options)

    def run(self, t_end: float, record_dt: float = 1.0) -> SimulationResult:
        """Simulate a mission of ``t_end`` seconds."""
        if t_end <= 0.0:
            raise SimulationError(f"t_end must be > 0, got {t_end}")
        if record_dt <= 0.0:
            raise SimulationError(f"record_dt must be > 0, got {record_dt}")
        started = time.perf_counter()
        cfg = self.config
        supercap = cfg.power.supercap
        reg = cfg.regulator
        node = cfg.node
        controller = cfg.controller
        source = cfg.vibration
        harvester = cfg.harvester
        cap = supercap.capacitance
        r_leak = supercap.leakage_resistance

        v = supercap.v_initial
        gap = cfg.resolve_initial_gap()
        enabled = v >= reg.v_restart
        epoch = 0
        if node is not None:
            node.policy.reset()
        queue = EventQueue()
        if node is not None and enabled:
            queue.push(0.0, "measure", epoch)
        if controller is not None:
            queue.push(controller.first_check, "check")

        recorder = TraceRecorder(
            [
                "v_store",
                "f_dom",
                "f_res",
                "gap",
                "enabled",
                "packets",
                "downtime",
            ],
            record_dt=0.0,
        )
        counters = {
            "packets_delivered": 0.0,
            "retunes": 0.0,
            "controller_checks": 0.0,
            "brownout_events": 0.0,
            "overvoltage_clips": 0.0,
        }
        energies = {"harvested": 0.0, "node": 0.0, "tuning": 0.0, "leakage": 0.0}
        downtime = 0.0
        actuation: _Actuation | None = None
        t = 0.0
        next_record = 0.0
        eps = 1e-9

        def gap_now(at: float) -> float:
            if actuation is None:
                return gap
            return harvester.actuator.gap_trajectory(
                actuation.gap_from, actuation.gap_to, at - actuation.t_start
            )

        def record_row(at: float) -> None:
            g = gap_now(at)
            recorder.offer(
                at,
                {
                    "v_store": v,
                    "f_dom": source.dominant_frequency(at),
                    "f_res": harvester.resonant_frequency(g),
                    "gap": g,
                    "enabled": 1.0 if enabled else 0.0,
                    "packets": counters["packets_delivered"],
                    "downtime": downtime,
                },
                force=True,
            )

        def withdraw(amount_store_side: float) -> None:
            nonlocal v
            v = math.sqrt(max(v * v - 2.0 * amount_store_side / cap, 0.0))

        while t < t_end - eps:
            t_event = queue.peek_time()
            t_next = min(
                t_event if t_event is not None else math.inf,
                next_record,
                t_end,
            )
            # ---- integrate the slow axis to t_next --------------------------
            while t < t_next - eps:
                h = min(self.options.dt_max, t_next - t)
                t_mid = t + 0.5 * h
                f_dom = source.dominant_frequency(t_mid)
                amp = source.amplitude(t_mid)
                g = gap_now(t_mid)
                if actuation is not None:
                    quantum = self.options.gap_motion_quantum
                    g = round(g / quantum) * quantum
                    law = harvester.tuning
                    g = min(max(g, law.gap_min), law.gap_max)
                moving = actuation is not None
                p_rail = 0.0
                if enabled and node is not None:
                    p_rail += node.sleep_power
                if moving:
                    p_rail += harvester.actuator.moving_power
                i_in = reg.input_current(p_rail, v) if enabled else 0.0

                def dv_dt(volts: float) -> float:
                    i_chg = self.map.current(volts, f_dom, amp, g)
                    return (i_chg - volts / r_leak - i_in) / cap

                k1 = dv_dt(v)
                v_mid = max(v + 0.5 * h * k1, 0.0)
                k2 = dv_dt(v_mid)
                v_new = v + h * k2
                if v_new > supercap.v_rated:
                    v_new = supercap.v_rated
                    counters["overvoltage_clips"] += 1.0
                v_new = max(v_new, 0.0)
                # Energy ledger at the midpoint operating point.
                i_chg_mid = self.map.current(v_mid, f_dom, amp, g)
                energies["harvested"] += i_chg_mid * v_mid * h
                energies["leakage"] += (v_mid**2 / r_leak) * h
                rail_energy = i_in * v_mid * h
                if moving and p_rail > 0.0:
                    motor_share = harvester.actuator.moving_power / p_rail
                    energies["tuning"] += rail_energy * motor_share
                    energies["node"] += rail_energy * (1.0 - motor_share)
                else:
                    energies["node"] += rail_energy
                v = v_new
                t += h
                if not enabled:
                    downtime += h
                # ---- regulator state machine --------------------------------
                if enabled and v < reg.v_brownout:
                    enabled = False
                    counters["brownout_events"] += 1.0
                    epoch += 1
                    recorder.log_event(t, "brownout", f"v={v:.3f}")
                    if actuation is not None:
                        gap = gap_now(t)
                        actuation = None
                        recorder.log_event(t, "retune_aborted", "")
                elif not enabled and v >= reg.v_restart:
                    enabled = True
                    recorder.log_event(t, "restart", f"v={v:.3f}")
                    if node is not None:
                        node.policy.reset()
                        queue.push(t, "measure", epoch)
                # ---- actuation completion -----------------------------------
                if actuation is not None and t >= actuation.t_done - eps:
                    gap = actuation.gap_to
                    actuation = None
                    recorder.log_event(t, "retune_done", f"gap={gap * 1e3:.2f}mm")
            # ---- recording ---------------------------------------------------
            if t >= next_record - eps:
                record_row(t)
                next_record += record_dt
            # ---- discrete events ----------------------------------------------
            while queue and queue.peek_time() is not None and queue.peek_time() <= t + eps:
                event = queue.pop()
                if event.kind == "measure":
                    if (
                        node is None
                        or event.payload != epoch
                        or not enabled
                    ):
                        continue
                    e_store = node.cycle_energy / reg.efficiency
                    withdraw(e_store)
                    energies["node"] += e_store
                    counters["packets_delivered"] += 1.0
                    period = node.policy.next_period(v, t)
                    queue.push(t + period, "measure", epoch)
                elif event.kind == "check":
                    if controller is None:
                        continue
                    queue.push(t + controller.check_interval, "check")
                    if not enabled:
                        continue
                    counters["controller_checks"] += 1.0
                    e_meas = controller.measurement_energy / reg.efficiency
                    withdraw(e_meas)
                    energies["tuning"] += e_meas
                    decision = controller.decide(t, source, harvester, gap)
                    recorder.log_event(
                        t,
                        "check",
                        f"f_est={decision.f_estimate:.2f} retune={decision.retune}",
                    )
                    if decision.retune and actuation is None:
                        duration, energy = harvester.retune_cost(
                            gap, decision.target_gap
                        )
                        overhead = harvester.actuator.overhead_energy / reg.efficiency
                        withdraw(overhead)
                        energies["tuning"] += overhead
                        actuation = _Actuation(
                            t_start=t,
                            t_done=t + duration,
                            gap_from=gap,
                            gap_to=decision.target_gap,
                        )
                        counters["retunes"] += 1.0
                        recorder.log_event(
                            t,
                            "retune_start",
                            f"to {decision.target_gap * 1e3:.2f}mm "
                            f"({duration:.0f}s, {energy * 1e3:.1f}mJ)",
                        )
                        del energy  # booked continuously via motor power

        record_row(t_end)
        wall = time.perf_counter() - started
        return SimulationResult(
            engine="envelope",
            t_end=t_end,
            traces=recorder.as_arrays(),
            events=recorder.events(),
            counters=counters,
            energies=energies,
            downtime=downtime,
            wall_time=wall,
            meta={
                "payload_bits": node.payload_bits if node is not None else 0,
                "record_dt": record_dt,
                "policy": node.policy.describe() if node is not None else "none",
            },
        )
