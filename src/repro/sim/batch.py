"""Vectorized batch integration of envelope missions.

:class:`EnvelopeBatchEngine` advances a whole batch of independent
design points in lockstep: the slow-axis RK2 store integration runs as
NumPy elementwise arithmetic over per-lane state vectors, while the
mission layer (records, discrete events, regulator transitions,
actuations) stays per-lane scalar code executed only when a lane's
masks fire.  The payoff is one interpreter round per *step of the
whole batch* instead of per step of each mission — on the canonical
study every lane additionally shares a single charging-map grid, so a
step costs a handful of vector operations regardless of batch width.

Bit-identity with :class:`~repro.sim.envelope.EnvelopeEngine` is a
hard contract, not an aspiration (the evaluation cache and the
distributed substrate both fingerprint responses):

* IEEE-754 elementwise operations (+, -, *, /, ``maximum``) produce
  the same bits whether evaluated by the Python scalar interpreter or
  by a NumPy vector loop, provided the *expression trees* match — so
  every formula below replicates the scalar engine's expression
  exactly, term for term, in evaluation order.
* ``np.interp`` is an elementwise C loop over its inputs (with and
  without its slope-precomputation fast path the per-element
  arithmetic is the same expression), so one vectorized call over a
  shared grid equals per-lane scalar calls.
* Per-lane accumulators (energies, downtime, counters) receive their
  contributions in the same time order as the scalar engine, so
  float addition non-associativity never bites.
* Charging-map grids are pure functions of their cache key
  (measured on the canonical capacitance), so cache-miss *order* —
  which differs between batched and per-point execution — cannot
  change grid contents.

The property test suite (``tests/test_sim_batch.py``) pins the
contract across topologies and map key modes.

Configs in one batch must not share mutable mission state — each lane
needs its own node (policy), controller and supercap instances, which
is how :class:`~repro.core.toolkit.SensorNodeDesignToolkit` builds
them.  Sharing the (stateless) harvester and vibration source across
lanes is fine and encouraged.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.errors import SimulationError
from repro.sim.envelope import ChargingMap, EnvelopeOptions, _Actuation
from repro.sim.events import EventQueue
from repro.sim.results import SimulationResult
from repro.sim.system import SystemConfig
from repro.sim.traces import TraceRecorder
from repro.vibration.sources import SineVibration

_EPS = 1e-9

#: Trace channels, in the scalar engine's declaration order.
_CHANNELS = (
    "v_store",
    "f_dom",
    "f_res",
    "gap",
    "enabled",
    "packets",
    "downtime",
)


class _Lane:
    """One mission's scalar-side state inside a batch.

    Everything the scalar engine keeps in locals/closures lives here;
    the vectorized driver syncs ``t``/``v``/accumulators down before
    running any scalar-side handler and back up afterwards.  The
    handler bodies replicate :meth:`EnvelopeEngine.run` verbatim so
    the per-lane operation sequence is the scalar engine's.
    """

    def __init__(
        self,
        index: int,
        config: SystemConfig,
        options: EnvelopeOptions,
        t_end: float,
        record_dt: float,
    ):
        self.index = index
        self.config = config
        self.options = options
        if config.power.supercap is None:
            raise SimulationError(
                "envelope engine requires a storage element in the circuit"
            )
        self.map = ChargingMap(config, options)
        self.supercap = config.power.supercap
        self.reg = config.regulator
        self.node = config.node
        self.controller = config.controller
        self.source = config.vibration
        self.harvester = config.harvester
        self.cap = self.supercap.capacitance
        self.r_leak = self.supercap.leakage_resistance
        self.t_end = t_end
        self.record_dt = record_dt
        self.stationary = isinstance(self.source, SineVibration)

        self.v = self.supercap.v_initial
        self.gap = config.resolve_initial_gap()
        self.enabled = self.v >= self.reg.v_restart
        self.epoch = 0
        if self.node is not None:
            self.node.policy.reset()
        self.queue = EventQueue()
        if self.node is not None and self.enabled:
            self.queue.push(0.0, "measure", self.epoch)
        if self.controller is not None:
            self.queue.push(self.controller.first_check, "check")
        self.recorder = TraceRecorder(list(_CHANNELS), record_dt=0.0)
        self.counters = {
            "packets_delivered": 0.0,
            "retunes": 0.0,
            "controller_checks": 0.0,
            "brownout_events": 0.0,
            "overvoltage_clips": 0.0,
        }
        self.energies = {
            "harvested": 0.0,
            "node": 0.0,
            "tuning": 0.0,
            "leakage": 0.0,
        }
        self.downtime = 0.0
        self.actuation: _Actuation | None = None
        self.t = 0.0
        self.next_record = 0.0
        self.t_next = 0.0
        self.finished = False
        self._fres_memo: dict[float, float] = {}
        self._append_time, self._append_cols = self.recorder.row_appenders()
        # A stationary tone's dominant frequency is one stored float;
        # hoisting it spares a method call per recorded row.
        self._f_dom0 = (
            self.source.dominant_frequency(0.0) if self.stationary else 0.0
        )

    # -- scalar helpers (the scalar engine's closures) ----------------------

    def _f_res(self, gap: float) -> float:
        # resonant_frequency is pure; memoizing per gap only removes
        # repeated root-finds from the record path, never changes a
        # recorded value.
        value = self._fres_memo.get(gap)
        if value is None:
            value = self.harvester.resonant_frequency(gap)
            self._fres_memo[gap] = value
        return value

    def gap_now(self, at: float) -> float:
        if self.actuation is None:
            return self.gap
        return self.harvester.actuator.gap_trajectory(
            self.actuation.gap_from,
            self.actuation.gap_to,
            at - self.actuation.t_start,
        )

    def record_row(self, at: float) -> None:
        # Direct-append fast path of the scalar engine's record_row:
        # same values (dominant_frequency of a stationary tone is a
        # constant; resonant_frequency is pure, memoized per gap) in
        # the same channel order, ~1e5 rows per batch.
        g = self.gap if self.actuation is None else self.gap_now(at)
        f_res = self._fres_memo.get(g)
        if f_res is None:
            f_res = self.harvester.resonant_frequency(g)
            self._fres_memo[g] = f_res
        self._append_time(at)
        cols = self._append_cols
        cols[0](self.v)
        cols[1](
            self._f_dom0
            if self.stationary
            else self.source.dominant_frequency(at)
        )
        cols[2](f_res)
        cols[3](g)
        cols[4](1.0 if self.enabled else 0.0)
        cols[5](self.counters["packets_delivered"])
        cols[6](self.downtime)

    def withdraw(self, amount_store_side: float) -> None:
        self.v = math.sqrt(
            max(self.v * self.v - 2.0 * amount_store_side / self.cap, 0.0)
        )

    # -- operating point ----------------------------------------------------

    def sample_operating_point(self, t_mid: float) -> tuple[float, float, float]:
        """The (f_dom, amp, gap) triple the scalar engine would feed
        ``map.current`` for a step whose midpoint is ``t_mid``."""
        f_dom = self.source.dominant_frequency(t_mid)
        amp = self.source.amplitude(t_mid)
        g = self.gap_now(t_mid)
        if self.actuation is not None:
            quantum = self.options.gap_motion_quantum
            g = round(g / quantum) * quantum
            law = self.harvester.tuning
            g = min(max(g, law.gap_min), law.gap_max)
        return f_dom, amp, g

    # -- per-step scalar-side handlers (rarely-firing branches) -------------

    def regulator_step(self) -> None:
        """The brownout/restart state machine after one step; verbatim
        from the scalar engine (called only when the vector masks say
        one of the branches fires)."""
        if self.enabled and self.v < self.reg.v_brownout:
            self.enabled = False
            self.counters["brownout_events"] += 1.0
            self.epoch += 1
            self.recorder.log_event(self.t, "brownout", f"v={self.v:.3f}")
            if self.actuation is not None:
                self.gap = self.gap_now(self.t)
                self.actuation = None
                self.recorder.log_event(self.t, "retune_aborted", "")
        elif not self.enabled and self.v >= self.reg.v_restart:
            self.enabled = True
            self.recorder.log_event(self.t, "restart", f"v={self.v:.3f}")
            if self.node is not None:
                self.node.policy.reset()
                self.queue.push(self.t, "measure", self.epoch)

    def actuation_step(self) -> None:
        """Actuation completion check after one step; verbatim."""
        if self.actuation is not None and self.t >= self.actuation.t_done - _EPS:
            self.gap = self.actuation.gap_to
            self.actuation = None
            self.recorder.log_event(
                self.t, "retune_done", f"gap={self.gap * 1e3:.2f}mm"
            )

    # -- segment machinery ---------------------------------------------------

    def post_segment(self) -> None:
        """Recording + discrete events at a segment boundary; verbatim
        from the scalar engine's outer loop tail."""
        if self.t >= self.next_record - _EPS:
            self.record_row(self.t)
            self.next_record += self.record_dt
        queue = self.queue
        while queue:
            t_event = queue.peek_time()
            if t_event is None or t_event > self.t + _EPS:
                break
            event = queue.pop()
            if event.kind == "measure":
                node = self.node
                if (
                    node is None
                    or event.payload != self.epoch
                    or not self.enabled
                ):
                    continue
                e_store = node.cycle_energy / self.reg.efficiency
                self.withdraw(e_store)
                self.energies["node"] += e_store
                self.counters["packets_delivered"] += 1.0
                period = node.policy.next_period(self.v, self.t)
                queue.push(self.t + period, "measure", self.epoch)
            elif event.kind == "check":
                controller = self.controller
                if controller is None:
                    continue
                queue.push(self.t + controller.check_interval, "check")
                if not self.enabled:
                    continue
                self.counters["controller_checks"] += 1.0
                e_meas = controller.measurement_energy / self.reg.efficiency
                self.withdraw(e_meas)
                self.energies["tuning"] += e_meas
                decision = controller.decide(
                    self.t, self.source, self.harvester, self.gap
                )
                self.recorder.log_event(
                    self.t,
                    "check",
                    f"f_est={decision.f_estimate:.2f} "
                    f"retune={decision.retune}",
                )
                if decision.retune and self.actuation is None:
                    duration, energy = self.harvester.retune_cost(
                        self.gap, decision.target_gap
                    )
                    overhead = (
                        self.harvester.actuator.overhead_energy
                        / self.reg.efficiency
                    )
                    self.withdraw(overhead)
                    self.energies["tuning"] += overhead
                    self.actuation = _Actuation(
                        t_start=self.t,
                        t_done=self.t + duration,
                        gap_from=self.gap,
                        gap_to=decision.target_gap,
                    )
                    self.counters["retunes"] += 1.0
                    self.recorder.log_event(
                        self.t,
                        "retune_start",
                        f"to {decision.target_gap * 1e3:.2f}mm "
                        f"({duration:.0f}s, {energy * 1e3:.1f}mJ)",
                    )
                    del energy  # booked continuously via motor power

    def advance_segments(self) -> None:
        """Run zero-length segments (records/events) until the lane
        either enters a real integration segment or finishes.

        Mirrors the scalar outer loop: each iteration re-derives
        ``t_next`` from the event queue / record tick / mission end,
        and when no integration is possible the boundary work runs
        immediately."""
        while True:
            if self.t >= self.t_end - _EPS:
                self.record_row(self.t_end)
                self.finished = True
                return
            t_event = self.queue.peek_time()
            self.t_next = min(
                t_event if t_event is not None else math.inf,
                self.next_record,
                self.t_end,
            )
            if self.t < self.t_next - _EPS:
                return
            self.post_segment()

    def result(self, wall_time: float) -> SimulationResult:
        node = self.node
        return SimulationResult(
            engine="envelope",
            t_end=self.t_end,
            traces=self.recorder.as_arrays(),
            events=self.recorder.events(),
            counters=self.counters,
            energies=self.energies,
            downtime=self.downtime,
            wall_time=wall_time,
            meta={
                "payload_bits": node.payload_bits if node is not None else 0,
                "record_dt": self.record_dt,
                "policy": (
                    node.policy.describe() if node is not None else "none"
                ),
            },
        )


class EnvelopeBatchEngine:
    """Lockstep vectorized mission integration over a batch of configs.

    Args:
        configs: one :class:`SystemConfig` per lane (no shared node /
            controller / supercap instances between lanes).
        options: envelope tuning knobs shared by the batch.
    """

    def __init__(
        self,
        configs: list[SystemConfig] | tuple[SystemConfig, ...],
        options: EnvelopeOptions | None = None,
    ):
        self.configs = list(configs)
        if not self.configs:
            raise SimulationError("batch needs at least one config")
        # Lanes integrate interleaved, so mutable per-mission state
        # (node policy phase, controller estimate, store element)
        # must not alias across configs — sharing works serially only
        # because each mission resets it at start.  Harvester and
        # vibration sharing is fine (read-only during a mission) and
        # is the toolkit's production pattern.
        seen: dict[int, str] = {}
        for config in self.configs:
            for part in (config.node, config.controller, config.power.supercap):
                if part is None:
                    continue
                if id(part) in seen:
                    raise SimulationError(
                        "batched configs share a mutable "
                        f"{type(part).__name__} instance; build each "
                        "lane's node/controller/storage fresh"
                    )
                seen[id(part)] = type(part).__name__
        self.options = options if options is not None else EnvelopeOptions()

    def run(
        self,
        t_end: float,
        record_dt: float = 1.0,
        tick=None,
    ) -> list[SimulationResult]:
        """Simulate every lane's mission of ``t_end`` seconds.

        ``tick``, when given, is called with no arguments once per
        vectorized step round — workers hang lease heartbeats on it.
        """
        if t_end <= 0.0:
            raise SimulationError(f"t_end must be > 0, got {t_end}")
        if record_dt <= 0.0:
            raise SimulationError(f"record_dt must be > 0, got {record_dt}")
        started = time.perf_counter()
        opt = self.options
        lanes = [
            _Lane(i, config, opt, t_end, record_dt)
            for i, config in enumerate(self.configs)
        ]
        for lane in lanes:
            lane.advance_segments()

        n_total = len(lanes)
        dt_max = opt.dt_max
        # Lanes still integrating.  Finished lanes are *compacted out*
        # of every vector rather than masked: all lanes share one
        # ``t_end``, so the whole batch runs unmasked until the final
        # rounds, and the steady-state step carries zero mask traffic.
        active = [lane for lane in lanes if not lane.finished]

        # Per-lane constants over the active set.
        cap = np.array([lane.cap for lane in active])
        r_leak = np.array([lane.r_leak for lane in active])
        v_rated = np.array([lane.supercap.v_rated for lane in active])
        vbrown = np.array([lane.reg.v_brownout for lane in active])
        vrestart = np.array([lane.reg.v_restart for lane in active])
        eta = np.array([lane.reg.efficiency for lane in active])
        iq = np.array([lane.reg.quiescent_current for lane in active])
        sleep_power = np.array(
            [
                lane.node.sleep_power if lane.node is not None else 0.0
                for lane in active
            ]
        )
        has_node = np.array([lane.node is not None for lane in active])
        moving_power = np.array(
            [lane.harvester.actuator.moving_power for lane in active]
        )
        nonstationary = np.array([not lane.stationary for lane in active])

        # Mutable vector state (authoritative between boundaries).
        t = np.array([lane.t for lane in active])
        v = np.array([lane.v for lane in active])
        t_next = np.array([lane.t_next for lane in active])
        enabled = np.array([lane.enabled for lane in active])
        moving = np.array([lane.actuation is not None for lane in active])
        act_done = np.array(
            [
                lane.actuation.t_done if lane.actuation is not None else math.inf
                for lane in active
            ]
        )
        downtime = np.array([lane.downtime for lane in active])
        e_harv = np.array([lane.energies["harvested"] for lane in active])
        e_node = np.array([lane.energies["node"] for lane in active])
        e_tune = np.array([lane.energies["tuning"] for lane in active])
        e_leak = np.array([lane.energies["leakage"] for lane in active])
        ov_clips = np.array(
            [lane.counters["overvoltage_clips"] for lane in active]
        )

        # Operating point per lane + resolved grid entries.  Static
        # lanes (stationary tone, no actuation in flight) keep theirs
        # until something changes; dynamic lanes refresh per step.
        n_active = len(active)
        op_f = np.zeros(n_active)
        op_a = np.zeros(n_active)
        op_g = np.zeros(n_active)
        grid_lo = np.zeros(n_active)
        grid_hi = np.zeros(n_active)
        entries: list[tuple[np.ndarray, np.ndarray] | None] = [None] * n_active
        groups: list[tuple[np.ndarray, np.ndarray, np.ndarray | None]] = []
        groups_dirty = True

        def sync_pos(p: int, lane: _Lane) -> None:
            """Position-only sync for the regulator / actuation
            handlers (they read ``t``/``v``, never accumulators)."""
            lane.t = float(t[p])
            lane.v = float(v[p])

        def sync_boundary(p: int, lane: _Lane) -> None:
            """Everything a segment boundary (record + events) reads
            or mutates.  ``harvested``/``leakage``/clip counters are
            write-only until the mission ends — see ``sync_final``."""
            lane.t = float(t[p])
            lane.v = float(v[p])
            lane.downtime = float(downtime[p])
            lane.energies["node"] = float(e_node[p])
            lane.energies["tuning"] = float(e_tune[p])

        def sync_final(p: int, lane: _Lane) -> None:
            lane.energies["harvested"] = float(e_harv[p])
            lane.energies["leakage"] = float(e_leak[p])
            lane.counters["overvoltage_clips"] = float(ov_clips[p])

        def refresh_static(p: int, lane: _Lane) -> None:
            """(Re)resolve a static lane's constant operating point."""
            f_dom, amp, g = lane.sample_operating_point(lane.t)
            op_f[p], op_a[p], op_g[p] = f_dom, amp, g
            entry = lane.map.resolve(f_dom, amp, g)
            entries[p] = entry
            grid_lo[p] = entry[0][0]
            grid_hi[p] = entry[0][-1]

        dynamic_exists = bool(nonstationary.any())
        for p, lane in enumerate(active):
            refresh_static(p, lane)

        while active:
            if tick is not None:
                tick()
            h = np.minimum(dt_max, t_next - t)
            t_mid = t + 0.5 * h
            # Dynamic lanes: drifting source or mid-actuation gap —
            # their operating point depends on this step's midpoint.
            if dynamic_exists or moving.any():
                for p in np.flatnonzero(moving | nonstationary):
                    lane = active[p]
                    f_dom, amp, g = lane.sample_operating_point(
                        float(t_mid[p])
                    )
                    if f_dom != op_f[p] or amp != op_a[p] or g != op_g[p]:
                        op_f[p], op_a[p], op_g[p] = f_dom, amp, g
                        entry = lane.map.resolve(f_dom, amp, g)
                        entries[p] = entry
                        grid_lo[p] = entry[0][0]
                        grid_hi[p] = entry[0][-1]
                        groups_dirty = True
            if groups_dirty:
                by_grid: dict[int, list[int]] = {}
                grids: dict[int, tuple[np.ndarray, np.ndarray]] = {}
                for p, entry in enumerate(entries):
                    key = id(entry)
                    by_grid.setdefault(key, []).append(p)
                    grids[key] = entry
                if len(by_grid) == 1:
                    entry = next(iter(grids.values()))
                    groups = [(entry[0], entry[1], None)]
                else:
                    groups = [
                        (grids[key][0], grids[key][1], np.array(members))
                        for key, members in by_grid.items()
                    ]
                groups_dirty = False

            # ---- RK2 midpoint step, expression for expression the
            # ---- scalar engine's ----------------------------------
            p_rail = np.where(enabled & has_node, sleep_power, 0.0) + np.where(
                moving, moving_power, 0.0
            )
            i_in = np.where(
                enabled,
                p_rail / (eta * np.maximum(v, vbrown)) + iq,
                0.0,
            )
            vq = np.minimum(np.maximum(v, grid_lo), grid_hi)
            if len(groups) == 1:
                v_grid, i_grid, _ = groups[0]
                i_chg1 = np.interp(vq, v_grid, i_grid)
            else:
                i_chg1 = np.empty(len(active))
                for v_grid, i_grid, members in groups:
                    i_chg1[members] = np.interp(vq[members], v_grid, i_grid)
            k1 = (i_chg1 - v / r_leak - i_in) / cap
            v_mid = np.maximum(v + 0.5 * h * k1, 0.0)
            vq_mid = np.minimum(np.maximum(v_mid, grid_lo), grid_hi)
            if len(groups) == 1:
                v_grid, i_grid, _ = groups[0]
                i_chg2 = np.interp(vq_mid, v_grid, i_grid)
            else:
                i_chg2 = np.empty(len(active))
                for v_grid, i_grid, members in groups:
                    i_chg2[members] = np.interp(
                        vq_mid[members], v_grid, i_grid
                    )
            k2 = (i_chg2 - v_mid / r_leak - i_in) / cap
            v_new = v + h * k2
            clip = v_new > v_rated
            if clip.any():
                ov_clips += np.where(clip, 1.0, 0.0)
                v_new = np.where(clip, v_rated, v_new)
            v_new = np.maximum(v_new, 0.0)
            # Energy ledger at the midpoint operating point.  The
            # scalar engine re-queries the map at (v_mid, f, a, g) for
            # i_chg_mid — the identical call that produced k2's
            # charging current, so its value is reused, bit for bit.
            e_harv += i_chg2 * v_mid * h
            e_leak += (v_mid**2 / r_leak) * h
            rail_energy = i_in * v_mid * h
            if moving.any():
                e_node += np.where(moving, 0.0, rail_energy)
                for p in np.flatnonzero(moving):
                    lane = active[p]
                    p_rail_p = float(p_rail[p])
                    rail_p = float(rail_energy[p])
                    if p_rail_p > 0.0:
                        motor_share = (
                            lane.harvester.actuator.moving_power / p_rail_p
                        )
                        e_tune[p] += rail_p * motor_share
                        e_node[p] += rail_p * (1.0 - motor_share)
                    else:
                        e_node[p] += rail_p
            else:
                e_node += rail_energy
            v = v_new
            t = t + h
            downtime += np.where(enabled, 0.0, h)
            # ---- regulator state machine (scalar on mask hits) ----
            for p in np.flatnonzero(
                (enabled & (v < vbrown)) | (~enabled & (v >= vrestart))
            ):
                lane = active[p]
                sync_pos(p, lane)
                had_actuation = lane.actuation is not None
                lane.regulator_step()
                enabled[p] = lane.enabled
                if had_actuation and lane.actuation is None:
                    # Brownout aborted the retune: the gap froze where
                    # the trajectory stood, a new resting grid governs.
                    moving[p] = False
                    act_done[p] = math.inf
                    refresh_static(p, lane)
                    groups_dirty = True
            # ---- actuation completion -----------------------------
            if moving.any():
                for p in np.flatnonzero(moving & (t >= act_done - _EPS)):
                    lane = active[p]
                    sync_pos(p, lane)
                    lane.actuation_step()
                    if lane.actuation is None:
                        moving[p] = False
                        act_done[p] = math.inf
                        refresh_static(p, lane)
                        groups_dirty = True
            # ---- segment boundaries -------------------------------
            # Operating points need no re-check here: events move
            # ``v`` and book energy but never change the resting gap;
            # an actuation they *start* flips ``moving``, which routes
            # the lane through the dynamic refresh next round.
            done_positions: list[int] = []
            for p in np.flatnonzero(t >= t_next - _EPS):
                lane = active[p]
                sync_boundary(p, lane)
                lane.post_segment()
                lane.advance_segments()
                if lane.finished:
                    sync_final(p, lane)
                    done_positions.append(int(p))
                    continue
                v[p] = lane.v
                t_next[p] = lane.t_next
                e_node[p] = lane.energies["node"]
                e_tune[p] = lane.energies["tuning"]
                act = lane.actuation
                moving[p] = act is not None
                act_done[p] = act.t_done if act is not None else math.inf
            if done_positions:
                keep = np.ones(len(active), dtype=bool)
                keep[done_positions] = False
                active = [
                    lane for p, lane in enumerate(active) if keep[p]
                ]
                entries = [e for p, e in enumerate(entries) if keep[p]]
                (
                    cap, r_leak, v_rated, vbrown, vrestart, eta, iq,
                    sleep_power, has_node, moving_power, nonstationary,
                    t, v, t_next, enabled, moving, act_done, downtime,
                    e_harv, e_node, e_tune, e_leak, ov_clips,
                    op_f, op_a, op_g, grid_lo, grid_hi,
                ) = (
                    arr[keep]
                    for arr in (
                        cap, r_leak, v_rated, vbrown, vrestart, eta, iq,
                        sleep_power, has_node, moving_power, nonstationary,
                        t, v, t_next, enabled, moving, act_done, downtime,
                        e_harv, e_node, e_tune, e_leak, ov_clips,
                        op_f, op_a, op_g, grid_lo, grid_hi,
                    )
                )
                dynamic_exists = bool(nonstationary.any())
                groups_dirty = True

        wall = time.perf_counter() - started
        share = wall / n_total
        return [lane.result(share) for lane in lanes]


def simulate_batch(
    configs: list[SystemConfig] | tuple[SystemConfig, ...],
    t_end: float,
    options: EnvelopeOptions | None = None,
    record_dt: float = 1.0,
    tick=None,
) -> list[SimulationResult]:
    """Run a batch of envelope missions in lockstep; see
    :class:`EnvelopeBatchEngine`."""
    return EnvelopeBatchEngine(configs, options).run(
        t_end, record_dt=record_dt, tick=tick
    )
