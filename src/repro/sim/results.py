"""Simulation results.

A :class:`SimulationResult` is the common product of all three engines:
decimated traces, the mission event log, scalar counters (packets,
retunes, brownouts), an energy ledger, and engine statistics.  The
performance-indicator registry (:mod:`repro.indicators`) consumes this
object, so every engine feeds the DoE flow through the same interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError


@dataclass
class SimulationResult:
    """Outcome of one mission simulation.

    Attributes:
        engine: engine name ("newton", "linearized", "envelope").
        t_end: simulated mission length, s.
        traces: named arrays, always including ``'t'`` and ``'v_store'``.
        events: mission log as (time, kind, info) tuples.
        counters: integer-ish counters: ``packets_delivered``,
            ``retunes``, ``controller_checks``, ``brownout_events``.
        energies: joule ledger: ``harvested``, ``node``, ``tuning``,
            ``leakage`` (where the engine can account for it).
        downtime: total seconds the regulator output was disabled.
        wall_time: CPU seconds the engine spent, for the R-T3 table.
        meta: configuration echoes needed by indicators (payload bits,
            engine step, policy description, ...).
    """

    engine: str
    t_end: float
    traces: dict[str, np.ndarray]
    events: list[tuple[float, str, str]] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    energies: dict[str, float] = field(default_factory=dict)
    downtime: float = 0.0
    wall_time: float = 0.0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.t_end <= 0.0:
            raise SimulationError(f"t_end must be > 0, got {self.t_end}")
        if "t" not in self.traces:
            raise SimulationError("traces must include the 't' axis")
        n = len(self.traces["t"])
        for name, arr in self.traces.items():
            if len(arr) != n:
                raise SimulationError(
                    f"trace {name!r} has {len(arr)} rows, expected {n}"
                )

    # -- accessors ---------------------------------------------------------------

    def trace(self, name: str) -> np.ndarray:
        """A named trace channel (raises on unknown names)."""
        try:
            return self.traces[name]
        except KeyError:
            raise SimulationError(
                f"result has no trace {name!r}; available: "
                f"{sorted(self.traces)}"
            ) from None

    def has_trace(self, name: str) -> bool:
        return name in self.traces

    @property
    def times(self) -> np.ndarray:
        return self.traces["t"]

    def final_store_voltage(self) -> float:
        """Store voltage at the last recorded instant, V."""
        v = self.trace("v_store")
        if v.size == 0:
            raise SimulationError("empty v_store trace")
        return float(v[-1])

    def min_store_voltage(self) -> float:
        """Lowest recorded store voltage, V."""
        v = self.trace("v_store")
        if v.size == 0:
            raise SimulationError("empty v_store trace")
        return float(np.min(v))

    def charge_time(self, v_target: float) -> float:
        """First time the store reaches ``v_target``, s.

        Returns ``t_end`` when the target is never reached — a finite
        worst-case value the response-surface fits can digest (NaNs
        would poison the regression).
        """
        t = self.times
        v = self.trace("v_store")
        reached = np.flatnonzero(v >= v_target)
        if reached.size == 0:
            return float(self.t_end)
        k = int(reached[0])
        if k == 0:
            return float(t[0])
        # Linear interpolation between the bracketing samples.
        t0, t1 = t[k - 1], t[k]
        v0, v1 = v[k - 1], v[k]
        if v1 == v0:
            return float(t1)
        return float(t0 + (v_target - v0) * (t1 - t0) / (v1 - v0))

    def counter(self, name: str, default: float = 0.0) -> float:
        return float(self.counters.get(name, default))

    def energy(self, name: str, default: float = 0.0) -> float:
        return float(self.energies.get(name, default))

    def downtime_fraction(self) -> float:
        """Fraction of the mission with the node output disabled."""
        return self.downtime / self.t_end

    def tuning_error_rms(self) -> float:
        """RMS of (dominant frequency - resonance) over the mission, Hz.

        Requires the ``f_dom`` and ``f_res`` traces (all engines record
        them); time-weighted via the trapezoidal rule.
        """
        t = self.times
        err = self.trace("f_dom") - self.trace("f_res")
        if t.size < 2:
            return float(abs(err[0])) if t.size else 0.0
        mean_sq = np.trapezoid(err**2, t) / (t[-1] - t[0])
        return float(np.sqrt(mean_sq))

    def summary(self) -> str:
        """Multi-line human-readable mission summary."""
        lines = [
            f"engine={self.engine}  t_end={self.t_end:g} s  "
            f"wall={self.wall_time:.3f} s",
            f"store: final {self.final_store_voltage():.3f} V, "
            f"min {self.min_store_voltage():.3f} V",
            f"downtime: {self.downtime:.1f} s "
            f"({100 * self.downtime_fraction():.1f}%)",
        ]
        if self.counters:
            parts = [f"{k}={v:g}" for k, v in sorted(self.counters.items())]
            lines.append("counters: " + ", ".join(parts))
        if self.energies:
            parts = [
                f"{k}={v * 1e3:.3f} mJ" for k, v in sorted(self.energies.items())
            ]
            lines.append("energies: " + ", ".join(parts))
        return "\n".join(lines)
