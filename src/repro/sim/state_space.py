"""Explicit linearized state-space engine (reproduction of ref [4]).

The technique: with diodes and end stops replaced by their
piecewise-linear companions, the system is *exactly linear within a
conduction mode*.  For each mode the engine builds the zero-order-hold
discrete-time update

.. math::

    x_{k+1} = A_d x_k + B_d u_{k+1/2},
    \\qquad
    \\begin{bmatrix} A_d & B_d \\\\ 0 & I \\end{bmatrix}
    = \\exp\\!\\left( h \\begin{bmatrix} A & B \\\\ 0 & 0 \\end{bmatrix} \\right)

once, caches it keyed by ``(mode, k_eff, h)``, and thereafter advances
with two small matrix-vector products per step — **no Newton iteration
anywhere**.  Inputs are sampled at the step midpoint, which restores
second-order accuracy for the sinusoidal excitation.

Mode changes are detected by sign changes of the boundary functions
(diode junction voltages against their thresholds, displacement against
the end stops).  A crossing is located by one secant estimate, the step
is split there, the crossing branch is toggled, and the remainder of
the step continues under the new mode.  Matrix exponentials for the
fractional split steps are computed on demand (switches are rare —
a few per excitation cycle — so they do not dominate).

This is the engine the DATE'13 abstract credits (via its reference [4])
with cutting transient CPU time by about two orders of magnitude
relative to Newton-Raphson-based analogue simulation; benchmark R-T3
measures the ratio achieved here against
:class:`~repro.sim.newton.NewtonRaphsonEngine` on identical models.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from scipy.linalg import expm

from repro.errors import SimulationError
from repro.sim.base import TransientEngine
from repro.sim.system import ModeKey, SystemModel

#: Hard cap on mode switches within one micro step — beyond this the
#: engine accepts the state and lets the next step re-derive the mode
#: (prevents chattering from stalling the simulation).
_MAX_SWITCHES_PER_STEP = 16

#: LRU bound on cached (A_d, B_d) pairs.  Keys carry k_eff, so every
#: ``set_gap`` during a retune strands the previous stiffness's
#: entries; long drift missions would otherwise grow the cache without
#: limit.  A mission needs one entry per *active* PWL mode at the
#: current stiffness — a few dozen covers every topology shipped here.
_CACHE_MAX_ENTRIES = 64


class LinearizedStateSpaceEngine(TransientEngine):
    """Iteration-free PWL engine with per-mode cached updates."""

    def __init__(self, system: SystemModel, dt: float):
        super().__init__(system, dt)
        self._cache: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._mode: ModeKey = system.mode_of(self._x)

    # -- cache management ---------------------------------------------------------

    def _discrete_update(
        self, mode: ModeKey, h: float, cacheable: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """(A_d, B_d) for one mode and step size, cached when reusable."""
        key = (mode, self._k_eff, h)
        if cacheable:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
                return hit
        a_mat, b_mat = self.system.linear_system(self._k_eff, mode)
        n = a_mat.shape[0]
        m = b_mat.shape[1]
        block = np.zeros((n + m, n + m))
        block[:n, :n] = a_mat
        block[:n, n:] = b_mat
        exp_block = expm(block * h)
        a_d = exp_block[:n, :n]
        b_d = exp_block[:n, n:]
        self.stats.n_matrix_builds += 1
        if cacheable:
            self._cache[key] = (a_d, b_d)
            while len(self._cache) > _CACHE_MAX_ENTRIES:
                self._cache.popitem(last=False)
                self.stats.extra["cache_evictions"] = (
                    self.stats.extra.get("cache_evictions", 0) + 1
                )
        return a_d, b_d

    def _on_state_replaced(self) -> None:
        self._mode = self.system.mode_of(self._x)

    # -- stepping ----------------------------------------------------------------------

    def _advance(self, h: float) -> None:
        remaining = h
        switches = 0
        while remaining > 1e-15:
            taken = self._advance_segment(remaining, switches)
            if taken < remaining:
                switches += 1
                if switches > _MAX_SWITCHES_PER_STEP:
                    # Chattering guard: accept the state, re-derive the
                    # mode, and move on.
                    self._mode = self.system.mode_of(self._x)
                    self.stats.extra["chatter_accepts"] = (
                        self.stats.extra.get("chatter_accepts", 0) + 1
                    )
                    remaining -= taken
                    continue
            remaining -= taken

    def _advance_segment(self, h: float, switches_so_far: int) -> float:
        """Advance up to ``h`` inside the current mode.

        Returns the time actually advanced (less than ``h`` when a
        boundary crossing split the step).
        """
        cacheable = abs(h - self.dt) < 1e-18
        a_d, b_d = self._discrete_update(self._mode, h, cacheable)
        u_mid = self._input_vector(self._t + 0.5 * h)
        x_new = a_d @ self._x + b_d @ u_mid
        b_old = self.system.boundaries(self._x)
        b_new = self.system.boundaries(x_new)
        crossed = (b_old >= 0.0) != (b_new >= 0.0)
        if not np.any(crossed):
            self._t += h
            self._x = x_new
            return h
        # Earliest crossing by secant estimate on each crossed boundary.
        idx = np.flatnonzero(crossed)
        alphas = b_old[idx] / (b_old[idx] - b_new[idx])
        first = int(np.argmin(alphas))
        alpha = float(np.clip(alphas[first], 1e-6, 1.0))
        boundary_index = int(idx[first])
        if alpha >= 1.0 - 1e-12:
            # Crossing sits at the step end: accept and toggle there.
            self._t += h
            self._x = x_new
            self._mode = self._toggled_mode(boundary_index, b_new)
            self.stats.n_mode_switches += 1
            return h
        h_cross = alpha * h
        a_c, b_c = self._discrete_update(self._mode, h_cross, cacheable=False)
        u_c = self._input_vector(self._t + 0.5 * h_cross)
        self._x = a_c @ self._x + b_c @ u_c
        self._t += h_cross
        self._mode = self._toggled_mode(
            boundary_index, self.system.boundaries(self._x)
        )
        self.stats.n_mode_switches += 1
        del switches_so_far
        return h_cross

    def _toggled_mode(self, boundary_index: int, b_now: np.ndarray) -> ModeKey:
        """Mode after the given boundary fired, robust to b ~ 0 noise.

        All boundaries except the crossing one are re-derived from the
        current state; the crossing one is force-stepped because its
        value sits numerically on the fence.  Diode boundaries come in
        pairs (low = off/knee breakpoint, high = knee/on breakpoint),
        so a crossing moves that diode one segment toward the side the
        old state was not on.
        """
        region_old, diodes_old = self._mode
        derived = SystemModel.mode_from_boundaries(b_now)
        region_new, diodes_new = derived
        if boundary_index == 0:
            region_new = 1 if region_old != 1 else 0
        elif boundary_index == 1:
            region_new = -1 if region_old != -1 else 0
        else:
            k = (boundary_index - 2) // 2
            which = (boundary_index - 2) % 2
            old_state = diodes_old[k]
            new_state = diodes_new[k]
            if new_state == old_state:
                # Numerically on the fence: force the transition the
                # crossing implies.
                if which == 0:  # off <-> knee breakpoint
                    new_state = 1 if old_state == 0 else 0
                else:  # knee <-> on breakpoint
                    new_state = 2 if old_state == 1 else 1
            stepped = list(diodes_new)
            stepped[k] = new_state
            diodes_new = tuple(stepped)
        return (region_new, diodes_new)

    def _input_vector(self, t: float) -> np.ndarray:
        return np.array([1.0, self._accel(t), self._i_load])

    def cache_size(self) -> int:
        """Number of cached discrete-update matrix pairs (for tests)."""
        return len(self._cache)
