"""Classical Newton-Raphson transient engine (the CPU-time baseline).

Implicit trapezoidal integration with a full Newton-Raphson solve at
every step, exponential Shockley diode models, and SPICE-style safety
rails (scaled convergence norms, step halving on divergence).  This is
deliberately the textbook analogue-simulation loop whose cost the
paper's fast technique (ref [4]) attacks: every step pays one Jacobian
build and one dense solve *per Newton iteration*.

The residual for a step from ``(t0, x0)`` to ``(t1 = t0 + h, x1)`` is

.. math::

    R(x_1) = x_1 - x_0 - \\tfrac{h}{2}\\left(f(t_0, x_0) + f(t_1, x_1)\\right)

with Jacobian ``J = I - (h/2) df/dx``.  Convergence is judged in a
scaled norm (displacement in nanometres, currents in microamps, node
voltages in microvolts) so no single physical unit dominates.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.errors import SimulationError
from repro.sim.base import TransientEngine
from repro.sim.system import SystemModel


class NewtonRaphsonEngine(TransientEngine):
    """Implicit-trapezoidal engine with per-step Newton iteration.

    Args:
        system: the assembled plant.
        dt: micro step, s.
        max_iterations: Newton iterations before declaring divergence.
        max_halvings: how many times a diverging step may be halved.
    """

    def __init__(
        self,
        system: SystemModel,
        dt: float,
        max_iterations: int = 25,
        max_halvings: int = 8,
    ):
        super().__init__(system, dt)
        if max_iterations < 1:
            raise SimulationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        if max_halvings < 0:
            raise SimulationError(
                f"max_halvings must be >= 0, got {max_halvings}"
            )
        self.max_iterations = int(max_iterations)
        self.max_halvings = int(max_halvings)
        self._tol = self._tolerance_vector()

    def _tolerance_vector(self) -> np.ndarray:
        """Per-state absolute tolerances for the scaled Newton norm."""
        n = self.system.state_size
        tol = np.full(n, 1e-6)  # node voltages: 1 uV
        tol[0] = 1e-9  # displacement: 1 nm
        tol[1] = 1e-6  # velocity: 1 um/s
        tol[2] = 1e-9  # coil current: 1 nA
        return tol

    def _advance(self, h: float) -> None:
        self._advance_with_halving(h, self.max_halvings)

    def _advance_with_halving(self, h: float, halvings_left: int) -> None:
        try:
            self._trapezoidal_step(h)
        except _NewtonDivergence:
            if halvings_left <= 0:
                raise SimulationError(
                    f"Newton-Raphson failed to converge at t={self._t:.6g} "
                    f"even at step {h:.3g} s"
                ) from None
            self._advance_with_halving(0.5 * h, halvings_left - 1)
            self._advance_with_halving(0.5 * h, halvings_left - 1)

    def _trapezoidal_step(self, h: float) -> None:
        t0 = self._t
        t1 = t0 + h
        x0 = self._x
        a0 = self._accel(t0)
        a1 = self._accel(t1)
        k_eff = self._k_eff
        i_load = self._i_load
        f0 = self.system.f_smooth(x0, a0, i_load, k_eff)
        x = x0 + h * f0  # forward-Euler predictor
        identity = np.eye(self.system.state_size)
        rtol = 1e-6
        lu = None
        last_norm = np.inf
        for iteration in range(self.max_iterations):
            f1 = self.system.f_smooth(x, a1, i_load, k_eff)
            residual = x - x0 - 0.5 * h * (f0 + f1)
            # Chord iteration: the Jacobian (and its LU factors) are
            # reused while convergence is healthy and refreshed when
            # the step norm stalls — the classical cost saver that
            # still leaves this engine paying a dense solve per
            # iteration, which is exactly what ref [4] attacks.
            if lu is None:
                jac = identity - 0.5 * h * self.system.jac_smooth(x, k_eff)
                self.stats.n_matrix_builds += 1
                try:
                    lu = lu_factor(jac)
                except (ValueError, np.linalg.LinAlgError):
                    raise _NewtonDivergence() from None
            delta = lu_solve(lu, -residual)
            # Voltage-step clamp: never move a circuit node by more
            # than 1 V in one Newton iteration (junction safety).
            v_step = np.max(np.abs(delta[3:])) if delta.size > 3 else 0.0
            if v_step > 1.0:
                delta *= 1.0 / v_step
            x = x + delta
            self.stats.n_newton_iterations += 1
            scale = self._tol + rtol * np.abs(x)
            ratios = np.abs(delta) / scale
            norm = float(np.max(ratios))
            if norm <= 1.0:
                if not np.all(np.isfinite(x)):
                    raise _NewtonDivergence()
                self._t = t1
                self._x = x
                return
            if norm > 0.5 * last_norm:
                lu = None  # stalled: rebuild the Jacobian next pass
            last_norm = norm
        raise _NewtonDivergence()


class _NewtonDivergence(Exception):
    """Internal signal: the Newton loop did not converge at this step."""
