"""The assembled plant: harvester + power circuit + load interfaces.

:class:`SystemModel` stacks the electromechanical equations of the
microgenerator, the coil branch, and the power-processing netlist into
one state vector

.. code-block:: text

    x = [ z, z', i_coil, v_1 ... v_n ]       (n = circuit nodes)

driven by the input vector ``u = [1, a(t), i_load]`` (a constant column
for the PWL Norton offsets and the end-stop preload, the base
acceleration, and the regulator's bus current draw).

Two views of the same physics are exposed:

* a **piecewise-linear** view for the explicit linearized state-space
  engine — :meth:`SystemModel.linear_system` returns the ``(A, B)``
  pair for a given conduction/end-stop *mode*, and
  :meth:`SystemModel.boundaries` the signed distances whose zero
  crossings mark mode changes; and
* a **smooth** view for the Newton-Raphson engine —
  :meth:`SystemModel.f_smooth` / :meth:`SystemModel.jac_smooth` with
  exponential Shockley diodes.

The *mode* is ``(end_stop_region, diode_states)`` with
``end_stop_region`` in {-1, 0, +1} and ``diode_states`` a tuple of
booleans, derived from the state via :meth:`SystemModel.mode_of`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.harvester.tuning import TunableHarvester
from repro.node.controller import TuningController
from repro.node.node import SensorNode
from repro.power.rectifier import PowerCircuit
from repro.power.regulator import Regulator
from repro.vibration.sources import VibrationSource

#: Mode type alias: (end-stop region, per-diode PWL segment indices).
ModeKey = tuple[int, tuple[int, ...]]


@dataclass
class SystemConfig:
    """Complete system description consumed by the simulators.

    Attributes:
        harvester: tunable harvester (mechanics + tuning law + actuator).
        power: assembled power-processing circuit.
        regulator: node-side regulator (brownout behaviour).
        node: the sensor-node load, or None for source-only studies.
        controller: tuning controller, or None for a fixed (untunable
            in operation) harvester.
        vibration: the ambient excitation.
        initial_gap: starting magnet gap, m; None selects pre-tuning.
        pretune: when ``initial_gap`` is None, True starts the harvester
            tuned to the source's dominant frequency at t=0 (the usual
            deployment assumption); False starts it fully detuned at
            the maximum gap.
    """

    harvester: TunableHarvester
    power: PowerCircuit
    regulator: Regulator
    node: SensorNode | None
    controller: TuningController | None
    vibration: VibrationSource
    initial_gap: float | None = None
    pretune: bool = True

    def resolve_initial_gap(self) -> float:
        """The gap the mission starts from (see ``pretune``)."""
        law = self.harvester.tuning
        if self.initial_gap is not None:
            return min(max(self.initial_gap, law.gap_min), law.gap_max)
        if self.pretune:
            f0 = self.vibration.dominant_frequency(0.0)
            return self.harvester.gap_for_frequency(law.clamp_frequency(f0))
        return self.harvester.default_gap()


class SystemModel:
    """Engine-facing equations of a :class:`SystemConfig`."""

    #: Input-vector layout: [constant 1, base acceleration, load current].
    N_INPUTS = 3

    def __init__(self, config: SystemConfig):
        self.config = config
        self.harvester = config.harvester
        self.power = config.power
        matrices = config.power.matrices
        self.matrices = matrices
        if "coil" not in matrices.input_names:
            raise ModelError("power circuit must define a 'coil' current input")
        self._n_nodes = matrices.n_nodes
        self._n = 3 + self._n_nodes
        self._c_inv = matrices.cap_inverse
        self._g_static = matrices.resistor_conductance_matrix()
        self._e_coil = matrices.input_vector("coil")
        if "load" in matrices.input_names:
            self._e_load = matrices.input_vector("load")
        else:
            self._e_load = np.zeros(self._n_nodes)
        names = matrices.node_names
        self._idx_in_p = names[config.power.input_plus] - 1
        minus = config.power.input_minus
        self._idx_in_n = -1 if minus == "gnd" else names[minus] - 1
        p = self.harvester.params
        self._mass = p.mass
        self._c_p = p.parasitic_damping
        self._phi = p.transduction_factor
        self._r_c = p.coil_resistance
        self._l_c = p.coil_inductance
        self._z_max = p.max_displacement
        self._k_stop = p.end_stop_stiffness
        # Pre-multiplied circuit couplings.
        self._cinv_e_coil = self._c_inv @ self._e_coil
        self._cinv_e_load = self._c_inv @ self._e_load

    # -- dimensions and state -----------------------------------------------------

    @property
    def state_size(self) -> int:
        """Length of the state vector x."""
        return self._n

    @property
    def n_boundaries(self) -> int:
        """Two end-stop boundaries plus two segment boundaries per diode."""
        return 2 + 2 * self.matrices.n_diodes

    def initial_state(self) -> np.ndarray:
        """Mechanics at rest, coil de-energized, circuit at its initial DC."""
        x = np.zeros(self._n)
        x[3:] = self.power.initial_voltages()
        return x

    def k_eff(self, gap: float) -> float:
        """Effective suspension stiffness at a magnet gap, N/m."""
        return self.harvester.effective_stiffness(gap)

    # -- mode machinery --------------------------------------------------------------

    def boundaries(self, x: np.ndarray) -> np.ndarray:
        """Signed switching-boundary distances.

        Layout: ``[z - z_max, -z - z_max, d1_low, d1_high, d2_low,
        ...]`` — the two end-stop engagement boundaries followed by the
        two PWL segment breakpoints of each diode.
        """
        z = x[0]
        mech = np.array([z - self._z_max, -z - self._z_max])
        return np.concatenate([mech, self.matrices.boundary_values(x[3:])])

    @staticmethod
    def mode_from_boundaries(b: np.ndarray) -> ModeKey:
        """Derive the mode key from boundary signs."""
        if b[0] >= 0.0:
            region = 1
        elif b[1] >= 0.0:
            region = -1
        else:
            region = 0
        from repro.power.netlist import CircuitMatrices

        diodes = CircuitMatrices.segments_from_boundaries(b[2:])
        return (region, diodes)

    def mode_of(self, x: np.ndarray) -> ModeKey:
        """Conduction/end-stop mode implied by a state vector."""
        return self.mode_from_boundaries(self.boundaries(x))

    # -- piecewise-linear view ----------------------------------------------------------

    def linear_system(self, k_eff: float, mode: ModeKey) -> tuple[np.ndarray, np.ndarray]:
        """(A, B) of ``x' = A x + B u`` in the given mode.

        ``u = [1, a(t), i_load]``.  Rebuilt on every call — engines
        cache the result keyed by ``(mode, k_eff, h)``.
        """
        region, diode_mode = mode
        n = self._n
        a_mat = np.zeros((n, n))
        b_mat = np.zeros((n, self.N_INPUTS))
        m = self._mass
        # Mechanics: z' = vz.
        a_mat[0, 1] = 1.0
        k_total = k_eff + (self._k_stop if region != 0 else 0.0)
        a_mat[1, 0] = -k_total / m
        a_mat[1, 1] = -self._c_p / m
        a_mat[1, 2] = -self._phi / m
        b_mat[1, 0] = region * self._k_stop * self._z_max / m
        b_mat[1, 1] = -1.0
        # Coil branch: L i' = Phi vz - R_c i - (v_p - v_n).
        a_mat[2, 1] = self._phi / self._l_c
        a_mat[2, 2] = -self._r_c / self._l_c
        a_mat[2, 3 + self._idx_in_p] = -1.0 / self._l_c
        if self._idx_in_n >= 0:
            a_mat[2, 3 + self._idx_in_n] = 1.0 / self._l_c
        # Circuit nodes: C v' = -G(m) v + s(m) + e_coil i + e_load u_load.
        g = self.matrices.conductance_matrix(diode_mode)
        s = self.matrices.norton_vector(diode_mode)
        a_mat[3:, 3:] = -self._c_inv @ g
        a_mat[3:, 2] = self._cinv_e_coil
        b_mat[3:, 0] = self._c_inv @ s
        b_mat[3:, 2] = self._cinv_e_load
        return a_mat, b_mat

    # -- smooth view -------------------------------------------------------------------------

    def f_smooth(
        self, x: np.ndarray, accel: float, i_load: float, k_eff: float
    ) -> np.ndarray:
        """Right-hand side with exponential diodes (NR engine)."""
        z, vz, ic = x[0], x[1], x[2]
        v = x[3:]
        f = np.empty(self._n)
        f[0] = vz
        stop = self.harvester.generator.end_stop_force(z)
        f[1] = (
            -(k_eff * z) - stop - self._c_p * vz - self._phi * ic
        ) / self._mass - accel
        v_p = v[self._idx_in_p]
        v_n = v[self._idx_in_n] if self._idx_in_n >= 0 else 0.0
        f[2] = (self._phi * vz - self._r_c * ic - (v_p - v_n)) / self._l_c
        inj, _ = self.matrices.shockley_injection(v)
        rhs = (
            -(self._g_static @ v)
            + inj
            + self._e_coil * ic
            + self._e_load * i_load
        )
        f[3:] = self._c_inv @ rhs
        return f

    def jac_smooth(self, x: np.ndarray, k_eff: float) -> np.ndarray:
        """Jacobian of :meth:`f_smooth` with respect to x."""
        z = x[0]
        v = x[3:]
        jac = np.zeros((self._n, self._n))
        jac[0, 1] = 1.0
        region = self.harvester.generator.end_stop_region(z)
        k_total = k_eff + (self._k_stop if region != 0 else 0.0)
        jac[1, 0] = -k_total / self._mass
        jac[1, 1] = -self._c_p / self._mass
        jac[1, 2] = -self._phi / self._mass
        jac[2, 1] = self._phi / self._l_c
        jac[2, 2] = -self._r_c / self._l_c
        jac[2, 3 + self._idx_in_p] = -1.0 / self._l_c
        if self._idx_in_n >= 0:
            jac[2, 3 + self._idx_in_n] = 1.0 / self._l_c
        _, diode_jac = self.matrices.shockley_injection(v)
        jac[3:, 3:] = self._c_inv @ (-self._g_static + diode_jac)
        jac[3:, 2] = self._cinv_e_coil
        return jac

    # -- measurement helpers ----------------------------------------------------------------------

    def store_voltage(self, x: np.ndarray) -> float:
        """Internal supercap voltage, V (0 when there is no store)."""
        if self.power.store_node is None:
            return 0.0
        return self.power.store_voltage(x[3:])

    def bus_voltage(self, x: np.ndarray) -> float:
        """Bus (load terminal) voltage, V."""
        return self.power.bus_voltage(x[3:])

    def coil_current(self, x: np.ndarray) -> float:
        """Coil current, A."""
        return float(x[2])

    def transduced_power(self, x: np.ndarray) -> float:
        """Instantaneous electromechanical power Phi z' i, W."""
        return self._phi * float(x[1]) * float(x[2])

    def proof_mass_displacement(self, x: np.ndarray) -> float:
        """Relative proof-mass displacement z, m."""
        return float(x[0])
