"""Deterministic discrete-event queue.

The mission layer (node task cycles, controller wake-ups, actuation
milestones, recording ticks) is driven by a priority queue ordered by
``(time, sequence)``: events scheduled earlier always pop first, and
events at identical times pop in scheduling order, which makes every
simulation exactly reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled event.

    Attributes:
        time: firing time, s.
        seq: tie-breaking sequence number (assigned by the queue).
        kind: event type tag (compared only through time/seq).
        payload: arbitrary event data.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Min-heap of :class:`Event` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event; returns the stored record."""
        if time < 0.0:
            raise ValueError(f"event time must be >= 0, got {time}")
        event = Event(time=time, seq=self._seq, kind=kind, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Firing time of the earliest event, or None when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def clear(self) -> None:
        """Drop all pending events (sequence numbering continues)."""
        self._heap.clear()
