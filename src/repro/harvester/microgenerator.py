"""Electromechanical model of the microgenerator.

The device is a base-excited second-order resonator with an
electromagnetic transducer:

.. code-block:: text

    m z'' + c_p z' + k_eff z + F_stop(z) + Phi i  =  -m a(t)
    L_c i' + R_c i + v_out                        =  Phi z'

where ``z`` is the proof-mass displacement *relative to the base*,
``a(t)`` the base acceleration, ``i`` the coil current flowing into the
external circuit, ``v_out`` the voltage the external circuit presents at
the coil terminals, and ``F_stop`` the end-stop restoring force that
engages beyond ``max_displacement``.

Sign conventions: positive coil current flows *out* of the positive
terminal into the external circuit; the electromagnetic reaction force
``Phi i`` opposes the motion that generates it (energy conservation is
checked in the tests).

The class is *stateless*: it exposes the right-hand-side terms and
linear coefficients that the simulation engines assemble into system
equations, with the effective stiffness ``k_eff`` supplied per call so
that the tuning subsystem can vary it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.harvester.parameters import MicrogeneratorParameters


@dataclass(frozen=True)
class MechanicalState:
    """Convenience bundle for (displacement, velocity) pairs."""

    displacement: float
    velocity: float


class Microgenerator:
    """Stateless electromechanical microgenerator model.

    Args:
        params: validated physical parameters.
    """

    def __init__(self, params: MicrogeneratorParameters):
        self._params = params

    @property
    def params(self) -> MicrogeneratorParameters:
        return self._params

    # -- mechanical side ----------------------------------------------------

    def end_stop_force(self, displacement: float) -> float:
        """Restoring force of the end stops, N (0 inside free travel).

        Modelled as a stiff linear spring engaging beyond the free
        travel; piecewise-linear so the linearized state-space engine
        can treat it as one more PWL mode.
        """
        z_max = self._params.max_displacement
        if displacement > z_max:
            return self._params.end_stop_stiffness * (displacement - z_max)
        if displacement < -z_max:
            return self._params.end_stop_stiffness * (displacement + z_max)
        return 0.0

    def end_stop_region(self, displacement: float) -> int:
        """PWL region of the end stop: -1 (lower), 0 (free), +1 (upper)."""
        z_max = self._params.max_displacement
        if displacement > z_max:
            return 1
        if displacement < -z_max:
            return -1
        return 0

    def acceleration(
        self,
        state: MechanicalState,
        coil_current: float,
        base_acceleration: float,
        k_eff: float | None = None,
    ) -> float:
        """Proof-mass relative acceleration z'', m/s^2.

        Args:
            state: current (z, z').
            coil_current: coil current i, A.
            base_acceleration: base acceleration a(t), m/s^2.
            k_eff: effective suspension stiffness (defaults to the
                untuned spring constant).
        """
        p = self._params
        k = p.spring_constant if k_eff is None else k_eff
        if k <= 0.0:
            raise ModelError(f"effective stiffness must be > 0, got {k}")
        spring = k * state.displacement + self.end_stop_force(state.displacement)
        damping = p.parasitic_damping * state.velocity
        reaction = p.transduction_factor * coil_current
        return (-spring - damping - reaction) / p.mass - base_acceleration

    # -- electrical side ----------------------------------------------------

    def emf(self, velocity: float) -> float:
        """Open-circuit electromotive force Phi * z', volts."""
        return self._params.transduction_factor * velocity

    def coil_current_derivative(
        self, velocity: float, coil_current: float, terminal_voltage: float
    ) -> float:
        """di/dt from the coil branch equation, A/s."""
        p = self._params
        return (
            self.emf(velocity)
            - p.coil_resistance * coil_current
            - terminal_voltage
        ) / p.coil_inductance

    # -- power bookkeeping ---------------------------------------------------

    def mechanical_input_power(
        self, state: MechanicalState, base_acceleration: float
    ) -> float:
        """Power delivered by the base excitation to the proof mass, W.

        For the relative-coordinate formulation the excitation enters as
        the inertial force ``-m a(t)`` acting through the relative
        velocity.
        """
        return -self._params.mass * base_acceleration * state.velocity

    def transduced_power(self, velocity: float, coil_current: float) -> float:
        """Electrical power extracted from the mechanical domain, W.

        ``P = Phi * z' * i`` — equal to EMF times current; positive when
        the transducer brakes the mass (generation).
        """
        return self.emf(velocity) * coil_current

    def parasitic_power(self, velocity: float) -> float:
        """Power lost to parasitic mechanical damping, W (>= 0)."""
        return self._params.parasitic_damping * velocity**2

    def stored_energy(
        self, state: MechanicalState, coil_current: float, k_eff: float | None = None
    ) -> float:
        """Total energy stored in mass motion, spring and coil, J.

        Ignores the (path-dependent) end-stop compression energy, which
        the tests account for separately.
        """
        p = self._params
        k = p.spring_constant if k_eff is None else k_eff
        kinetic = 0.5 * p.mass * state.velocity**2
        elastic = 0.5 * k * state.displacement**2
        magnetic = 0.5 * p.coil_inductance * coil_current**2
        return kinetic + elastic + magnetic
