"""Validated parameter records for the electromagnetic microgenerator.

The defaults describe a device of the same class as the Southampton
tunable cantilever microgenerator used in the companion papers: a few
grams of proof mass, resonance in the mid-60s of hertz tunable up to the
high 70s, a kilohm-class coil, and end stops limiting travel to about a
millimetre and a half.  All values are in SI units.

The record is immutable (frozen dataclass): simulation engines cache
system matrices derived from it, and the DoE layer builds many system
variants by :meth:`MicrogeneratorParameters.replace`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dataclass_replace

from repro.errors import ModelError
from repro.units import TWO_PI


@dataclass(frozen=True)
class MicrogeneratorParameters:
    """Physical parameters of the electromagnetic microgenerator.

    Attributes:
        mass: proof (seismic) mass, kg.
        natural_frequency: untuned mechanical resonance, Hz.  This is
            the resonance with the tuning magnets fully retracted, i.e.
            the *bottom* of the tuning range.
        damping_ratio: parasitic (mechanical) damping ratio, unitless.
        transduction_factor: electromagnetic coupling Phi = B*l, in
            V.s/m (equivalently N/A).
        coil_resistance: coil series resistance, ohms.
        coil_inductance: coil self-inductance, henries.
        max_displacement: end-stop travel limit, metres (one-sided).
        end_stop_stiffness_ratio: end-stop spring stiffness expressed as
            a multiple of the suspension stiffness; the end stop engages
            beyond ``max_displacement``.
    """

    mass: float = 5.0e-3
    natural_frequency: float = 64.0
    damping_ratio: float = 0.008
    transduction_factor: float = 50.0
    coil_resistance: float = 4.0e3
    coil_inductance: float = 50.0e-3
    max_displacement: float = 1.5e-3
    end_stop_stiffness_ratio: float = 50.0

    def __post_init__(self) -> None:
        if self.mass <= 0.0:
            raise ModelError(f"mass must be > 0, got {self.mass}")
        if self.natural_frequency <= 0.0:
            raise ModelError(
                f"natural_frequency must be > 0, got {self.natural_frequency}"
            )
        if self.damping_ratio <= 0.0:
            raise ModelError(
                f"damping_ratio must be > 0, got {self.damping_ratio}"
            )
        if self.damping_ratio >= 1.0:
            raise ModelError(
                "damping_ratio must describe an underdamped resonator "
                f"(< 1), got {self.damping_ratio}"
            )
        if self.transduction_factor <= 0.0:
            raise ModelError(
                f"transduction_factor must be > 0, got {self.transduction_factor}"
            )
        if self.coil_resistance <= 0.0:
            raise ModelError(
                f"coil_resistance must be > 0, got {self.coil_resistance}"
            )
        if self.coil_inductance <= 0.0:
            raise ModelError(
                f"coil_inductance must be > 0, got {self.coil_inductance}"
            )
        if self.max_displacement <= 0.0:
            raise ModelError(
                f"max_displacement must be > 0, got {self.max_displacement}"
            )
        if self.end_stop_stiffness_ratio <= 0.0:
            raise ModelError(
                "end_stop_stiffness_ratio must be > 0, got "
                f"{self.end_stop_stiffness_ratio}"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def angular_frequency(self) -> float:
        """Untuned angular resonance omega_n, rad/s."""
        return TWO_PI * self.natural_frequency

    @property
    def spring_constant(self) -> float:
        """Untuned suspension stiffness k = m*omega_n^2, N/m."""
        return self.mass * self.angular_frequency**2

    @property
    def parasitic_damping(self) -> float:
        """Parasitic damping coefficient c_p = 2*zeta*m*omega_n, N.s/m."""
        return 2.0 * self.damping_ratio * self.mass * self.angular_frequency

    @property
    def end_stop_stiffness(self) -> float:
        """End-stop spring stiffness, N/m."""
        return self.end_stop_stiffness_ratio * self.spring_constant

    @property
    def quality_factor(self) -> float:
        """Mechanical quality factor Q = 1/(2*zeta)."""
        return 1.0 / (2.0 * self.damping_ratio)

    @property
    def coil_time_constant(self) -> float:
        """Electrical time constant L/R of the coil, seconds."""
        return self.coil_inductance / self.coil_resistance

    def electrical_damping(self, load_resistance: float) -> float:
        """Electrical damping coefficient c_e for a resistive load.

        ``c_e = Phi^2 / (R_load + R_coil)`` — the damping the coil
        current reflects back onto the proof mass when the inductance is
        negligible at the operating frequency.

        Args:
            load_resistance: external resistance across the coil, ohms
                (may be 0 for a short-circuited coil).
        """
        if load_resistance < 0.0:
            raise ModelError(
                f"load_resistance must be >= 0, got {load_resistance}"
            )
        return self.transduction_factor**2 / (
            load_resistance + self.coil_resistance
        )

    def replace(self, **changes: float) -> "MicrogeneratorParameters":
        """Return a copy with the given fields replaced (re-validated)."""
        return dataclass_replace(self, **changes)

    def summary(self) -> str:
        """One-line human-readable summary for reports."""
        return (
            f"m={self.mass * 1e3:.2f} g, f_n={self.natural_frequency:.1f} Hz, "
            f"zeta={self.damping_ratio:.3f} (Q={self.quality_factor:.0f}), "
            f"Phi={self.transduction_factor:.2f} V.s/m, "
            f"R_c={self.coil_resistance:.0f} ohm, "
            f"L_c={self.coil_inductance * 1e3:.0f} mH, "
            f"z_max={self.max_displacement * 1e3:.2f} mm"
        )


def default_parameters() -> MicrogeneratorParameters:
    """The canonical device used throughout the reproduction."""
    return MicrogeneratorParameters()


def scaled_parameters(scale: float) -> MicrogeneratorParameters:
    """A geometrically scaled variant of the canonical device.

    Mass scales with volume (``scale**3``), stiffness with length
    (``scale``), so the natural frequency scales as ``scale**-1``;
    the transduction factor scales roughly with ``scale**2`` (flux x
    turns-length product).  Used by parameter-sensitivity examples.
    """
    if scale <= 0.0:
        raise ModelError(f"scale must be > 0, got {scale}")
    base = default_parameters()
    mass = base.mass * scale**3
    freq = math.sqrt(base.spring_constant * scale / mass) / TWO_PI
    return base.replace(
        mass=mass,
        natural_frequency=freq,
        transduction_factor=base.transduction_factor * scale**2,
        max_displacement=base.max_displacement * scale,
    )
