"""Tunable electromagnetic vibration energy harvester substrate.

Implements the microgenerator of the companion HDL-modelling paper
(Kazmierski et al., IEEE Sensors J. 2012): a second-order
mass-spring-damper with electromagnetic transduction, whose resonant
frequency is tuned mechanically by adjusting the gap between a pair of
tuning magnets, moved by a small motor that draws its energy from the
node's own store.

* :mod:`repro.harvester.parameters` — validated parameter records.
* :mod:`repro.harvester.microgenerator` — the electromechanical model.
* :mod:`repro.harvester.tuning` — the gap -> resonant-frequency law and
  the :class:`TunableHarvester` composition.
* :mod:`repro.harvester.actuator` — the tuning-motor cost model.
* :mod:`repro.harvester.analytic` — closed-form steady-state solutions
  used to validate the simulation engines and to seed figure "theory"
  series.
"""

from repro.harvester.parameters import MicrogeneratorParameters
from repro.harvester.microgenerator import Microgenerator
from repro.harvester.tuning import MagneticTuningLaw, TunableHarvester
from repro.harvester.actuator import TuningActuator
from repro.harvester import analytic

__all__ = [
    "MicrogeneratorParameters",
    "Microgenerator",
    "MagneticTuningLaw",
    "TunableHarvester",
    "TuningActuator",
    "analytic",
]
