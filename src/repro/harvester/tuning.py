"""Mechanical resonance tuning: gap -> frequency law and composition.

The Southampton tunable microgenerator changes its resonant frequency by
moving a tuning magnet towards a magnet on the cantilever tip: the
attractive axial force stiffens the suspension, raising the resonance.
Published devices span roughly 64-78 Hz over a few tens of millimetres
of travel, with the sensitivity strongly nonlinear in the gap (magnetic
force falls off roughly with the cube of separation).

:class:`MagneticTuningLaw` captures that behaviour with an analytically
invertible saturating law:

.. math::

    f_r(d) = f_{min} + (f_{max} - f_{min}) / (1 + (d / d_{half})^p)

so the controller can compute the exact gap needed for a target
frequency (:meth:`MagneticTuningLaw.gap_for_frequency`), and the
simulator can compute the effective stiffness the mechanics see
(:meth:`MagneticTuningLaw.added_stiffness` for a given proof mass).

:class:`TunableHarvester` composes a microgenerator, a tuning law and an
actuator into the device object the rest of the toolkit passes around.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.harvester.actuator import TuningActuator
from repro.harvester.microgenerator import Microgenerator
from repro.harvester.parameters import MicrogeneratorParameters
from repro.units import TWO_PI


class MagneticTuningLaw:
    """Saturating gap -> resonant-frequency law (invertible).

    Args:
        f_min: resonance with magnets fully separated, Hz (this must
            match the microgenerator's untuned ``natural_frequency``;
            :class:`TunableHarvester` enforces that).
        f_max: resonance at the closest approach the mechanics allow, Hz.
        gap_half: gap at which half the tuning range is reached, m.
        exponent: sharpness of the magnetic-force falloff (3 for the
            dipole-force law used in the published device models).
        gap_min: minimum usable gap, m (mechanical stop).
        gap_max: maximum usable gap, m (end of the lead screw).
    """

    def __init__(
        self,
        f_min: float = 64.0,
        f_max: float = 78.0,
        gap_half: float = 8.0e-3,
        exponent: float = 3.0,
        gap_min: float = 2.0e-3,
        gap_max: float = 25.0e-3,
    ):
        if not (0.0 < f_min < f_max):
            raise ModelError(f"need 0 < f_min < f_max, got [{f_min}, {f_max}]")
        if gap_half <= 0.0:
            raise ModelError(f"gap_half must be > 0, got {gap_half}")
        if exponent <= 0.0:
            raise ModelError(f"exponent must be > 0, got {exponent}")
        if not (0.0 < gap_min < gap_max):
            raise ModelError(
                f"need 0 < gap_min < gap_max, got [{gap_min}, {gap_max}]"
            )
        self.f_min = float(f_min)
        self.f_max = float(f_max)
        self.gap_half = float(gap_half)
        self.exponent = float(exponent)
        self.gap_min = float(gap_min)
        self.gap_max = float(gap_max)

    # -- forward law ---------------------------------------------------------

    def frequency_for_gap(self, gap: float) -> float:
        """Resonant frequency (Hz) at magnet gap ``gap`` (m).

        The gap is clamped into the mechanical range, matching the
        physical travel stops.
        """
        d = min(max(gap, self.gap_min), self.gap_max)
        span = self.f_max - self.f_min
        return self.f_min + span / (1.0 + (d / self.gap_half) ** self.exponent)

    def gap_for_frequency(self, frequency: float) -> float:
        """Gap (m) that realizes the requested resonance, clamped.

        Frequencies outside the achievable band map to the nearest gap
        stop — the controller then simply gets as close as it can, which
        is exactly what the published tuning firmware does.
        """
        f_lo = self.frequency_for_gap(self.gap_max)
        f_hi = self.frequency_for_gap(self.gap_min)
        if frequency <= f_lo:
            return self.gap_max
        if frequency >= f_hi:
            return self.gap_min
        span = self.f_max - self.f_min
        ratio = span / (frequency - self.f_min) - 1.0
        return self.gap_half * ratio ** (1.0 / self.exponent)

    # -- mechanical view -----------------------------------------------------

    def effective_stiffness(self, gap: float, mass: float) -> float:
        """Suspension stiffness k_eff = m * (2*pi*f_r(gap))^2, N/m."""
        if mass <= 0.0:
            raise ModelError(f"mass must be > 0, got {mass}")
        omega = TWO_PI * self.frequency_for_gap(gap)
        return mass * omega**2

    def added_stiffness(self, gap: float, mass: float) -> float:
        """Magnetic stiffening relative to the untuned suspension, N/m."""
        omega_min = TWO_PI * self.f_min
        return self.effective_stiffness(gap, mass) - mass * omega_min**2

    @property
    def achievable_band(self) -> tuple[float, float]:
        """(lowest, highest) resonant frequency reachable within travel."""
        return (
            self.frequency_for_gap(self.gap_max),
            self.frequency_for_gap(self.gap_min),
        )

    def clamp_frequency(self, frequency: float) -> float:
        """Project a target frequency onto the achievable band."""
        lo, hi = self.achievable_band
        return min(max(frequency, lo), hi)


class TunableHarvester:
    """Microgenerator + tuning law + actuator: the complete harvester.

    This object is immutable configuration; the *current gap* is a
    simulation state owned by the system model, passed into the methods
    that need it.

    Args:
        params: microgenerator parameters.  ``natural_frequency`` must
            equal the law's ``f_min`` (the untuned device *is* the
            magnets-retracted device); a mismatch is a configuration
            error caught here rather than a silent physics change.
        tuning: the gap -> frequency law.
        actuator: the tuning-motor cost model.
    """

    def __init__(
        self,
        params: MicrogeneratorParameters | None = None,
        tuning: MagneticTuningLaw | None = None,
        actuator: TuningActuator | None = None,
    ):
        self.params = params if params is not None else MicrogeneratorParameters()
        self.tuning = tuning if tuning is not None else MagneticTuningLaw()
        self.actuator = actuator if actuator is not None else TuningActuator()
        if abs(self.params.natural_frequency - self.tuning.f_min) > 1e-9:
            raise ModelError(
                "microgenerator natural_frequency "
                f"({self.params.natural_frequency} Hz) must equal the tuning "
                f"law's f_min ({self.tuning.f_min} Hz)"
            )
        if not (
            self.tuning.gap_min
            >= self.actuator.gap_travel_min - 1e-12
            and self.tuning.gap_max <= self.actuator.gap_travel_max + 1e-12
        ):
            raise ModelError(
                "tuning-law gap range exceeds the actuator travel: law "
                f"[{self.tuning.gap_min}, {self.tuning.gap_max}] vs actuator "
                f"[{self.actuator.gap_travel_min}, {self.actuator.gap_travel_max}]"
            )
        self.generator = Microgenerator(self.params)

    def resonant_frequency(self, gap: float) -> float:
        """Resonance (Hz) at the given magnet gap (m)."""
        return self.tuning.frequency_for_gap(gap)

    def effective_stiffness(self, gap: float) -> float:
        """Suspension stiffness the mechanics see at this gap, N/m."""
        return self.tuning.effective_stiffness(gap, self.params.mass)

    def gap_for_frequency(self, frequency: float) -> float:
        """Gap that tunes the device as close as possible to ``frequency``."""
        return self.tuning.gap_for_frequency(frequency)

    def retune_cost(self, gap_from: float, gap_to: float) -> tuple[float, float]:
        """(duration s, energy J) of moving the tuning magnet.

        Thin wrapper over the actuator so callers need not reach
        through; clamps both endpoints to the usable travel first.
        """
        lo, hi = self.tuning.gap_min, self.tuning.gap_max
        start = min(max(gap_from, lo), hi)
        end = min(max(gap_to, lo), hi)
        return self.actuator.move_cost(start, end)

    def default_gap(self) -> float:
        """Fully retracted gap — the untuned rest configuration."""
        return self.tuning.gap_max
