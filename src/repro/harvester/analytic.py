"""Closed-form steady-state solutions for the resistively loaded harvester.

For a sinusoidal base acceleration ``a(t) = A sin(w t)`` and a purely
resistive load ``R_L`` across the coil, the coupled electromechanical
system has an exact phasor solution.  These formulas serve three
purposes in the reproduction:

1. *Engine validation* — the transient engines must converge to these
   amplitudes and powers (integration tests assert it).
2. *Figure theory series* — R-F1 plots the analytic tuned/untuned power
   curves next to simulated points.
3. *Envelope seeding* — the envelope engine uses the analytic electrical
   damping as a sanity bound on its numerically built charging maps.

Derivation (relative coordinate z, coil current i, load R_L):

.. math::

    Z(w)  &= m A / (k - m w^2 + j w c_p + j w \\Phi^2 / Z_e(w)) \\\\
    Z_e(w) &= R_c + R_L + j w L_c \\\\
    I(w)  &= j w \\Phi Z(w) / Z_e(w)

Average powers follow from the phasor magnitudes: load power
``|I|^2 R_L / 2``, coil loss ``|I|^2 R_c / 2``, parasitic loss
``c_p w^2 |Z|^2 / 2``.  Their sum equals the average input power — an
identity the property tests check across random parameter draws.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import minimize_scalar

from repro.errors import ModelError
from repro.harvester.parameters import MicrogeneratorParameters
from repro.units import TWO_PI


def _validate(amplitude: float, frequency: float, load_resistance: float) -> None:
    if amplitude < 0.0:
        raise ModelError(f"amplitude must be >= 0, got {amplitude}")
    if frequency <= 0.0:
        raise ModelError(f"frequency must be > 0, got {frequency}")
    if load_resistance < 0.0:
        raise ModelError(f"load_resistance must be >= 0, got {load_resistance}")


def _k_eff(params: MicrogeneratorParameters, resonance: float | None) -> float:
    """Effective stiffness for an optionally tuned resonance (Hz)."""
    if resonance is None:
        return params.spring_constant
    if resonance <= 0.0:
        raise ModelError(f"resonance must be > 0, got {resonance}")
    return params.mass * (TWO_PI * resonance) ** 2


def displacement_amplitude(
    params: MicrogeneratorParameters,
    amplitude: float,
    frequency: float,
    load_resistance: float,
    resonance: float | None = None,
) -> float:
    """Peak relative proof-mass displacement |Z|, metres.

    Args:
        params: device parameters.
        amplitude: base acceleration amplitude A, m/s^2.
        frequency: excitation frequency, Hz.
        load_resistance: resistive load across the coil, ohms.
        resonance: tuned resonance in Hz (None = untuned device).
    """
    _validate(amplitude, frequency, load_resistance)
    w = TWO_PI * frequency
    k = _k_eff(params, resonance)
    z_e = params.coil_resistance + load_resistance + 1j * w * params.coil_inductance
    denom = (
        k
        - params.mass * w**2
        + 1j * w * params.parasitic_damping
        + 1j * w * params.transduction_factor**2 / z_e
    )
    return abs(params.mass * amplitude / denom)


def coil_current_amplitude(
    params: MicrogeneratorParameters,
    amplitude: float,
    frequency: float,
    load_resistance: float,
    resonance: float | None = None,
) -> float:
    """Peak coil current |I|, amperes."""
    _validate(amplitude, frequency, load_resistance)
    w = TWO_PI * frequency
    z = displacement_amplitude(
        params, amplitude, frequency, load_resistance, resonance
    )
    z_e = params.coil_resistance + load_resistance + 1j * w * params.coil_inductance
    return w * params.transduction_factor * z / abs(z_e)


def load_power(
    params: MicrogeneratorParameters,
    amplitude: float,
    frequency: float,
    load_resistance: float,
    resonance: float | None = None,
) -> float:
    """Average power delivered to the resistive load, watts."""
    current = coil_current_amplitude(
        params, amplitude, frequency, load_resistance, resonance
    )
    return 0.5 * current**2 * load_resistance


def power_balance(
    params: MicrogeneratorParameters,
    amplitude: float,
    frequency: float,
    load_resistance: float,
    resonance: float | None = None,
) -> dict[str, float]:
    """All average power flows at steady state, watts.

    Returns a dict with keys ``input``, ``load``, ``coil_loss``,
    ``parasitic``.  The identity ``input = load + coil_loss + parasitic``
    holds exactly (property-tested).
    """
    _validate(amplitude, frequency, load_resistance)
    w = TWO_PI * frequency
    z = displacement_amplitude(
        params, amplitude, frequency, load_resistance, resonance
    )
    current = coil_current_amplitude(
        params, amplitude, frequency, load_resistance, resonance
    )
    p_load = 0.5 * current**2 * load_resistance
    p_coil = 0.5 * current**2 * params.coil_resistance
    p_par = 0.5 * params.parasitic_damping * (w * z) ** 2
    return {
        "input": p_load + p_coil + p_par,
        "load": p_load,
        "coil_loss": p_coil,
        "parasitic": p_par,
    }


def optimal_load_resistance(
    params: MicrogeneratorParameters,
    amplitude: float,
    frequency: float,
    resonance: float | None = None,
) -> float:
    """Load resistance maximizing delivered power at this operating point.

    Solved numerically over log-resistance (the optimum of the coupled
    system has no tidy closed form once coil inductance and resistance
    both matter); bounded to [1 ohm, 10 Mohm].
    """
    _validate(amplitude, frequency, 0.0)

    def negative_power(log_r: float) -> float:
        return -load_power(
            params, amplitude, frequency, math.exp(log_r), resonance
        )

    result = minimize_scalar(
        negative_power,
        bounds=(math.log(1.0), math.log(1.0e7)),
        method="bounded",
        options={"xatol": 1e-6},
    )
    return float(math.exp(result.x))


def max_power_bound(
    params: MicrogeneratorParameters, amplitude: float
) -> float:
    """Velocity-damped-resonator upper bound m*A^2/(16*zeta*w_n), watts.

    The classical bound on resonant harvest when the electrical damping
    is matched to the parasitic damping and coil losses are ignored; the
    achievable load power is always below it (tested).
    """
    if amplitude < 0.0:
        raise ModelError(f"amplitude must be >= 0, got {amplitude}")
    return (
        params.mass
        * amplitude**2
        / (16.0 * params.damping_ratio * params.angular_frequency)
    )


def power_vs_frequency(
    params: MicrogeneratorParameters,
    amplitude: float,
    frequencies: np.ndarray,
    load_resistance: float,
    resonance: float | None = None,
) -> np.ndarray:
    """Vectorized :func:`load_power` over a frequency grid (figure R-F1)."""
    freqs = np.asarray(frequencies, dtype=float)
    if np.any(freqs <= 0.0):
        raise ModelError("all frequencies must be > 0")
    _validate(amplitude, float(freqs.flat[0]), load_resistance)
    w = TWO_PI * freqs
    k = _k_eff(params, resonance)
    z_e = (
        params.coil_resistance
        + load_resistance
        + 1j * w * params.coil_inductance
    )
    denom = (
        k
        - params.mass * w**2
        + 1j * w * params.parasitic_damping
        + 1j * w * params.transduction_factor**2 / z_e
    )
    z = np.abs(params.mass * amplitude / denom)
    current = w * params.transduction_factor * z / np.abs(z_e)
    return 0.5 * current**2 * load_resistance


def half_power_bandwidth(
    params: MicrogeneratorParameters,
    amplitude: float,
    load_resistance: float,
    resonance: float | None = None,
) -> float:
    """Half-power (-3 dB) bandwidth around the loaded resonance, Hz.

    Located numerically from a fine frequency sweep; quantifies how
    quickly an untuned harvester loses output as the ambient frequency
    drifts — the motivation for the tuning subsystem.
    """
    f_c = resonance if resonance is not None else params.natural_frequency
    freqs = np.linspace(0.5 * f_c, 1.5 * f_c, 4001)
    powers = power_vs_frequency(
        params, amplitude, freqs, load_resistance, resonance
    )
    peak = float(np.max(powers))
    above = freqs[powers >= 0.5 * peak]
    if above.size < 2:
        return 0.0
    return float(above[-1] - above[0])
