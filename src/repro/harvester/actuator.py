"""Tuning actuator (motor) cost model.

The published tunable harvester moves its tuning magnet with a small
geared motor and lead screw.  Two costs matter to the energy-management
trade-off the paper studies:

* the *energy* drawn from the node's store per metre of travel, and
* the *time* the move takes, during which the harvester passes through
  mistuned frequencies (the system model degrades harvesting while the
  magnet is in motion).

A lead-screw mechanism is self-locking, so holding a position is free —
that property is what makes infrequent tuning economical at all, and the
tests pin it down.

Defaults: 1 mm/s travel at 2 mJ/mm, i.e. a 2 mW motor — consistent with
the "tuning costs minutes-to-hours of harvesting" economics reported for
the published device (a full-range 23 mm move costs 46 mJ, roughly 15
minutes of harvest at 50 uW).
"""

from __future__ import annotations

from repro.errors import ModelError


class TuningActuator:
    """Lead-screw tuning-motor model.

    Args:
        speed: magnet travel speed, m/s.
        energy_per_metre: electrical energy drawn per metre moved, J/m.
        overhead_energy: fixed per-move cost (driver start-up, gap
            measurement), J.
        gap_travel_min: lower mechanical travel stop, m.
        gap_travel_max: upper mechanical travel stop, m.
    """

    def __init__(
        self,
        speed: float = 1.0e-3,
        energy_per_metre: float = 2.0,
        overhead_energy: float = 0.3e-3,
        gap_travel_min: float = 1.0e-3,
        gap_travel_max: float = 30.0e-3,
    ):
        if speed <= 0.0:
            raise ModelError(f"actuator speed must be > 0, got {speed}")
        if energy_per_metre < 0.0:
            raise ModelError(
                f"energy_per_metre must be >= 0, got {energy_per_metre}"
            )
        if overhead_energy < 0.0:
            raise ModelError(
                f"overhead_energy must be >= 0, got {overhead_energy}"
            )
        if not (0.0 < gap_travel_min < gap_travel_max):
            raise ModelError(
                "need 0 < gap_travel_min < gap_travel_max, got "
                f"[{gap_travel_min}, {gap_travel_max}]"
            )
        self.speed = float(speed)
        self.energy_per_metre = float(energy_per_metre)
        self.overhead_energy = float(overhead_energy)
        self.gap_travel_min = float(gap_travel_min)
        self.gap_travel_max = float(gap_travel_max)

    @property
    def moving_power(self) -> float:
        """Electrical power drawn while the magnet is in motion, W."""
        return self.energy_per_metre * self.speed

    def clamp(self, gap: float) -> float:
        """Project a requested gap onto the mechanical travel."""
        return min(max(gap, self.gap_travel_min), self.gap_travel_max)

    def move_cost(self, gap_from: float, gap_to: float) -> tuple[float, float]:
        """(duration s, energy J) for a move between two gaps.

        Zero-length moves are free: the controller's dead-band logic
        relies on "decide not to move" costing nothing beyond the
        measurement overhead it already paid.
        """
        start = self.clamp(gap_from)
        end = self.clamp(gap_to)
        distance = abs(end - start)
        if distance == 0.0:
            return 0.0, 0.0
        duration = distance / self.speed
        energy = distance * self.energy_per_metre + self.overhead_energy
        return duration, energy

    def gap_trajectory(self, gap_from: float, gap_to: float, t: float) -> float:
        """Gap at time ``t`` after a move from ``gap_from`` began.

        Constant-speed profile; saturates at the target.  The system
        model samples this while a retune is in progress so the
        mechanics sweep through the intermediate stiffnesses.
        """
        start = self.clamp(gap_from)
        end = self.clamp(gap_to)
        if t <= 0.0:
            return start
        distance = abs(end - start)
        travelled = min(self.speed * t, distance)
        direction = 1.0 if end >= start else -1.0
        return start + direction * travelled
