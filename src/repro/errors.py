"""Exception hierarchy for the :mod:`repro` toolkit.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch toolkit failures without also
swallowing programming errors such as :class:`TypeError`.

The hierarchy mirrors the major subsystems:

* :class:`ModelError` — a physical model was configured with parameters
  that are out of range or mutually inconsistent (negative mass, a
  tuning range the actuator cannot reach, ...).
* :class:`SimulationError` — a transient simulation failed to make
  progress (Newton-Raphson divergence, step underflow, state blow-up).
* :class:`DesignError` — a DoE design request is infeasible (unknown
  generator letter, Plackett-Burman size not available, ...).
* :class:`FitError` — a response-surface fit is ill-posed (fewer runs
  than model terms, singular normal equations, unknown term).
* :class:`OptimizationError` — an RSM-based optimization could not
  produce a usable answer (empty feasible set, no finite desirability).

The execution substrate (stores, queues, workers) adds a second axis:
**transient vs terminal**.  A transient failure (a locked SQLite
database, a flaky filesystem, a lease that briefly cannot be stamped)
is expected to clear on its own and is worth retrying; a terminal one
(a mistyped path, a broken evaluator spec) is not.  The taxonomy
encodes that axis structurally — :class:`TransientError` is a mixin,
so ``isinstance(error, TransientError)`` answers "should I retry?"
without string-matching messages — and :func:`is_transient` extends
the answer to the stdlib errors third-party layers raise
(:class:`sqlite3.OperationalError` lock/busy conditions, interrupted
I/O).  :mod:`repro.exec.resilience` builds its retry policies and
circuit breakers on exactly this classification.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error deliberately raised by :mod:`repro`."""


class ModelError(ReproError):
    """A physical model received invalid or inconsistent parameters."""


class SimulationError(ReproError):
    """A transient simulation failed to converge or make progress."""


class DesignError(ReproError):
    """A design-of-experiments construction request is infeasible."""


class FitError(ReproError):
    """A response-surface fit is ill-posed or numerically singular."""


class OptimizationError(ReproError):
    """An RSM-based optimization produced no usable result."""


# -- execution-substrate taxonomy ----------------------------------------------


class TransientError(ReproError):
    """Mixin marking a failure expected to clear on its own.

    Raisers combine it with a subsystem error class
    (:class:`TransientStoreError`, :class:`TransientQueueError`);
    retry layers catch it without caring which subsystem hiccuped.
    """


class StoreError(ReproError):
    """A :class:`~repro.exec.store.CacheStore` operation failed."""


class TransientStoreError(StoreError, TransientError):
    """A store failure worth retrying (lock contention, flaky I/O)."""


class QueueError(ReproError):
    """A :class:`~repro.exec.queue.WorkQueue` operation failed."""


class TransientQueueError(QueueError, TransientError):
    """A queue failure worth retrying (lock contention, flaky I/O)."""


class WorkerError(ReproError):
    """A ``repro-worker`` process could not do its job."""


class EvaluatorConfigError(WorkerError):
    """The worker's ``--evaluator module:factory`` spec is unusable.

    Importing the module, resolving the attribute, or *calling* the
    factory failed — an operator configuration problem, not a crash.
    ``repro-worker`` exits with a distinct code
    (:data:`repro.exec.worker.EXIT_EVALUATOR_CONFIG`) so supervisors
    never restart-loop a worker that can never start.
    """


class CircuitOpenError(ReproError):
    """A circuit breaker is open: the protected component has failed
    persistently and calls are being rejected fast instead of each
    paying the full failure latency.  Carries when the breaker will
    next allow a probe, for callers that want to wait it out."""

    def __init__(self, message: str, retry_at: float | None = None):
        super().__init__(message)
        self.retry_at = retry_at


#: ``sqlite3.OperationalError`` messages that signal lock contention —
#: the database is healthy, somebody else is just holding it.
_SQLITE_TRANSIENT_MARKERS = (
    "database is locked",
    "database is busy",
    "database table is locked",
    "locking protocol",
)


def is_transient(error: BaseException) -> bool:
    """Whether an exception is worth retrying.

    Recognizes this package's :class:`TransientError` taxonomy plus
    the stdlib shapes the substrate's dependencies raise: SQLite
    lock/busy conditions and interrupted/temporarily-failing I/O.
    Everything else — including every other :class:`ReproError` — is
    terminal: retrying a mistyped path or a corrupt-store refusal
    only hides the real problem.
    """
    import sqlite3

    if isinstance(error, TransientError):
        return True
    if isinstance(error, sqlite3.OperationalError):
        message = str(error).lower()
        return any(
            marker in message for marker in _SQLITE_TRANSIENT_MARKERS
        )
    if isinstance(error, (BlockingIOError, InterruptedError, TimeoutError)):
        return True
    return False
