"""Exception hierarchy for the :mod:`repro` toolkit.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch toolkit failures without also
swallowing programming errors such as :class:`TypeError`.

The hierarchy mirrors the major subsystems:

* :class:`ModelError` — a physical model was configured with parameters
  that are out of range or mutually inconsistent (negative mass, a
  tuning range the actuator cannot reach, ...).
* :class:`SimulationError` — a transient simulation failed to make
  progress (Newton-Raphson divergence, step underflow, state blow-up).
* :class:`DesignError` — a DoE design request is infeasible (unknown
  generator letter, Plackett-Burman size not available, ...).
* :class:`FitError` — a response-surface fit is ill-posed (fewer runs
  than model terms, singular normal equations, unknown term).
* :class:`OptimizationError` — an RSM-based optimization could not
  produce a usable answer (empty feasible set, no finite desirability).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error deliberately raised by :mod:`repro`."""


class ModelError(ReproError):
    """A physical model received invalid or inconsistent parameters."""


class SimulationError(ReproError):
    """A transient simulation failed to converge or make progress."""


class DesignError(ReproError):
    """A design-of-experiments construction request is infeasible."""


class FitError(ReproError):
    """A response-surface fit is ill-posed or numerically singular."""


class OptimizationError(ReproError):
    """An RSM-based optimization produced no usable result."""
