"""Durable, resumable campaign state.

A campaign is a *sequence of decisions* — which box to fit in, which
points to spend simulation budget on next — and each decision is only
as durable as the journal it is written to.  :class:`CampaignJournal`
records the campaign's configuration, every round's *plan* (box +
points, written **before** any evaluation is submitted) and every
round's *outcome* (responses, fitted-optimum summary, diagnostics,
convergence ledger), so a SIGKILLed campaign resumes mid-round: the
interrupted round's plan is re-submitted through the evaluation
engine, whose shared :class:`~repro.exec.store.CacheStore` answers the
points that already ran — zero evaluations are lost and none repeat.

Three substrates mirror the :class:`~repro.exec.queue.WorkQueue` pair
plus the in-memory default:

* :class:`MemoryCampaignJournal` — process-local dicts, for tests and
  throwaway campaigns without a persistent cache.
* :class:`SQLiteCampaignJournal` — ``campaigns`` / ``campaign_rounds``
  tables in a WAL-mode database, which may be *the same file* as a
  :class:`~repro.exec.store.SQLiteStore` and
  :class:`~repro.exec.queue.SQLiteWorkQueue`: one ``.sqlite`` path
  then carries results, work **and** campaign state.
* :class:`FileCampaignJournal` — one JSON document per campaign in a
  ``.campaign/`` directory beside a file store, rewritten atomically
  (tmp + rename) on every mutation, so a crash always leaves the last
  consistent state.

:func:`resolve_journal` maps a path spec to the right journal the way
:func:`~repro.exec.store.resolve_store` does for stores, and
:func:`journal_for_store` derives the journal co-located with a store.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.exec.sqlite_util import connect_wal
from repro.exec.store import CacheStore, FileStore, MemoryStore, SQLiteStore

#: On-disk schema version of journal rows/files; a mismatched record
#: is refused (never silently resumed under stale semantics).
CAMPAIGN_SCHEMA_VERSION = 1

#: Subdirectory a file journal occupies inside a store directory.
CAMPAIGN_SUBDIR = ".campaign"

#: Campaign lifecycle states.
CAMPAIGN_STATUSES = ("running", "complete")

#: Round lifecycle states: ``planned`` (points journaled, evaluation
#: possibly in flight) -> ``complete`` (responses + fit recorded).
ROUND_STATUSES = ("planned", "complete")


@dataclass
class RoundEntry:
    """One round's journal row.

    Attributes:
        index: zero-based round number.
        status: one of :data:`ROUND_STATUSES`.
        planned: the plan written before evaluation (box, coded
            points, acquisition reason, seed).
        completed: the outcome written after fitting (responses,
            optimum, diagnostics, next-round plan), or None.
    """

    index: int
    status: str
    planned: dict = field(default_factory=dict)
    completed: dict | None = None

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "status": self.status,
            "planned": self.planned,
            "completed": self.completed,
        }


@dataclass
class CampaignRecord:
    """One campaign's journal state.

    Attributes:
        campaign_id: the operator-facing identity.
        status: one of :data:`CAMPAIGN_STATUSES`.
        config: the serialized campaign configuration (objective,
            convergence criteria, seeds) — everything a resume needs
            besides the evaluator itself.
        result: the final result payload once finished.
        created_at / updated_at: epoch stamps.
        rounds: round entries in index order.
    """

    campaign_id: str
    status: str
    config: dict
    result: dict | None = None
    created_at: float | None = None
    updated_at: float | None = None
    rounds: list[RoundEntry] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "status": self.status,
            "config": self.config,
            "result": self.result,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "rounds": [entry.as_dict() for entry in self.rounds],
        }


class CampaignJournal(ABC):
    """Durable record of campaign configuration, plans and outcomes.

    The contract: :meth:`create` refuses to clobber an existing
    campaign unless asked, :meth:`begin_round` journals a round's plan
    *before* any evaluation is dispatched, :meth:`complete_round`
    records its outcome, :meth:`finish` seals the campaign, and every
    mutation is atomic on the backing substrate — a kill between any
    two calls leaves a state :meth:`load` returns consistently.
    """

    name: str = "abstract"

    @abstractmethod
    def create(
        self, campaign_id: str, config: dict, overwrite: bool = False
    ) -> None:
        """Register a new campaign (status ``running``, no rounds)."""

    @abstractmethod
    def load(self, campaign_id: str) -> CampaignRecord | None:
        """The full record (rounds included), or None."""

    @abstractmethod
    def campaigns(self) -> list[CampaignRecord]:
        """Every campaign record, most recently updated last."""

    @abstractmethod
    def begin_round(
        self, campaign_id: str, index: int, planned: dict
    ) -> None:
        """Journal a round's plan before evaluation starts."""

    @abstractmethod
    def complete_round(
        self, campaign_id: str, index: int, completed: dict
    ) -> None:
        """Journal a round's outcome."""

    @abstractmethod
    def finish(self, campaign_id: str, result: dict) -> None:
        """Seal the campaign with its final result payload."""

    def advance_round(
        self,
        campaign_id: str,
        index: int,
        completed: dict,
        next_planned: dict,
    ) -> None:
        """Complete round ``index`` and plan round ``index + 1``.

        The round-boundary hot path, folded into *one* durable
        mutation where the substrate allows it (a single SQLite
        transaction, one atomic document rewrite) so each boundary
        pays one sync instead of two.  Must be equivalent to
        :meth:`complete_round` followed by :meth:`begin_round` — the
        default is exactly that sequence, and the crash window
        between the two calls is one resume already handles (the
        completed payload carries the next plan).
        """
        self.complete_round(campaign_id, index, completed)
        self.begin_round(campaign_id, index + 1, next_planned)

    def describe(self) -> dict:
        """Journal parameters for reports and manifests."""
        return {"journal": self.name}

    def close(self) -> None:
        """Release held resources (connections); idempotent."""

    # -- shared guards ---------------------------------------------------------

    def _require(self, campaign_id: str) -> CampaignRecord:
        record = self.load(campaign_id)
        if record is None:
            raise ReproError(
                f"no campaign {campaign_id!r} in this journal; "
                f"have {[c.campaign_id for c in self.campaigns()]}"
            )
        return record


class MemoryCampaignJournal(CampaignJournal):
    """Process-local journal (no durability; the testing default)."""

    name = "memory"

    def __init__(self) -> None:
        self._records: dict[str, CampaignRecord] = {}

    def create(
        self, campaign_id: str, config: dict, overwrite: bool = False
    ) -> None:
        if campaign_id in self._records and not overwrite:
            raise ReproError(
                f"campaign {campaign_id!r} already exists; pass "
                "overwrite=True (CLI: --fresh) to restart it"
            )
        now = time.time()
        self._records[campaign_id] = CampaignRecord(
            campaign_id=campaign_id,
            status="running",
            config=dict(config),
            created_at=now,
            updated_at=now,
        )

    def load(self, campaign_id: str) -> CampaignRecord | None:
        return self._records.get(campaign_id)

    def campaigns(self) -> list[CampaignRecord]:
        return sorted(
            self._records.values(), key=lambda r: r.updated_at or 0.0
        )

    def begin_round(
        self, campaign_id: str, index: int, planned: dict
    ) -> None:
        record = self._require(campaign_id)
        record.rounds = [r for r in record.rounds if r.index != index]
        record.rounds.append(
            RoundEntry(index=index, status="planned", planned=dict(planned))
        )
        record.rounds.sort(key=lambda r: r.index)
        record.updated_at = time.time()

    def complete_round(
        self, campaign_id: str, index: int, completed: dict
    ) -> None:
        record = self._require(campaign_id)
        for entry in record.rounds:
            if entry.index == index:
                entry.status = "complete"
                entry.completed = dict(completed)
                record.updated_at = time.time()
                return
        raise ReproError(
            f"campaign {campaign_id!r} has no planned round {index}"
        )

    def finish(self, campaign_id: str, result: dict) -> None:
        record = self._require(campaign_id)
        record.status = "complete"
        record.result = dict(result)
        record.updated_at = time.time()


class SQLiteCampaignJournal(CampaignJournal):
    """Campaign rows in a WAL-mode SQLite database.

    The ``campaigns`` / ``campaign_rounds`` tables happily share a
    database file with the store's ``evaluations`` and the queue's
    ``queue_jobs`` tables.  Like the queue — and unlike the store —
    the journal never deletes a corrupt database; open errors
    propagate.
    """

    name = "sqlite"

    def __init__(self, path: str | os.PathLike, timeout: float = 30.0):
        self.path = Path(path)
        self.timeout = float(timeout)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReproError(
                f"cannot create journal directory {self.path.parent}: "
                f"{error}"
            ) from error
        self._closed = False
        self._conn = self._open()

    def _open(self) -> sqlite3.Connection:
        conn = connect_wal(
            self.path, timeout=self.timeout, autocommit=True
        )
        try:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS campaigns ("
                " campaign_id TEXT PRIMARY KEY,"
                " schema_version INTEGER NOT NULL,"
                " status TEXT NOT NULL DEFAULT 'running',"
                " config TEXT NOT NULL,"
                " result TEXT,"
                " created_at REAL NOT NULL,"
                " updated_at REAL NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS campaign_rounds ("
                " campaign_id TEXT NOT NULL,"
                " round INTEGER NOT NULL,"
                " status TEXT NOT NULL DEFAULT 'planned',"
                " planned TEXT NOT NULL,"
                " completed TEXT,"
                " updated_at REAL NOT NULL,"
                " PRIMARY KEY (campaign_id, round))"
            )
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    @staticmethod
    def _decode(blob: str | None) -> dict | None:
        if blob is None:
            return None
        try:
            decoded = json.loads(blob)
        except ValueError:
            return None
        return decoded if isinstance(decoded, dict) else None

    def create(
        self, campaign_id: str, config: dict, overwrite: bool = False
    ) -> None:
        now = time.time()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT 1 FROM campaigns WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
            if row is not None:
                if not overwrite:
                    self._conn.execute("ROLLBACK")
                    raise ReproError(
                        f"campaign {campaign_id!r} already exists; pass "
                        "overwrite=True (CLI: --fresh) to restart it"
                    )
                self._conn.execute(
                    "DELETE FROM campaign_rounds WHERE campaign_id = ?",
                    (campaign_id,),
                )
                self._conn.execute(
                    "DELETE FROM campaigns WHERE campaign_id = ?",
                    (campaign_id,),
                )
            self._conn.execute(
                "INSERT INTO campaigns"
                " (campaign_id, schema_version, status, config,"
                "  created_at, updated_at)"
                " VALUES (?, ?, 'running', ?, ?, ?)",
                (
                    campaign_id,
                    CAMPAIGN_SCHEMA_VERSION,
                    json.dumps(config, sort_keys=True),
                    now,
                    now,
                ),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.OperationalError:
                pass
            raise

    def load(self, campaign_id: str) -> CampaignRecord | None:
        row = self._conn.execute(
            "SELECT schema_version, status, config, result,"
            " created_at, updated_at FROM campaigns"
            " WHERE campaign_id = ?",
            (campaign_id,),
        ).fetchone()
        if row is None:
            return None
        schema_version, status, config, result, created_at, updated_at = row
        if schema_version != CAMPAIGN_SCHEMA_VERSION:
            raise ReproError(
                f"campaign {campaign_id!r} was journaled under schema "
                f"{schema_version}, this build speaks "
                f"{CAMPAIGN_SCHEMA_VERSION}; not resuming under stale "
                "semantics"
            )
        record = CampaignRecord(
            campaign_id=campaign_id,
            status=status,
            config=self._decode(config) or {},
            result=self._decode(result),
            created_at=created_at,
            updated_at=updated_at,
        )
        rows = self._conn.execute(
            "SELECT round, status, planned, completed"
            " FROM campaign_rounds WHERE campaign_id = ?"
            " ORDER BY round",
            (campaign_id,),
        ).fetchall()
        for index, round_status, planned, completed in rows:
            record.rounds.append(
                RoundEntry(
                    index=int(index),
                    status=round_status,
                    planned=self._decode(planned) or {},
                    completed=self._decode(completed),
                )
            )
        return record

    def campaigns(self) -> list[CampaignRecord]:
        rows = self._conn.execute(
            "SELECT campaign_id FROM campaigns ORDER BY updated_at, "
            "campaign_id"
        ).fetchall()
        return [self.load(row[0]) for row in rows]

    def begin_round(
        self, campaign_id: str, index: int, planned: dict
    ) -> None:
        self._require(campaign_id)
        self._conn.execute(
            "INSERT OR REPLACE INTO campaign_rounds"
            " (campaign_id, round, status, planned, completed, updated_at)"
            " VALUES (?, ?, 'planned', ?, NULL, ?)",
            (
                campaign_id,
                index,
                json.dumps(planned, sort_keys=True),
                time.time(),
            ),
        )
        self._touch(campaign_id)

    def complete_round(
        self, campaign_id: str, index: int, completed: dict
    ) -> None:
        cursor = self._conn.execute(
            "UPDATE campaign_rounds SET status = 'complete',"
            " completed = ?, updated_at = ?"
            " WHERE campaign_id = ? AND round = ?",
            (
                json.dumps(completed, sort_keys=True),
                time.time(),
                campaign_id,
                index,
            ),
        )
        if cursor.rowcount == 0:
            raise ReproError(
                f"campaign {campaign_id!r} has no planned round {index}"
            )
        self._touch(campaign_id)

    def advance_round(
        self,
        campaign_id: str,
        index: int,
        completed: dict,
        next_planned: dict,
    ) -> None:
        now = time.time()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = self._conn.execute(
                "UPDATE campaign_rounds SET status = 'complete',"
                " completed = ?, updated_at = ?"
                " WHERE campaign_id = ? AND round = ?",
                (
                    json.dumps(completed, sort_keys=True),
                    now,
                    campaign_id,
                    index,
                ),
            )
            if cursor.rowcount == 0:
                raise ReproError(
                    f"campaign {campaign_id!r} has no planned round {index}"
                )
            self._conn.execute(
                "INSERT OR REPLACE INTO campaign_rounds"
                " (campaign_id, round, status, planned, completed,"
                "  updated_at)"
                " VALUES (?, ?, 'planned', ?, NULL, ?)",
                (
                    campaign_id,
                    index + 1,
                    json.dumps(next_planned, sort_keys=True),
                    now,
                ),
            )
            self._conn.execute(
                "UPDATE campaigns SET updated_at = ? WHERE campaign_id = ?",
                (now, campaign_id),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.OperationalError:
                pass
            raise

    def finish(self, campaign_id: str, result: dict) -> None:
        cursor = self._conn.execute(
            "UPDATE campaigns SET status = 'complete', result = ?,"
            " updated_at = ? WHERE campaign_id = ?",
            (json.dumps(result, sort_keys=True), time.time(), campaign_id),
        )
        if cursor.rowcount == 0:
            raise ReproError(f"no campaign {campaign_id!r} in this journal")

    def _touch(self, campaign_id: str) -> None:
        self._conn.execute(
            "UPDATE campaigns SET updated_at = ? WHERE campaign_id = ?",
            (time.time(), campaign_id),
        )

    def describe(self) -> dict:
        return {"journal": self.name, "path": str(self.path)}

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._conn.close()

    # Mirror SQLiteWorkQueue: connections cannot pickle, paths can.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_conn"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._closed = False
        self._conn = self._open()


class FileCampaignJournal(CampaignJournal):
    """One JSON document per campaign, rewritten atomically.

    A campaign lives at ``<dir>/<campaign_id>.json``; every mutation
    rewrites the whole document through a temp file and ``os.replace``
    — atomic on POSIX — so a crash at any instant leaves the previous
    consistent state on disk.  Campaign documents are small (round
    payloads, not raw traces), so whole-document rewrites stay cheap.
    """

    name = "file"

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReproError(
                f"cannot create journal directory {self.directory}: {error}"
            ) from error

    def _path(self, campaign_id: str) -> Path:
        if not campaign_id or "/" in campaign_id or campaign_id.startswith("."):
            raise ReproError(
                f"campaign id {campaign_id!r} is not a valid journal name"
            )
        return self.directory / f"{campaign_id}.json"

    def _read(self, campaign_id: str) -> dict | None:
        try:
            blob = json.loads(
                self._path(campaign_id).read_text(encoding="utf-8")
            )
        except OSError:
            return None
        except ValueError as error:
            raise ReproError(
                f"campaign journal {self._path(campaign_id)} is corrupt: "
                f"{error}"
            ) from error
        if not isinstance(blob, dict):
            raise ReproError(
                f"campaign journal {self._path(campaign_id)} is corrupt: "
                "not a JSON object"
            )
        if blob.get("schema") != CAMPAIGN_SCHEMA_VERSION:
            raise ReproError(
                f"campaign {campaign_id!r} was journaled under schema "
                f"{blob.get('schema')}, this build speaks "
                f"{CAMPAIGN_SCHEMA_VERSION}; not resuming under stale "
                "semantics"
            )
        return blob

    def _write(self, campaign_id: str, blob: dict) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".write-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(blob, handle, sort_keys=True)
            os.replace(tmp_name, self._path(campaign_id))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @staticmethod
    def _record_from(campaign_id: str, blob: dict) -> CampaignRecord:
        record = CampaignRecord(
            campaign_id=campaign_id,
            status=blob.get("status", "running"),
            config=blob.get("config") or {},
            result=blob.get("result"),
            created_at=blob.get("created_at"),
            updated_at=blob.get("updated_at"),
        )
        for entry in blob.get("rounds", []):
            record.rounds.append(
                RoundEntry(
                    index=int(entry["index"]),
                    status=entry.get("status", "planned"),
                    planned=entry.get("planned") or {},
                    completed=entry.get("completed"),
                )
            )
        record.rounds.sort(key=lambda r: r.index)
        return record

    def create(
        self, campaign_id: str, config: dict, overwrite: bool = False
    ) -> None:
        path = self._path(campaign_id)
        if path.exists() and not overwrite:
            raise ReproError(
                f"campaign {campaign_id!r} already exists; pass "
                "overwrite=True (CLI: --fresh) to restart it"
            )
        now = time.time()
        self._write(
            campaign_id,
            {
                "schema": CAMPAIGN_SCHEMA_VERSION,
                "campaign_id": campaign_id,
                "status": "running",
                "config": dict(config),
                "result": None,
                "created_at": now,
                "updated_at": now,
                "rounds": [],
            },
        )

    def load(self, campaign_id: str) -> CampaignRecord | None:
        blob = self._read(campaign_id)
        if blob is None:
            return None
        return self._record_from(campaign_id, blob)

    def campaigns(self) -> list[CampaignRecord]:
        records = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:  # pragma: no cover - directory raced away
            return []
        for name in names:
            if not name.endswith(".json") or name.startswith("."):
                continue
            record = self.load(name[: -len(".json")])
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: r.updated_at or 0.0)
        return records

    def _mutate(self, campaign_id: str, mutate) -> None:
        blob = self._read(campaign_id)
        if blob is None:
            raise ReproError(
                f"no campaign {campaign_id!r} in this journal"
            )
        mutate(blob)
        blob["updated_at"] = time.time()
        self._write(campaign_id, blob)

    def begin_round(
        self, campaign_id: str, index: int, planned: dict
    ) -> None:
        def mutate(blob: dict) -> None:
            rounds = [
                r for r in blob.get("rounds", []) if r["index"] != index
            ]
            rounds.append(
                {
                    "index": index,
                    "status": "planned",
                    "planned": dict(planned),
                    "completed": None,
                }
            )
            rounds.sort(key=lambda r: r["index"])
            blob["rounds"] = rounds

        self._mutate(campaign_id, mutate)

    def complete_round(
        self, campaign_id: str, index: int, completed: dict
    ) -> None:
        def mutate(blob: dict) -> None:
            for entry in blob.get("rounds", []):
                if entry["index"] == index:
                    entry["status"] = "complete"
                    entry["completed"] = dict(completed)
                    return
            raise ReproError(
                f"campaign {campaign_id!r} has no planned round {index}"
            )

        self._mutate(campaign_id, mutate)

    def advance_round(
        self,
        campaign_id: str,
        index: int,
        completed: dict,
        next_planned: dict,
    ) -> None:
        def mutate(blob: dict) -> None:
            rounds = blob.get("rounds", [])
            for entry in rounds:
                if entry["index"] == index:
                    entry["status"] = "complete"
                    entry["completed"] = dict(completed)
                    break
            else:
                raise ReproError(
                    f"campaign {campaign_id!r} has no planned round {index}"
                )
            rounds = [r for r in rounds if r["index"] != index + 1]
            rounds.append(
                {
                    "index": index + 1,
                    "status": "planned",
                    "planned": dict(next_planned),
                    "completed": None,
                }
            )
            rounds.sort(key=lambda r: r["index"])
            blob["rounds"] = rounds

        self._mutate(campaign_id, mutate)

    def finish(self, campaign_id: str, result: dict) -> None:
        def mutate(blob: dict) -> None:
            blob["status"] = "complete"
            blob["result"] = dict(result)

        self._mutate(campaign_id, mutate)

    def describe(self) -> dict:
        return {"journal": self.name, "directory": str(self.directory)}


#: File suffixes that make :func:`resolve_journal` pick SQLite.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def resolve_journal(
    spec: "CampaignJournal | str | os.PathLike | None",
) -> CampaignJournal:
    """Build a journal from a path spec, or pass a ready one through.

    The spec convention mirrors :func:`~repro.exec.queue.resolve_queue`
    so *one path* names the whole substrate: None is an in-memory
    journal, a ``.sqlite``/``.db`` path keeps campaign rows in that
    database (beside the store's and queue's tables), any other path
    is treated as a store directory whose journal lives in its
    ``.campaign/`` subdirectory.
    """
    if spec is None:
        return MemoryCampaignJournal()
    if isinstance(spec, CampaignJournal):
        return spec
    path = Path(spec)
    if path.suffix.lower() in _SQLITE_SUFFIXES:
        return SQLiteCampaignJournal(path)
    return FileCampaignJournal(path / CAMPAIGN_SUBDIR)


def journal_for_store(store: CacheStore) -> CampaignJournal:
    """The campaign journal co-located with an evaluation store.

    Persistent stores get a durable journal sharing their substrate;
    a memory store gets a memory journal (nothing to co-locate with).
    """
    if isinstance(store, SQLiteStore):
        return SQLiteCampaignJournal(store.path)
    if isinstance(store, FileStore):
        return FileCampaignJournal(store.directory / CAMPAIGN_SUBDIR)
    if isinstance(store, MemoryStore):
        return MemoryCampaignJournal()
    raise ReproError(
        f"no campaign journal can be co-located with a {store.name!r} "
        "store; use a file or SQLite store (or pass a journal explicitly)"
    )
