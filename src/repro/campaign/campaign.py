"""The adaptive campaign: sequential surrogate-guided exploration.

The one-shot flow (:meth:`~repro.core.toolkit.SensorNodeDesignToolkit
.run_study`) spends its whole simulation budget up front on a fixed
design, fits once and optimizes on the surface.  A :class:`Campaign`
spends the budget *sequentially*: fit the current RSM, diagnose it
(cross-validation, lack-of-fit), let an acquisition strategy decide
which points are worth simulating next — zoom toward the optimum,
infill where the model is weak, walk out of the box when the optimum
is outside it — and stop as soon as the optimum stabilises.  On the
same problem this reaches the one-shot optimum with measurably fewer
simulator runs (``benchmarks/bench_campaign_convergence.py`` records
the ratio).

Execution rides the PR-1..4 substrate unchanged: every round's batch
goes through the owning explorer's
:class:`~repro.exec.engine.EvaluationEngine` — and therefore through
the futures-style :meth:`~repro.exec.backends.EvaluationBackend
.submit` contract, so a round fans out across serial / process /
thread / distributed backends alike and is deduplicated against the
shared :class:`~repro.exec.store.CacheStore`.  Campaign state is
journaled durably beside the store (:mod:`repro.campaign.journal`):
the plan is written *before* evaluation, so a SIGKILLed campaign
resumes mid-round, re-submits the interrupted plan, and the cache
answers everything that already ran — zero evaluations lost, none
repeated, and the resumed run is bit-identical to an uninterrupted
one (all acquisition randomness is seeded per round).

Durability granularity: evaluations become resumable when they reach
the cache store, which happens once per engine dispatch.  The serial
backend therefore evaluates round batches in chunks of
``config.eval_chunk`` (default 1 — every point persists as it
finishes); parallel backends default to whole-round dispatch (the
fan-out grain), and the distributed backend persists per job through
its workers regardless.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.desirability import CompositeDesirability, Desirability
from repro.core.doe.base import Design
from repro.core.explorer import DesignExplorer, ExplorationResult
from repro.core.optimize import (
    OptimizationOutcome,
    optimize_desirability,
    optimize_surface,
)
from repro.core.rsm.anova import anova_table
from repro.core.rsm.crossval import loo_residuals, press
from repro.core.rsm.terms import ModelSpec
from repro.core.rsm.transforms import TransformedSurface
from repro.errors import DesignError, FitError, OptimizationError, ReproError
from repro.campaign.acquisition import (
    AcquisitionStrategy,
    FactorBox,
    Proposal,
    RoundContext,
    initial_design_matrix,
    resolve_acquisition,
)
from repro.campaign.journal import (
    CampaignJournal,
    MemoryCampaignJournal,
    journal_for_store,
    resolve_journal,
)
from repro.obs.catalog import flush_metrics, instrument
from repro.obs.events import emit_event
from repro.obs.tracing import span

#: Stop reasons that count as *converged* (the campaign believes it
#: found the optimum) versus merely *stopped* (resources ran out).
CONVERGED_REASONS = ("optimum-converged", "cv-floor-reached")
STOP_REASONS = CONVERGED_REASONS + (
    "budget-exhausted",
    "max-rounds",
    "region-exhausted",
)


def _jsonify(obj):
    """Recursively convert numpy containers/scalars for JSON."""
    if isinstance(obj, np.ndarray):
        return [_jsonify(v) for v in obj.tolist()]
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, dict):
        return {k: _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    return obj


class Objective:
    """What the campaign steers toward.

    Either a single fitted response (maximized or minimized) or a
    :class:`~repro.core.desirability.CompositeDesirability` over
    several responses.  ``score`` is always *maximize-oriented* so the
    campaign compares candidates uniformly.

    Construct via :meth:`maximize_response` / :meth:`minimize_response`
    / :meth:`of_desirability`.
    """

    def __init__(
        self,
        response: str | None = None,
        maximize: bool = True,
        desirability: CompositeDesirability | None = None,
    ):
        if (response is None) == (desirability is None):
            raise OptimizationError(
                "pass exactly one of response= or desirability="
            )
        self.response = response
        self.maximize = bool(maximize)
        self.desirability = desirability

    # -- constructors ----------------------------------------------------------

    @classmethod
    def maximize_response(cls, name: str) -> "Objective":
        return cls(response=name, maximize=True)

    @classmethod
    def minimize_response(cls, name: str) -> "Objective":
        return cls(response=name, maximize=False)

    @classmethod
    def of_desirability(
        cls, desirability: CompositeDesirability
    ) -> "Objective":
        return cls(desirability=desirability)

    # -- the contract ----------------------------------------------------------

    @property
    def responses(self) -> tuple[str, ...]:
        if self.desirability is not None:
            return self.desirability.response_names
        return (self.response,)

    def score(self, responses: Mapping[str, float]) -> float:
        """Maximize-oriented quality of one response dict."""
        if self.desirability is not None:
            return float(self.desirability(responses))
        value = float(responses[self.response])
        return value if self.maximize else -value

    def describe(self) -> str:
        if self.desirability is not None:
            return f"desirability: {self.desirability.describe()}"
        verb = "maximize" if self.maximize else "minimize"
        return f"{verb} {self.response}"

    # -- serialization (resume needs the objective back) -----------------------

    def spec(self) -> dict:
        if self.desirability is None:
            return {
                "kind": "response",
                "response": self.response,
                "maximize": self.maximize,
            }
        d = self.desirability
        return {
            "kind": "desirability",
            "parts": {
                name: {
                    "goal": part.goal,
                    "low": part.low,
                    "high": part.high,
                    "target": part.target,
                    "weight": part.weight,
                }
                for name, part in d.parts.items()
            },
            "importances": dict(d.importances),
        }

    @classmethod
    def from_spec(cls, payload: Mapping) -> "Objective":
        kind = payload.get("kind")
        if kind == "response":
            return cls(
                response=payload["response"],
                maximize=bool(payload.get("maximize", True)),
            )
        if kind == "desirability":
            parts = {
                name: Desirability(
                    entry["goal"],
                    entry["low"],
                    entry["high"],
                    target=entry.get("target"),
                    weight=entry.get("weight", 1.0),
                )
                for name, entry in payload["parts"].items()
            }
            return cls(
                desirability=CompositeDesirability(
                    parts, importances=payload.get("importances")
                )
            )
        raise ReproError(f"unknown objective spec kind {kind!r}")


@dataclass
class CampaignConfig:
    """Knobs of the sequential exploration.

    Attributes:
        max_rounds: hard round ceiling.
        batch: target new points per acquisition round (the initial
            design sets its own size).
        initial_design: round-0 design inside the full box — ``"ccd"``
            (face-centred, 3 centre replicates) or ``"lhs"``.
        initial_runs: LHS run count for ``initial_design="lhs"``
            (default: enough to identify the model comfortably).
        model: RSM form fitted each round (falls back to ``"linear"``
            when a round's in-box data cannot identify it).
        acquisition: strategy name (see
            :data:`~repro.campaign.acquisition.ACQUISITIONS`) or a
            ready strategy instance.
        shrink: trust-region zoom factor per zoom round.
        min_half_width: smallest box half-width (stops infinite
            zooming).
        optimum_tol: coded-distance optimum shift below which a round
            counts toward convergence.
        patience: consecutive small-shift rounds required to declare
            ``optimum-converged``.
        cv_floor: normalized cross-validation error at or below which
            the surrogate is declared accurate enough
            (``cv-floor-reached``); None disables the criterion.
        budget: simulated-evaluation ceiling (cache hits are free);
            checked between rounds.  None is unbounded.
        seed: base seed; every round derives its own stream from it,
            which is what makes resume bit-identical.
        eval_chunk: points per engine dispatch within a round — the
            durability grain.  None auto-selects 1 for the serial
            backend (every evaluation persists as it lands) and
            whole-round dispatch for parallel backends.
        pipeline_rounds: opt-in round overlap.  While a round's
            stragglers drain, a *speculative* next-round acquisition
            is computed from the points already landed and prefetched
            through the engine's backend, so a distributed fleet
            starts on round r+1 before round r finishes.  The real
            fit and acquisition still run on the full round exactly
            as a sequential campaign's would, so results, the
            journal, and resume stay bit-identical — a wrong guess
            only costs background work whose results land in the
            shared cache anyway.
    """

    max_rounds: int = 8
    batch: int = 8
    initial_design: str = "ccd"
    initial_runs: int | None = None
    model: str = "quadratic"
    acquisition: "str | AcquisitionStrategy" = "auto"
    shrink: float = 0.5
    min_half_width: float = 0.05
    optimum_tol: float = 0.05
    patience: int = 2
    cv_floor: float | None = None
    budget: int | None = None
    seed: int = 7
    eval_chunk: int | None = None
    pipeline_rounds: bool = False

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise DesignError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )
        if self.batch < 1:
            raise DesignError(f"batch must be >= 1, got {self.batch}")
        if not (0.0 < self.shrink <= 1.0):
            raise DesignError(
                f"shrink must be in (0, 1], got {self.shrink}"
            )
        if self.patience < 1:
            raise DesignError(
                f"patience must be >= 1, got {self.patience}"
            )
        if self.optimum_tol <= 0.0:
            raise DesignError(
                f"optimum_tol must be > 0, got {self.optimum_tol}"
            )
        if self.eval_chunk is not None and self.eval_chunk < 1:
            raise DesignError(
                f"eval_chunk must be >= 1, got {self.eval_chunk}"
            )

    def as_dict(self) -> dict:
        payload = {
            "max_rounds": self.max_rounds,
            "batch": self.batch,
            "initial_design": self.initial_design,
            "initial_runs": self.initial_runs,
            "model": self.model,
            # Instances serialize as {name, params} so a resume
            # rebuilds the exact strategy, tunables included.
            "acquisition": (
                self.acquisition.spec()
                if isinstance(self.acquisition, AcquisitionStrategy)
                else self.acquisition
            ),
            "shrink": self.shrink,
            "min_half_width": self.min_half_width,
            "optimum_tol": self.optimum_tol,
            "patience": self.patience,
            "cv_floor": self.cv_floor,
            "budget": self.budget,
            "seed": self.seed,
            "eval_chunk": self.eval_chunk,
            "pipeline_rounds": self.pipeline_rounds,
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CampaignConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class CampaignResult:
    """What a finished (or stopped) campaign produced.

    ``history`` and ``best``/``best_evaluated`` are deterministic
    functions of the configuration and the simulator — a resumed
    campaign reproduces them bit-identically.  ``evaluations`` counts
    *this session's* engine traffic (a resumed session only pays for
    what the journal and cache could not answer), so it is excluded
    from identity comparisons.
    """

    campaign_id: str
    converged: bool
    stop_reason: str
    history: list[dict]
    best: dict
    best_evaluated: dict
    evaluations: dict
    surfaces: dict = field(default_factory=dict, repr=False)

    @property
    def n_rounds(self) -> int:
        return len(self.history)

    def as_dict(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "converged": self.converged,
            "stop_reason": self.stop_reason,
            "n_rounds": self.n_rounds,
            "history": self.history,
            "best": self.best,
            "best_evaluated": self.best_evaluated,
            "evaluations": self.evaluations,
        }

    def report(self) -> str:
        """Multi-section text report of the campaign."""
        lines = [
            f"== campaign {self.campaign_id} ==",
            f"outcome: {self.stop_reason} "
            f"({'converged' if self.converged else 'stopped'}) "
            f"after {self.n_rounds} rounds",
            f"evaluations: {self.evaluations.get('simulated', 0)} "
            f"simulated + {self.evaluations.get('cached', 0)} cached "
            f"this session",
            "",
            "== rounds ==",
            f"{'round':>5}  {'points':>6}  {'score':>12}  {'shift':>9}  "
            f"{'cv':>8}  move",
        ]
        for entry in self.history:
            shift = entry.get("shift")
            cv = entry.get("cv_error")
            lines.append(
                f"{entry['round']:>5}  {entry['n_points']:>6}  "
                f"{entry['score']:>12.5g}  "
                f"{'-' if shift is None else format(shift, '9.4f'):>9}  "
                f"{'-' if cv is None else format(cv, '8.4f'):>8}  "
                f"{entry.get('reason', '-')}"
            )
        lines.append("")
        lines.append("== optimum (fitted surface) ==")
        lines.append(f"score: {self.best['score']:.6g}")
        for name, value in sorted(self.best.get("point", {}).items()):
            lines.append(f"  {name:20s} = {value:.6g}")
        if self.best.get("predictions"):
            lines.append("predicted responses:")
            for name, value in sorted(self.best["predictions"].items()):
                lines.append(f"  {name:20s} = {value:.6g}")
        lines.append("")
        lines.append("== best evaluated point ==")
        lines.append(f"score: {self.best_evaluated['score']:.6g}")
        for name, value in sorted(
            self.best_evaluated.get("point", {}).items()
        ):
            lines.append(f"  {name:20s} = {value:.6g}")
        return "\n".join(lines)

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CampaignResult":
        return cls(
            campaign_id=payload.get("campaign_id", "?"),
            converged=bool(payload.get("converged")),
            stop_reason=payload.get("stop_reason", "?"),
            history=list(payload.get("history", [])),
            best=dict(payload.get("best", {})),
            best_evaluated=dict(payload.get("best_evaluated", {})),
            evaluations=dict(payload.get("evaluations", {})),
        )


@dataclass
class _State:
    """In-memory campaign state (rebuilt from the journal on resume)."""

    x_global: np.ndarray
    responses: dict[str, list[float]]
    history: list[dict] = field(default_factory=list)
    prev_optimum: np.ndarray | None = None
    streak: int = 0
    simulated: int = 0
    cached: int = 0
    #: Points the distributed backend had to evaluate in-process
    #: because the substrate degraded (queue down / fleet silent).
    degraded: int = 0
    #: Speculative next-round points prefetched while a round's
    #: stragglers drained (pipeline_rounds), and how many of them the
    #: real acquisition then actually asked for.
    speculated: int = 0
    speculative_hits: int = 0
    surfaces: dict = field(default_factory=dict)
    last_outcome: OptimizationOutcome | None = None
    last_box: FactorBox | None = None


def _point_key(row: np.ndarray) -> bytes:
    return np.round(np.asarray(row, dtype=float), 12).tobytes()


class Campaign:
    """Sequential surrogate-guided exploration over an explorer.

    Args:
        explorer: the :class:`~repro.core.explorer.DesignExplorer`
            whose engine (backend + cache) evaluates batches; its
            ``responses`` must cover the objective's.
        objective: what to steer toward (an :class:`Objective`, a
            :class:`~repro.core.desirability.CompositeDesirability`,
            or a response name — maximized).
        journal: where state persists — a
            :class:`~repro.campaign.journal.CampaignJournal`, a path
            spec for :func:`~repro.campaign.journal.resolve_journal`,
            or None to co-locate with the explorer's cache store
            (memory journal when the cache is not persistent).
        config: a :class:`CampaignConfig` or a mapping of its fields.
        campaign_id: identity in the journal (several campaigns can
            share one substrate).
        transforms: response name -> transform for fitting (e.g. the
            toolkit's ``{"effective_data_rate": "log1p"}``).
    """

    def __init__(
        self,
        explorer: DesignExplorer,
        objective: "Objective | CompositeDesirability | str",
        journal: "CampaignJournal | str | None" = None,
        config: "CampaignConfig | Mapping | None" = None,
        campaign_id: str = "default",
        transforms: Mapping[str, str] | None = None,
    ):
        self.explorer = explorer
        if isinstance(objective, str):
            objective = Objective.maximize_response(objective)
        elif isinstance(objective, CompositeDesirability):
            objective = Objective.of_desirability(objective)
        self.objective = objective
        missing = set(objective.responses) - set(explorer.responses)
        if missing:
            raise DesignError(
                f"objective needs responses the explorer does not "
                f"produce: {sorted(missing)}"
            )
        if config is None:
            self.config = CampaignConfig()
        elif isinstance(config, CampaignConfig):
            self.config = config
        else:
            self.config = CampaignConfig.from_dict(config)
        self.campaign_id = campaign_id
        self.transforms = {
            name: t
            for name, t in (transforms or {}).items()
            if name in explorer.responses
        }
        if journal is None:
            cache = getattr(explorer.engine, "cache", None)
            self.journal = (
                journal_for_store(cache.store)
                if cache is not None
                else MemoryCampaignJournal()
            )
        else:
            self.journal = resolve_journal(journal)
        #: (round index, point keys) of the live speculative prefetch.
        self._speculation: tuple[int, set[bytes]] | None = None

    # -- identity / config payloads --------------------------------------------

    @property
    def space(self):
        return self.explorer.space

    def _space_spec(self) -> list[dict]:
        return [
            {
                "name": f.name,
                "low": f.low,
                "high": f.high,
                "transform": f.transform,
                "integer": f.integer,
                "units": f.units,
            }
            for f in self.space.factors
        ]

    def _config_payload(self) -> dict:
        return {
            "config": self.config.as_dict(),
            "objective": self.objective.spec(),
            "space": self._space_spec(),
            "responses": list(self.explorer.responses),
            "transforms": dict(self.transforms),
        }

    def _seed_for(self, round_index: int) -> int:
        return (self.config.seed * 1_000_003 + round_index * 101) % (2**31)

    # -- entry points -----------------------------------------------------------

    def _fresh_state(self) -> _State:
        return _State(
            x_global=np.empty((0, self.space.k)),
            responses={name: [] for name in self.explorer.responses},
        )

    def _initial_plan(self) -> dict:
        """The round-0 plan: the initial design in the full box."""
        matrix = initial_design_matrix(
            self.config.initial_design,
            self.space.k,
            self._initial_runs(),
            self._seed_for(0),
        )
        return {
            "box": FactorBox.full(self.space.k).as_dict(),
            "points": _jsonify(np.clip(matrix, -1.0, 1.0)),
            "reason": f"initial {self.config.initial_design} design",
            "strategy": "initial",
            "seed": self._seed_for(0),
        }

    def run(self, overwrite: bool = False) -> CampaignResult:
        """Run a fresh campaign to convergence (or another stop)."""
        self.journal.create(
            self.campaign_id, self._config_payload(), overwrite=overwrite
        )
        state = self._fresh_state()
        plan = self._initial_plan()
        self.journal.begin_round(self.campaign_id, 0, plan)
        return self._advance(state, 0, plan)

    def resume(self) -> CampaignResult:
        """Continue a journaled campaign from its last durable state.

        Completed rounds replay from the journal (no evaluation); an
        interrupted round's plan is re-submitted through the engine,
        whose cache answers the points that already ran.  A finished
        campaign returns its stored result untouched.
        """
        record = self.journal.load(self.campaign_id)
        if record is None:
            raise ReproError(
                f"no campaign {self.campaign_id!r} to resume in "
                f"{self.journal.describe()}"
            )
        stored_space = record.config.get("space")
        if stored_space is not None and stored_space != self._space_spec():
            raise ReproError(
                "the journaled campaign was run over a different factor "
                "space; refusing to resume with this evaluator"
            )
        # The journal's configuration is authoritative: resuming under
        # different knobs would break bit-identical continuation.
        if record.config.get("config"):
            self.config = CampaignConfig.from_dict(record.config["config"])
        if record.config.get("objective"):
            self.objective = Objective.from_spec(record.config["objective"])
        if record.config.get("transforms") is not None:
            self.transforms = dict(record.config["transforms"])
        if record.status == "complete" and record.result is not None:
            return CampaignResult.from_payload(record.result)

        state = self._fresh_state()
        pending: tuple[int, dict] | None = None
        for entry in record.rounds:
            if entry.status == "complete":
                self._replay_round(state, entry.index, entry.planned, entry.completed)
            else:
                pending = (entry.index, entry.planned)
        if pending is None:
            last = state.history[-1] if state.history else None
            if last is not None and last.get("stop_reason"):
                # Killed between the final complete_round and finish():
                # seal the stored outcome.
                result = self._build_result(
                    state, last["stop_reason"]
                )
                self.journal.finish(self.campaign_id, result.as_dict())
                return result
            if last is None:
                # Created but never planned: start round 0 now.
                plan = self._initial_plan()
                self.journal.begin_round(self.campaign_id, 0, plan)
                return self._advance(state, 0, plan)
            # Killed between complete_round(r) and begin_round(r+1):
            # the completed payload carries the next plan.
            next_plan = last.get("_next")
            if next_plan is None:  # pragma: no cover - defensive
                raise ReproError(
                    "journal is missing the next round's plan; cannot "
                    "resume deterministically"
                )
            index = last["round"] + 1
            self.journal.begin_round(self.campaign_id, index, next_plan)
            return self._advance(state, index, next_plan)
        return self._advance(state, pending[0], pending[1])

    def _record_finish(self, state: _State, stop: str) -> None:
        """Final per-study cost accounting.

        Estimates the simulated seconds the campaign's early stop
        avoided: the rounds it did *not* run (relative to
        ``max_rounds``), at this campaign's observed points-per-round
        and the engine's observed seconds-per-point.  A ``max-rounds``
        stop therefore reports zero — nothing was avoided.  The figure
        lands on the ``repro_cost_saved_simulated_seconds`` gauge
        (``source="campaign"``) next to the cache's saving, and a
        metrics flush makes it visible to cross-process aggregation.
        """
        rounds_run = len(state.history)
        remaining = max(0, self.config.max_rounds - rounds_run)
        saved = 0.0
        if remaining and rounds_run and state.simulated:
            engine = self.explorer.engine
            evaluated = getattr(engine, "points_evaluated", 0)
            eval_seconds = getattr(engine, "eval_seconds", 0.0)
            per_point = eval_seconds / evaluated if evaluated else 0.0
            saved = remaining * (state.simulated / rounds_run) * per_point
        instrument("repro_cost_saved_simulated_seconds").set(
            saved, source="campaign"
        )
        flush_metrics("campaign")

    # -- the round loop ----------------------------------------------------------

    def _initial_runs(self) -> int | None:
        if self.config.initial_design != "lhs":
            return self.config.initial_runs
        if self.config.initial_runs is not None:
            return self.config.initial_runs
        p = self._model_spec(self.config.model).p
        return max(4 * self.space.k, p + 4)

    def _model_spec(self, name: str) -> ModelSpec:
        builders = {
            "linear": ModelSpec.linear,
            "interaction": ModelSpec.interaction,
            "quadratic": ModelSpec.quadratic,
        }
        if name not in builders:
            raise FitError(
                f"unknown campaign model {name!r}; pick from "
                f"{sorted(builders)}"
            )
        return builders[name](self.space.k)

    def _advance(
        self, state: _State, index: int, plan: dict
    ) -> CampaignResult:
        """Run rounds from a journaled plan until a stop criterion."""
        while True:
            with span("round", campaign=self.campaign_id, round=index):
                stop, completed = self._run_round(state, index, plan)
            if stop is not None:
                self.journal.complete_round(
                    self.campaign_id, index, completed
                )
                result = self._build_result(state, stop)
                self.journal.finish(self.campaign_id, result.as_dict())
                self._record_finish(state, stop)
                return result
            plan = state.history[-1]["_next"]
            self.journal.advance_round(
                self.campaign_id, index, completed, plan
            )
            index += 1

    def _run_round(
        self, state: _State, index: int, plan: dict
    ) -> tuple[str | None, dict]:
        """Evaluate, fit, diagnose, decide; returns ``(stop, completed)``
        where ``stop`` is a stop reason or None (in which case
        ``state.history[-1]['_next']`` holds the next journaled plan)
        and ``completed`` is the round payload for the caller to
        journal — through one :meth:`~CampaignJournal.advance_round`
        when the campaign continues."""
        cfg = self.config
        box = FactorBox.from_dict(plan["box"])
        points = np.atleast_2d(np.asarray(plan["points"], dtype=float))
        emit_event(
            "round_begin",
            campaign=self.campaign_id,
            round=index,
            points=int(points.shape[0]),
        )
        before = self.explorer.engine.stats_snapshot()
        if cfg.pipeline_rounds and points.shape[0] >= 2:
            columns = self._evaluate_pipelined(state, box, points, index)
        else:
            columns = self._evaluate(points, index)
        delta = self.explorer.engine.stats(since=before)
        simulated = int(delta.get("points_evaluated", 0))
        cached = int((delta.get("cache") or {}).get("hits", 0))
        degraded = int(delta.get("degraded_evaluations", 0))
        state.simulated += simulated
        state.cached += cached
        state.degraded += degraded

        state.x_global = (
            np.vstack([state.x_global, points])
            if state.x_global.size
            else points.copy()
        )
        for name in self.explorer.responses:
            state.responses[name].extend(
                float(v) for v in columns[name]
            )

        with span("fit", campaign=self.campaign_id, round=index):
            analysis = self._fit_and_diagnose(state, box, index)
        state.surfaces = analysis["surfaces"]
        state.last_outcome = analysis["outcome"]
        state.last_box = box

        optimum_global = analysis["optimum_global"]
        shift = (
            float(np.linalg.norm(optimum_global - state.prev_optimum))
            if state.prev_optimum is not None
            else None
        )
        state.prev_optimum = optimum_global
        if shift is not None and shift <= cfg.optimum_tol:
            state.streak += 1
        else:
            state.streak = 0

        stop: str | None = None
        if state.streak >= cfg.patience:
            stop = "optimum-converged"
        elif (
            cfg.cv_floor is not None
            and analysis["cv_error"] is not None
            and analysis["cv_error"] <= cfg.cv_floor
            and index >= 1
        ):
            stop = "cv-floor-reached"
        elif cfg.budget is not None and state.simulated >= cfg.budget:
            stop = "budget-exhausted"
        elif index + 1 >= cfg.max_rounds:
            stop = "max-rounds"

        next_plan: dict | None = None
        if stop is None:
            with span("acquire", campaign=self.campaign_id, round=index):
                proposal = self._acquire(state, box, index, analysis)
            if proposal is None:
                stop = "region-exhausted"
            else:
                next_plan = {
                    "box": proposal.box.as_dict(),
                    "points": _jsonify(proposal.points),
                    "reason": proposal.reason,
                    "strategy": proposal.strategy,
                    "seed": self._seed_for(index + 1),
                }
                self._score_speculation(state, index + 1, proposal.points)

        entry = self._history_entry(
            state, index, plan, box, points, analysis, shift, stop
        )
        if next_plan is not None:
            entry["_next"] = next_plan
        state.history.append(entry)

        completed = dict(entry)
        completed["responses"] = {
            name: _jsonify(columns[name])
            for name in self.explorer.responses
        }
        completed["exec"] = {
            "simulated": simulated,
            "cached": cached,
            "degraded": degraded,
        }
        if next_plan is not None:
            completed["next"] = next_plan
        completed.pop("_next", None)
        instrument("repro_campaign_rounds_total").inc(
            stop=stop or "continue"
        )
        points_metric = instrument("repro_campaign_points_total")
        points_metric.inc(simulated, source="simulated")
        points_metric.inc(cached, source="cached")
        emit_event(
            "round_complete",
            campaign=self.campaign_id,
            round=index,
            simulated=simulated,
            cached=cached,
            degraded=degraded,
            stop=stop,
        )
        return stop, completed

    def _evaluate_pipelined(
        self,
        state: _State,
        box: FactorBox,
        points: np.ndarray,
        index: int,
    ) -> dict[str, np.ndarray]:
        """Evaluate a round while speculatively feeding the next one.

        The round's prefix (enough points for an identifiable fit)
        evaluates first; a speculative next-round acquisition runs on
        prior data + that prefix and its points are *prefetched* —
        enqueued through the backend's futures seam without awaiting
        a handle — so a distributed fleet works on round r+1 while
        this process drains round r's stragglers.  The split is a
        deterministic function of the plan, and every returned value
        is exactly what :meth:`_evaluate` would return: the engine
        cache answers each point identically however it was chunked.
        """
        split = max(1, (points.shape[0] * 3) // 4)
        prefix, stragglers = points[:split], points[split:]
        columns = self._evaluate(prefix, index)
        self._speculate(state, box, prefix, columns, index)
        if stragglers.shape[0]:
            rest = self._evaluate(stragglers, index)
            columns = {
                name: np.concatenate([columns[name], rest[name]])
                for name in self.explorer.responses
            }
        return columns

    def _speculate(
        self,
        state: _State,
        box: FactorBox,
        prefix_points: np.ndarray,
        prefix_columns: dict[str, np.ndarray],
        index: int,
    ) -> None:
        """Guess round ``index + 1`` from the landed prefix and
        prefetch it.

        The guess runs on a *copy* of the state; the real fit and
        acquisition later see the full round exactly as a sequential
        campaign's would, so history, journal and resume stay
        bit-identical.  A guess that cannot fit or optimize is simply
        skipped — speculation must never fail a round.
        """
        guess = _State(
            x_global=(
                np.vstack([state.x_global, prefix_points])
                if state.x_global.size
                else prefix_points.copy()
            ),
            responses={
                name: list(state.responses[name])
                + [float(v) for v in prefix_columns[name]]
                for name in self.explorer.responses
            },
            prev_optimum=state.prev_optimum,
            streak=state.streak,
        )
        try:
            analysis = self._fit_and_diagnose(guess, box, index)
            proposal = self._acquire(guess, box, index, analysis)
        except (FitError, OptimizationError):
            return
        if proposal is None:
            return
        rows = np.atleast_2d(proposal.points)
        self._speculation = (
            index + 1,
            {_point_key(row) for row in rows},
        )
        started = self.explorer.engine.prefetch(
            [self.space.point_to_dict(row) for row in rows]
        )
        state.speculated += int(started)

    def _score_speculation(
        self, state: _State, index: int, points: np.ndarray
    ) -> None:
        """Count how much of a real plan the speculation predicted."""
        speculation = getattr(self, "_speculation", None)
        if speculation is None or speculation[0] != index:
            return
        self._speculation = None
        _, keys = speculation
        state.speculative_hits += sum(
            1 for row in np.atleast_2d(points) if _point_key(row) in keys
        )

    def _evaluate(
        self, points: np.ndarray, index: int
    ) -> dict[str, np.ndarray]:
        """Run a round's batch through the engine, chunked for
        durability (see the module docstring)."""
        chunk = self.config.eval_chunk
        if chunk is None:
            backend = getattr(self.explorer.engine, "backend", None)
            chunk = (
                1
                if getattr(backend, "name", "serial") == "serial"
                else len(points)
            )
        columns: dict[str, list[float]] = {
            name: [] for name in self.explorer.responses
        }
        for start in range(0, len(points), max(chunk, 1)):
            part = points[start : start + max(chunk, 1)]
            result = self.explorer.run_matrix(
                part, kind="campaign-round", meta={"round": index}
            )
            for name in self.explorer.responses:
                columns[name].extend(result.responses[name].tolist())
        return {
            name: np.asarray(values) for name, values in columns.items()
        }

    # -- fit / diagnose / optimize ----------------------------------------------

    def _fit_and_diagnose(
        self, state: _State, box: FactorBox, index: int
    ) -> dict:
        mask = box.contains(state.x_global)
        if not np.any(mask):  # pragma: no cover - defensive
            raise FitError(f"round {index}: no evaluated points in box")
        fit_index = np.flatnonzero(mask)
        x_local = box.to_local(state.x_global[mask])
        columns = {
            name: np.asarray(state.responses[name])[mask]
            for name in self.explorer.responses
        }
        result = ExplorationResult(
            design=Design(
                matrix=x_local, kind="campaign-fit", meta={"round": index}
            ),
            x_coded=x_local,
            responses=columns,
            run_seconds=np.zeros(x_local.shape[0]),
        )
        model_used = self.config.model
        try:
            surfaces = self.explorer.fit_surfaces(
                result, model=model_used, transforms=self.transforms
            )
        except FitError:
            # The in-box sample cannot identify the full model (early
            # ascent rounds, thin boxes): a first-order fit still
            # steers, and the next zoom round re-enriches the sample.
            model_used = "linear"
            surfaces = self.explorer.fit_surfaces(
                result, model=model_used, transforms=self.transforms
            )

        cv_per_response: dict[str, float | None] = {}
        loo_max = np.zeros(x_local.shape[0])
        lof_p: float | None = None
        for name in self.objective.responses:
            surface = surfaces[name]
            base = (
                surface.base
                if isinstance(surface, TransformedSurface)
                else surface
            )
            span = float(base.y_train.max() - base.y_train.min())
            press_value = press(base)
            if np.isfinite(press_value) and span > 0.0:
                cv = float(
                    np.sqrt(press_value / base.stats.n) / span
                )
            elif span == 0.0:
                cv = 0.0  # constant response: the fit is exact
            else:
                cv = None  # saturated fit: leverage-1 runs
            cv_per_response[name] = cv
            loo = np.abs(loo_residuals(base))
            loo = np.where(np.isfinite(loo), loo, 0.0)
            if span > 0.0:
                loo_max = np.maximum(loo_max, loo / span)
            table = anova_table(base)
            try:
                p_value = table.row("lack-of-fit").p_value
            except FitError:
                p_value = float("nan")
            if np.isfinite(p_value):
                lof_p = (
                    p_value if lof_p is None else min(lof_p, p_value)
                )
        finite = [v for v in cv_per_response.values() if v is not None]
        cv_error = max(finite) if finite else None

        outcome, relaxed = self._optimize(surfaces)
        optimum_global = np.clip(
            box.to_global(outcome.x_coded), -1.0, 1.0
        )
        predictions = {
            name: float(
                surfaces[name].predict(
                    np.atleast_2d(outcome.x_coded)
                )[0]
            )
            for name in self.objective.responses
        }
        quality = result.design.quality(model_used)
        objective_surface = None
        if self.objective.response is not None:
            surface = surfaces[self.objective.response]
            objective_surface = (
                surface.base
                if isinstance(surface, TransformedSurface)
                else surface
            )
        return {
            "surfaces": surfaces,
            "outcome": outcome,
            "objective_surface": objective_surface,
            "optimum_global": optimum_global,
            "predictions": predictions,
            "cv_error": cv_error,
            "cv_per_response": cv_per_response,
            "lack_of_fit_p": lof_p,
            "loo_error": loo_max,
            "fit_index": fit_index,
            "model_used": model_used,
            "relaxed": relaxed,
            "quality": {
                "d_efficiency": float(quality["d_efficiency"]),
                "condition_number": float(quality["condition_number"]),
            },
            "n_fit": int(x_local.shape[0]),
        }

    def _optimize(self, surfaces) -> tuple[OptimizationOutcome, bool]:
        if self.objective.desirability is None:
            outcome = optimize_surface(
                surfaces[self.objective.response],
                maximize=self.objective.maximize,
            )
            return outcome, False
        try:
            return (
                optimize_desirability(
                    surfaces, self.objective.desirability
                ),
                False,
            )
        except OptimizationError:
            # All-zero desirability on the scan grid: every hard
            # constraint vetoes everywhere.  Steer by the *relaxed*
            # (arithmetic-mean, non-vetoing) desirability so the
            # campaign walks toward feasibility instead of dying.
            return self._relaxed_optimum(surfaces), True

    def _relaxed_optimum(self, surfaces) -> OptimizationOutcome:
        d = self.objective.desirability
        names = list(d.response_names)
        k = surfaces[names[0]].k
        axes = [np.linspace(-1.0, 1.0, 7)] * k
        grid = np.array(list(itertools.product(*axes)))
        predictions = {
            name: surfaces[name].predict(grid) for name in names
        }
        total = np.zeros(grid.shape[0])
        for name in names:
            part = d.parts[name]
            weight = d.importances[name]
            total += weight * part.vectorized(predictions[name])
        best = int(np.argmax(total))
        responses = {
            name: float(predictions[name][best]) for name in names
        }
        return OptimizationOutcome(
            x_coded=grid[best].copy(),
            value=float(d(responses)),
            responses=responses,
            evaluations=grid.shape[0],
        )

    # -- acquisition --------------------------------------------------------------

    def _acquire(
        self, state: _State, box: FactorBox, index: int, analysis: dict
    ) -> Proposal | None:
        cfg = self.config
        strategy = resolve_acquisition(cfg.acquisition)
        ctx = RoundContext(
            round_index=index,
            box=box,
            surfaces=analysis["surfaces"],
            outcome=analysis["outcome"],
            objective_surface=analysis["objective_surface"],
            optimum_global=analysis["optimum_global"],
            x_global=state.x_global,
            loo_error=analysis["loo_error"],
            fit_index=analysis["fit_index"],
            cv_error=analysis["cv_error"],
            lack_of_fit_p=analysis["lack_of_fit_p"],
            batch=cfg.batch,
            seed=self._seed_for(index + 1),
            shrink=cfg.shrink,
            min_half_width=cfg.min_half_width,
        )
        proposal = strategy.propose(ctx)
        points = self._dedupe(proposal.points, state.x_global)
        points = self._top_up(points, proposal.box, state, index)
        if points.shape[0] == 0:
            return None
        return Proposal(
            points=points,
            box=proposal.box,
            reason=proposal.reason,
            strategy=proposal.strategy,
        )

    @staticmethod
    def _dedupe(
        points: np.ndarray, existing: np.ndarray
    ) -> np.ndarray:
        seen = {_point_key(row) for row in np.atleast_2d(existing)}
        out = []
        for row in np.atleast_2d(points):
            key = _point_key(row)
            if key in seen:
                continue
            seen.add(key)
            out.append(row)
        return (
            np.array(out)
            if out
            else np.empty((0, np.atleast_2d(points).shape[1]))
        )

    def _top_up(
        self,
        points: np.ndarray,
        box: FactorBox,
        state: _State,
        index: int,
    ) -> np.ndarray:
        """Guarantee the next fit is identifiable: enough points must
        land inside the next box to estimate the model (plus margin)."""
        needed = self._model_spec(self.config.model).p + 2
        have = int(np.count_nonzero(box.contains(state.x_global)))
        if points.size:
            have += int(
                np.count_nonzero(box.contains(points))
            )
        missing = needed - have
        if missing <= 0:
            return points
        from repro.core.doe.lhs import latin_hypercube

        extra_local = latin_hypercube(
            max(missing, 2),
            box.k,
            seed=(self._seed_for(index + 1) + 7919) % (2**31),
        ).matrix[: max(missing, 2)]
        extra = np.clip(box.to_global(extra_local), -1.0, 1.0)
        merged = (
            np.vstack([points, extra]) if points.size else extra
        )
        return self._dedupe(merged, state.x_global)

    # -- replay / results ----------------------------------------------------------

    def _replay_round(
        self,
        state: _State,
        index: int,
        planned: dict,
        completed: dict | None,
    ) -> None:
        """Rebuild in-memory state from one journaled, completed round
        without evaluating anything."""
        if completed is None:  # pragma: no cover - defensive
            raise ReproError(f"round {index} journaled as complete but empty")
        points = np.atleast_2d(np.asarray(planned["points"], dtype=float))
        state.x_global = (
            np.vstack([state.x_global, points])
            if state.x_global.size
            else points.copy()
        )
        responses = completed.get("responses") or {}
        for name in self.explorer.responses:
            values = responses.get(name)
            if values is None or len(values) != points.shape[0]:
                raise ReproError(
                    f"journaled round {index} is missing responses for "
                    f"{name!r}; cannot resume"
                )
            state.responses[name].extend(float(v) for v in values)
        entry = {
            k: v
            for k, v in completed.items()
            if k not in ("responses", "exec", "next")
        }
        if completed.get("next") is not None:
            entry["_next"] = completed["next"]
        state.history.append(entry)
        state.prev_optimum = np.asarray(
            entry["optimum_coded"], dtype=float
        )
        state.streak = int(entry.get("streak", 0))

    def _history_entry(
        self,
        state: _State,
        index: int,
        plan: dict,
        box: FactorBox,
        points: np.ndarray,
        analysis: dict,
        shift: float | None,
        stop: str | None,
    ) -> dict:
        outcome = analysis["outcome"]
        digest = hashlib.sha256(
            json.dumps(
                {
                    "points": _jsonify(points),
                    "responses": {
                        name: state.responses[name][-points.shape[0]:]
                        for name in self.explorer.responses
                    },
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
        ).hexdigest()
        value = float(outcome.value)
        score = (
            value
            if self.objective.desirability is not None
            or self.objective.maximize
            else -value
        )
        return {
            "round": index,
            "box": box.as_dict(),
            "box_physical": _jsonify(
                self.space.point_to_dict(box.center)
            ),
            "n_points": int(points.shape[0]),
            "n_fit": analysis["n_fit"],
            "reason": plan.get("reason", ""),
            "strategy": plan.get("strategy", ""),
            "model": analysis["model_used"],
            "optimum_coded": _jsonify(analysis["optimum_global"]),
            "optimum_value": value,
            "score": float(score),
            "relaxed": bool(analysis["relaxed"]),
            "predictions": _jsonify(analysis["predictions"]),
            "shift": shift,
            "streak": int(state.streak),
            "cv_error": analysis["cv_error"],
            "cv_per_response": _jsonify(analysis["cv_per_response"]),
            "lack_of_fit_p": analysis["lack_of_fit_p"],
            "design_quality": analysis["quality"],
            "stop_reason": stop,
            "data_digest": digest,
        }

    def _build_result(
        self, state: _State, stop: str
    ) -> CampaignResult:
        history = [
            {k: v for k, v in entry.items() if k != "_next"}
            for entry in state.history
        ]
        last = history[-1]
        best_coded = np.asarray(last["optimum_coded"], dtype=float)
        best = {
            "x_coded": _jsonify(best_coded),
            "point": _jsonify(self.space.point_to_dict(best_coded)),
            "value": last["optimum_value"],
            "score": last["score"],
            "predictions": last["predictions"],
        }
        scores = []
        n = state.x_global.shape[0]
        for i in range(n):
            responses = {
                name: state.responses[name][i]
                for name in self.objective.responses
            }
            scores.append(self.objective.score(responses))
        best_i = int(np.argmax(scores)) if scores else 0
        best_evaluated = {
            "x_coded": _jsonify(state.x_global[best_i]),
            "point": _jsonify(
                self.space.point_to_dict(state.x_global[best_i])
            ),
            "responses": {
                name: state.responses[name][best_i]
                for name in self.explorer.responses
            },
            "score": float(scores[best_i]) if scores else float("nan"),
        }
        return CampaignResult(
            campaign_id=self.campaign_id,
            converged=stop in CONVERGED_REASONS,
            stop_reason=stop,
            history=history,
            best=best,
            best_evaluated=best_evaluated,
            evaluations={
                "simulated": state.simulated,
                "cached": state.cached,
                "degraded": state.degraded,
                "speculated": state.speculated,
                "speculative_hits": state.speculative_hits,
                "total_points": int(n),
            },
            surfaces=dict(state.surfaces),
        )
